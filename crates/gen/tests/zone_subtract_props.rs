//! Property tests for [`tiga_dbm::zone_subtract`] exactness, driven by the
//! generator's random zones so that failures of the campaign's zone-algebra
//! oracle localize to the DBM layer:
//!
//! * **partition**: `(a \ b) ∪ (a ∩ b)` denotes exactly `a`;
//! * **disjointness**: every piece is disjoint from `b`, and the pieces are
//!   pairwise disjoint;
//! * **idempotence**: subtracting `b` again from the pieces changes nothing.
//!
//! All checks are symbolic (federation inclusion), plus an independent
//! membership sweep against the exact rational-valuation reference model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_dbm::{zone_subtract, Federation};
use tiga_gen::{random_zone, refmodel, subtract_partition_violation};

const MAX_CONST: i32 = 7;

#[test]
fn subtract_partitions_the_minuend() {
    // The laws themselves live in `tiga_gen::subtract_partition_violation`,
    // shared with the campaign's zone-algebra oracle so the two cannot
    // drift; this test pins them over many generator-drawn zone pairs.
    let mut rng = StdRng::seed_from_u64(0x50B7_12AC);
    for round in 0..400 {
        let dim = 2 + (round % 3);
        let a = random_zone(&mut rng, dim, MAX_CONST);
        let b = random_zone(&mut rng, dim, MAX_CONST);
        if let Some(violation) = subtract_partition_violation(&a, &b) {
            panic!("round {round}: {violation}");
        }
    }
}

#[test]
fn subtract_membership_matches_the_reference_model() {
    // Independent of the symbolic checks above: at random rational
    // valuations, membership in the pieces must equal `in a && !in b`
    // decided by the reference model that only reads raw DBM entries.
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let scale = 2i64;
    for round in 0..300 {
        let dim = 2 + (round % 3);
        let a = random_zone(&mut rng, dim, MAX_CONST);
        let b = random_zone(&mut rng, dim, MAX_CONST);
        let diff = Federation::from_zones(dim, zone_subtract(&a, &b));
        for _ in 0..24 {
            let mut vals = vec![0i64; dim];
            for v in vals.iter_mut().skip(1) {
                *v = rng.gen_range(0..=i64::from(MAX_CONST + 2) * scale);
            }
            let expected = refmodel::zone_contains(&a, &vals, scale)
                && !refmodel::zone_contains(&b, &vals, scale);
            assert_eq!(
                diff.contains_at(&vals, scale),
                expected,
                "round {round}, valuation {vals:?}\na = {a:?}\nb = {b:?}"
            );
        }
    }
}

#[test]
fn subtract_edge_cases() {
    let mut rng = StdRng::seed_from_u64(0xED6E);
    for round in 0..100 {
        let dim = 2 + (round % 3);
        let a = random_zone(&mut rng, dim, MAX_CONST);
        // a \ a = ∅.
        assert!(zone_subtract(&a, &a).is_empty(), "a \\ a != ∅\na = {a:?}");
        // a \ universe = ∅.
        let universe = tiga_dbm::Dbm::universe(dim);
        assert!(zone_subtract(&a, &universe).is_empty());
        // universe \ a ∪ a = universe.
        let mut rebuilt = Federation::from_zones(dim, zone_subtract(&universe, &a));
        rebuilt.add_zone(a.clone());
        assert!(rebuilt.set_equals(&Federation::from_zone(universe)));
    }
}
