//! Property tests for the safe time-predecessor `Pred_t(G, B)`
//! ([`tiga_dbm::Federation::pred_t`]) against the exact rational
//! interval-sweep reference model ([`tiga_gen::refmodel::pred_t_contains`]),
//! driven by the generator's random zones.  `Pred_t` is the operator both
//! fuzz-found solver bugs sat next to, so it gets its own oracle
//! ([`tiga_gen::check_pred_t`], shared with the campaign) plus the
//! algebraic laws here:
//!
//! * `Pred_t(G, ∅) = G↓` (with no avoid-set, the operator is the past
//!   closure);
//! * `Pred_t(G, B) ⊆ G↓` (the witness delay still has to reach `G`);
//! * `Pred_t(G, B) ∩ B = ∅` (a valuation inside `B` violates the avoid
//!   requirement at `δ = 0`);
//! * `G \ B ⊆ Pred_t(G, B)` (the `δ = 0` witness);
//! * monotone in `G`, antitone in `B`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tiga_dbm::{Dbm, Federation};
use tiga_gen::{check_pred_t, random_federation, refmodel};

const MAX_CONST: i32 = 7;

fn random_pair(rng: &mut StdRng, dim: usize) -> (Federation, Federation) {
    (
        random_federation(rng, dim, 3, MAX_CONST),
        random_federation(rng, dim, 3, MAX_CONST),
    )
}

#[test]
fn pred_t_membership_matches_the_reference_model() {
    // The check itself is `tiga_gen::check_pred_t`, shared with the
    // campaign's fourth oracle so the two cannot drift; this pins it over
    // many generator-drawn federations.
    let mut rng = StdRng::seed_from_u64(0x9ED7_0001);
    for round in 0..300 {
        let dim = 2 + (round % 3);
        if let Some(detail) = check_pred_t(&mut rng, dim, MAX_CONST, 32) {
            panic!("round {round}: {detail}");
        }
    }
}

#[test]
fn pred_t_with_empty_bad_is_the_past_closure() {
    let mut rng = StdRng::seed_from_u64(0x9ED7_0002);
    for round in 0..150 {
        let dim = 2 + (round % 3);
        let g = random_federation(&mut rng, dim, 3, MAX_CONST);
        let empty = Federation::empty(dim);
        let pred = g.pred_t(&empty);
        let mut down = g.clone();
        down.down();
        assert!(
            pred.set_equals(&down),
            "round {round}: Pred_t(G, ∅) differs from G↓\nG = {g:?}"
        );
    }
}

#[test]
fn pred_t_is_bounded_by_the_past_closure_and_avoids_bad() {
    let mut rng = StdRng::seed_from_u64(0x9ED7_0003);
    for round in 0..150 {
        let dim = 2 + (round % 3);
        let (g, b) = random_pair(&mut rng, dim);
        let pred = g.pred_t(&b);
        let mut down = g.clone();
        down.down();
        assert!(
            down.includes(&pred),
            "round {round}: Pred_t leaves G↓\nG = {g:?}\nB = {b:?}"
        );
        assert!(
            pred.intersection(&b).is_empty(),
            "round {round}: Pred_t intersects the avoid-set\nG = {g:?}\nB = {b:?}"
        );
        let escape_now = g.difference(&b);
        assert!(
            pred.includes(&escape_now),
            "round {round}: Pred_t misses the δ = 0 witness G \\ B\nG = {g:?}\nB = {b:?}"
        );
    }
}

#[test]
fn pred_t_is_monotone_in_good_and_antitone_in_bad() {
    let mut rng = StdRng::seed_from_u64(0x9ED7_0004);
    for round in 0..100 {
        let dim = 2 + (round % 3);
        let (g, b) = random_pair(&mut rng, dim);
        let extra = random_federation(&mut rng, dim, 2, MAX_CONST);
        let bigger_good = g.union(&extra);
        assert!(
            bigger_good.pred_t(&b).includes(&g.pred_t(&b)),
            "round {round}: not monotone in G\nG = {g:?}\nB = {b:?}\nextra = {extra:?}"
        );
        let bigger_bad = b.union(&extra);
        assert!(
            g.pred_t(&b).includes(&g.pred_t(&bigger_bad)),
            "round {round}: not antitone in B\nG = {g:?}\nB = {b:?}\nextra = {extra:?}"
        );
    }
}

#[test]
fn pred_t_delay_witnesses_are_sound_on_the_grid() {
    // Constructive cross-check independent of the symbolic laws: wherever
    // the reference says "yes" there is a concrete scaled delay witness on
    // a refined grid whose whole trajectory prefix avoids B — and wherever
    // an on-grid witness exists, the implementation must say "yes".
    let scale = 4; // refine so that strict-bound witnesses exist on-grid
    let mut rng = StdRng::seed_from_u64(0x9ED7_0005);
    for round in 0..60 {
        let dim = 2;
        let (g, b) = random_pair(&mut rng, dim);
        let pred = g.pred_t(&b);
        let top = (i64::from(MAX_CONST) + 2) * scale;
        for x in 0..=top {
            let vals = vec![0, x];
            let mut witness = None;
            'delays: for delta in 0..=top {
                let shifted: Vec<i64> = vals.iter().map(|v| v + delta).collect();
                let shifted = {
                    let mut s = shifted;
                    s[0] = 0;
                    s
                };
                if !g.contains_at(&shifted, scale) {
                    continue;
                }
                for dprime in 0..=delta {
                    let mut traj: Vec<i64> = vals.iter().map(|v| v + dprime).collect();
                    traj[0] = 0;
                    if b.contains_at(&traj, scale) {
                        continue 'delays;
                    }
                }
                witness = Some(delta);
                break;
            }
            if witness.is_some() {
                assert!(
                    pred.contains_at(&vals, scale),
                    "round {round}: on-grid witness at x = {} missed by pred_t\nG = {g:?}\nB = {b:?}",
                    x as f64 / scale as f64
                );
            }
        }
    }
}

#[test]
fn reference_agrees_with_containment_for_point_zones() {
    // Degenerate sanity: a good federation consisting of single points —
    // the reference must say yes exactly when the point is in the future
    // and the prefix is clean.
    let mut z = Dbm::universe(2);
    z.constrain(1, 0, tiga_dbm::Bound::le(4));
    z.constrain(0, 1, tiga_dbm::Bound::le(-4)); // x == 4
    let mut bad = Dbm::universe(2);
    bad.constrain(1, 0, tiga_dbm::Bound::le(2));
    bad.constrain(0, 1, tiga_dbm::Bound::le(-2)); // x == 2
    assert!(refmodel::pred_t_contains(&[&z], &[], &[0, 0], 1));
    assert!(!refmodel::pred_t_contains(&[&z], &[&bad], &[0, 0], 1));
    assert!(refmodel::pred_t_contains(&[&z], &[&bad], &[0, 3], 1));
    assert!(!refmodel::pred_t_contains(&[&z], &[&bad], &[0, 5], 1));
}
