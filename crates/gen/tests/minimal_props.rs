//! Property tests for the minimal-constraint zone form
//! ([`tiga_dbm::MinimalZone`]) and the hash-consed passed list
//! ([`tiga_dbm::ZoneSet`]), driven by the generator's random zones so that
//! failures of the solver's interned representation localize to the DBM
//! layer:
//!
//! * **roundtrip**: `minimize()` → `rehydrate()` reproduces the canonical
//!   matrix bit-identically, for generator zones and for every zone the
//!   solver derives from them (up/down/free/reset, intersections, subtract
//!   pieces, `pred_t` members);
//! * **membership**: the rehydrated zone admits exactly the same rational
//!   valuations, decided by the reference model that only reads raw DBM
//!   entries;
//! * **mirroring**: [`tiga_dbm::ZoneSet::insert`] agrees with
//!   [`tiga_dbm::Federation::insert_subsumed`] on every verdict and keeps
//!   the identical member sequence over random offer traffic — the invariant
//!   the interned solver path rests on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_dbm::{zone_subtract, Dbm, Federation, ZoneSet, ZoneStore};
use tiga_gen::{random_zone, refmodel};

const MAX_CONST: i32 = 7;

fn assert_roundtrip(zone: &Dbm, context: &str) {
    let minimal = zone.minimize();
    let back = minimal.rehydrate();
    if zone.is_empty() {
        assert!(minimal.is_empty(), "{context}: empty flag lost\n{zone:?}");
        assert!(back.is_empty(), "{context}: rehydrated non-empty\n{zone:?}");
    } else {
        assert_eq!(&back, zone, "{context}: roundtrip not bit-identical");
        assert!(
            minimal.len() <= zone.dim() * zone.dim(),
            "{context}: minimal form larger than the matrix"
        );
    }
}

#[test]
fn minimize_rehydrate_roundtrips_generator_zones() {
    let mut rng = StdRng::seed_from_u64(0x3141_0CAF);
    for round in 0..400 {
        let dim = 2 + (round % 3);
        let z = random_zone(&mut rng, dim, MAX_CONST);
        assert_roundtrip(&z, &format!("round {round}"));
    }
}

#[test]
fn rehydrated_membership_matches_the_reference_model() {
    // Independent of the bit-identity check: at random rational valuations,
    // membership in the rehydrated zone must equal membership in the
    // original, decided entry-by-entry by the reference model.
    let mut rng = StdRng::seed_from_u64(0x0DB_EDB);
    let scale = 2i64;
    for round in 0..300 {
        let dim = 2 + (round % 3);
        let z = random_zone(&mut rng, dim, MAX_CONST);
        let back = z.minimize().rehydrate();
        for _ in 0..24 {
            let mut vals = vec![0i64; dim];
            for v in vals.iter_mut().skip(1) {
                *v = rng.gen_range(0..=i64::from(MAX_CONST + 2) * scale);
            }
            assert_eq!(
                refmodel::zone_contains(&back, &vals, scale),
                refmodel::zone_contains(&z, &vals, scale),
                "round {round}, valuation {vals:?}\nz = {z:?}"
            );
        }
    }
}

#[test]
fn solver_derived_zones_roundtrip() {
    // The zones the engines actually intern are not raw generator zones but
    // products of the symbolic operators; every one of them must roundtrip.
    let mut rng = StdRng::seed_from_u64(0xDE21_7ED5);
    for round in 0..200 {
        let dim = 2 + (round % 3);
        let a = random_zone(&mut rng, dim, MAX_CONST);
        let b = random_zone(&mut rng, dim, MAX_CONST);
        let mut up = a.clone();
        up.up();
        assert_roundtrip(&up, &format!("round {round}: up"));
        let mut down = a.clone();
        down.down();
        assert_roundtrip(&down, &format!("round {round}: down"));
        let clock = 1 + (round % (dim - 1));
        let mut freed = a.clone();
        freed.free(clock);
        assert_roundtrip(&freed, &format!("round {round}: free"));
        let mut reset = a.clone();
        reset.reset(clock, (round % 5) as i32);
        assert_roundtrip(&reset, &format!("round {round}: reset"));
        if let Some(meet) = a.intersection(&b) {
            assert_roundtrip(&meet, &format!("round {round}: intersect"));
        }
        for (i, piece) in zone_subtract(&a, &b).iter().enumerate() {
            assert_roundtrip(piece, &format!("round {round}: subtract piece {i}"));
        }
        let good = Federation::from_zone(a.clone());
        let bad = Federation::from_zone(b.clone());
        for (i, zone) in good.pred_t(&bad).iter().enumerate() {
            assert_roundtrip(zone, &format!("round {round}: pred_t member {i}"));
        }
    }
}

#[test]
fn zone_set_mirrors_insert_subsumed_on_random_traffic() {
    let mut rng = StdRng::seed_from_u64(0x5E7_F00D);
    for round in 0..120 {
        let dim = 2 + (round % 3);
        let mut store = ZoneStore::new(dim);
        let mut set = ZoneSet::new();
        let mut twin = ZoneSet::new();
        let mut fed = Federation::empty(dim);
        // Offer traffic with deliberate re-offers, like the solver's
        // subsumption-heavy passed lists.
        let mut pool: Vec<Dbm> = (0..6)
            .map(|_| random_zone(&mut rng, dim, MAX_CONST))
            .collect();
        for step in 0..24 {
            let zone = if rng.gen_bool(0.4) {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                let z = random_zone(&mut rng, dim, MAX_CONST);
                pool.push(z.clone());
                z
            };
            let expect = fed.insert_subsumed(zone.clone());
            let got = set.insert(&mut store, &zone);
            assert_eq!(
                got, expect,
                "round {round} step {step}: verdict diverged on {zone:?}"
            );
            twin.insert(&mut store, &zone);
            assert_eq!(
                set.to_federation(&store),
                fed,
                "round {round} step {step}: member sequences diverged"
            );
            assert!(
                set.set_equals_interned(&twin),
                "round {round} step {step}: identical traffic, different id sets"
            );
        }
        assert_eq!(set.len(), fed.len());
        // The interned members stay pairwise incomparable, like the
        // federation's.
        let ids = set.ids().to_vec();
        for &x in &ids {
            for &y in &ids {
                if x != y {
                    assert_eq!(
                        store.relation(x, y),
                        tiga_dbm::Relation::Different,
                        "round {round}: comparable members survived"
                    );
                }
            }
        }
    }
}
