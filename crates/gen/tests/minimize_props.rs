//! Property tests for strategy minimization and compiled controllers,
//! driven by solver-extracted strategies from generated winning games:
//!
//! * **decision preservation**: for random valuations — on-grid and
//!   off-grid (ticks not divisible by the scale, the rational-refmodel
//!   style) — over every discrete state of the strategy,
//!   `minimized.decide ≡ original.decide`, and likewise for `rank_of` and
//!   `next_take_delay`;
//! * **covered-region equality**: per discrete state, the union of wait
//!   zones (the covered winning region) is set-equal before and after
//!   minimization;
//! * **compiled ≡ interpreted**: the compiled controller answers every
//!   query identically to the strategy it was compiled from;
//! * **roundtrip**: `parse_controller(print_controller(c)) ≡ c`, and the
//!   printer is a fixpoint.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_dbm::Federation;
use tiga_gen::{generate_spec, GenConfig};
use tiga_model::DiscreteState;
use tiga_solver::{
    minimize_strategy, parse_controller, print_controller, solve, CompiledController, Controller,
    Decision, SolveOptions, Strategy,
};

const SCALE: i64 = 4;

/// Solves generated games until `want` winning strategies are collected.
fn solved_strategies(seed_base: u64, want: usize) -> Vec<Strategy> {
    let config = GenConfig::default();
    let mut options = SolveOptions::default();
    options.explore.max_states = 4_000;
    let mut out = Vec::new();
    let mut seed = seed_base;
    while out.len() < want && seed < seed_base + 4_000 {
        seed += 1;
        let spec = generate_spec(seed, &config);
        let Ok((system, purpose)) = spec.build() else {
            continue;
        };
        let Ok(solution) = solve(&system, &purpose, &options) else {
            continue;
        };
        if !solution.winning_from_initial {
            continue;
        }
        if let Some(strategy) = solution.strategy {
            if strategy.rule_count() > 0 {
                out.push(strategy);
            }
        }
    }
    assert!(
        out.len() >= want.min(8),
        "could not collect enough winning strategies ({} found)",
        out.len()
    );
    out
}

/// Random scaled tick valuations: a mix of on-grid (multiples of the scale)
/// and off-grid points, plus the origin.
fn sample_valuations(rng: &mut StdRng, clocks: usize, count: usize) -> Vec<Vec<i64>> {
    let mut out = vec![vec![0i64; clocks]];
    for round in 0..count {
        let mut ticks = vec![0i64; clocks];
        for t in ticks.iter_mut() {
            let units = rng.gen_range(0..=12i64);
            *t = if round % 2 == 0 {
                units * SCALE // on-grid
            } else {
                units * SCALE + rng.gen_range(0..SCALE) // off-grid
            };
        }
        out.push(ticks);
    }
    out
}

fn assert_equivalent(
    original: &Strategy,
    candidate: &dyn Controller,
    discrete: &DiscreteState,
    ticks: &[i64],
    what: &str,
) {
    assert_eq!(
        candidate.decide(discrete, ticks, SCALE),
        original.decide(discrete, ticks, SCALE),
        "{what}: decide diverged at {ticks:?}"
    );
    assert_eq!(
        candidate.rank_of(discrete, ticks, SCALE),
        original.rank_of(discrete, ticks, SCALE),
        "{what}: rank_of diverged at {ticks:?}"
    );
    assert_eq!(
        candidate.next_take_delay(discrete, ticks, SCALE),
        original.next_take_delay(discrete, ticks, SCALE),
        "{what}: next_take_delay diverged at {ticks:?}"
    );
}

#[test]
fn minimization_preserves_every_decision() {
    let mut rng = StdRng::seed_from_u64(0x0101_5eed);
    let strategies = solved_strategies(0x9000, 12);
    let mut shrunk_total = (0usize, 0usize);
    for (index, strategy) in strategies.iter().enumerate() {
        let minimized = minimize_strategy(strategy);
        shrunk_total.0 += minimized.rule_count();
        shrunk_total.1 += strategy.rule_count();
        assert!(minimized.rule_count() <= strategy.rule_count());
        let clocks = strategy.dim() - 1;
        let valuations = sample_valuations(&mut rng, clocks, 40);
        for (discrete, _) in strategy.iter() {
            for ticks in &valuations {
                assert_equivalent(
                    strategy,
                    &minimized,
                    discrete,
                    ticks,
                    &format!("strategy {index} minimized"),
                );
            }
        }
    }
    assert!(
        shrunk_total.0 <= shrunk_total.1,
        "minimization must never grow strategies"
    );
}

#[test]
fn minimization_preserves_the_covered_region_exactly() {
    let strategies = solved_strategies(0xA000, 10);
    for strategy in &strategies {
        let minimized = minimize_strategy(strategy);
        for (discrete, rules) in strategy.iter() {
            let dim = strategy.dim();
            let wait_zones = |rules: &[tiga_solver::StrategyRule]| {
                Federation::from_zones(
                    dim,
                    rules
                        .iter()
                        .filter(|r| matches!(r.decision, Decision::Wait))
                        .map(|r| r.zone.clone()),
                )
            };
            let before = wait_zones(rules);
            let after = wait_zones(minimized.rules_for(discrete).unwrap_or(&[]));
            assert!(
                before.set_equals(&after),
                "covered wait region changed for {discrete:?}"
            );
        }
    }
}

#[test]
fn compiled_controller_is_pointwise_identical_to_the_strategy() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_CAFE);
    let strategies = solved_strategies(0xB000, 12);
    for (index, strategy) in strategies.iter().enumerate() {
        let compiled = CompiledController::compile(strategy);
        assert_eq!(Controller::dim(&compiled), Strategy::dim(strategy));
        let clocks = strategy.dim() - 1;
        let valuations = sample_valuations(&mut rng, clocks, 40);
        for (discrete, _) in strategy.iter() {
            for ticks in &valuations {
                assert_equivalent(
                    strategy,
                    &compiled,
                    discrete,
                    ticks,
                    &format!("strategy {index} compiled"),
                );
            }
        }
    }
}

#[test]
fn controller_serialization_roundtrips_exactly() {
    let strategies = solved_strategies(0xC000, 8);
    for (index, strategy) in strategies.iter().enumerate() {
        let compiled = CompiledController::compile(strategy);
        let text = print_controller(&format!("gen-{index}"), true, Some(&compiled));
        let file = parse_controller(&text)
            .unwrap_or_else(|e| panic!("strategy {index}: parse failed: {e}"));
        assert!(file.winning);
        assert_eq!(file.controller.as_ref(), Some(&compiled));
        let again = print_controller(&format!("gen-{index}"), true, file.controller.as_ref());
        assert_eq!(
            again, text,
            "printer is not a fixpoint for strategy {index}"
        );
    }
}
