//! The fuzzing campaign driver: generate → run all oracles → shrink.
//!
//! [`fuzz_campaign`] is the library entry point behind `tiga fuzz`.  It is
//! fully deterministic for a given [`FuzzOptions::seed`]: per-case seeds are
//! derived with SplitMix64, so any failing case is reproducible from the
//! master seed and its index alone — and a shrunk reproducer additionally
//! gets written out as a self-contained `.tg` file.
//!
//! With [`FuzzOptions::jobs`] above one the campaign shards the cases over
//! the deterministic work queue of [`tiga_testing::run_indexed`]: every
//! case is a self-contained job keyed by its pre-derived seed, results are
//! merged in case order, and the report — counters, failure list, shrunk
//! reproducers — is bit-identical for any job count.

use crate::gen::{generate_spec, GenConfig};
use crate::oracle::{
    check_bound_monotonicity, check_engine_agreement, check_pred_t, check_roundtrip,
    check_test_execution, check_zone_algebra, EngineCheck, EngineCheckOptions, ExecCheck,
    ExecCheckOptions,
};
use crate::shrink::shrink_spec;
use crate::spec::SysSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tiga_lang::print_system;
use tiga_testing::{effective_threads, run_indexed};

/// Options of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed; case `i` uses the `i`-th SplitMix64 value derived from it.
    pub seed: u64,
    /// Number of generated systems.
    pub count: usize,
    /// Worker threads the cases are sharded over (`0` = all available
    /// parallelism, `1` = in-place).  Findings are bit-identical for any
    /// value.
    pub jobs: usize,
    /// Whether failing cases are shrunk before reporting.
    pub shrink: bool,
    /// Re-check budget per shrink (oracle re-runs).
    pub shrink_budget: usize,
    /// Zone-algebra and `Pred_t` rounds per case (each draws fresh zones).
    pub zone_rounds: usize,
    /// Sampled valuations per zone-algebra / `Pred_t` round.
    pub zone_samples: usize,
    /// Engine budgets.
    pub engines: EngineCheckOptions,
    /// Test-execution oracle budgets (runs on every winning game).
    pub exec: ExecCheckOptions,
    /// System-shape knobs.
    pub gen: GenConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            count: 100,
            jobs: 1,
            shrink: true,
            shrink_budget: 400,
            zone_rounds: 2,
            zone_samples: 24,
            engines: EngineCheckOptions::default(),
            exec: ExecCheckOptions::default(),
            gen: GenConfig::default(),
        }
    }
}

/// One confirmed oracle failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Index of the case within the campaign.
    pub case_index: usize,
    /// The derived per-case seed (regenerates the unshrunk system).
    pub case_seed: u64,
    /// Which oracle failed: `engine-agreement`, `roundtrip`, `zone-algebra`,
    /// `pred-t`, `bound-monotonicity` or `test-execution`.
    pub oracle: &'static str,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Self-contained `.tg` reproducer (shrunk when shrinking is enabled);
    /// `None` for failures without a buildable system (`zone-algebra` and
    /// `pred-t`, which have no system at all, and `generator`, whose spec
    /// failed to build) — those reproduce from the case seed alone.
    pub reproducer: Option<String>,
}

/// Aggregate result of a campaign.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuzzReport {
    /// Systems generated.
    pub cases: usize,
    /// Cases whose game every engine solved and agreed on.
    pub agreed: usize,
    /// ... of which the shared verdict was "winning".
    pub winning: usize,
    /// ... of which the objective was a safety purpose (`A[]`).
    pub safety: usize,
    /// ... of which the objective carried a time bound (`<=T`).
    pub bounded: usize,
    /// Cases skipped by the engine oracle (state limit exceeded).
    pub skipped: usize,
    /// Winning games whose strategy was executed end-to-end (oracle 5).
    pub executed: usize,
    /// Winning games outside the observability test hypothesis (internal
    /// `tau` edges), where test execution does not apply.
    pub unobservable: usize,
    /// Mutant implementations exercised across all executed games.
    pub mutants: usize,
    /// ... of which the injected fault was detected (verdict `fail`).
    pub detected: usize,
    /// All confirmed failures.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when every oracle was clean on every case.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-case seeds of a campaign: the first `count` SplitMix64 values
/// derived from the master seed.  Shared with the bench harness, which pins
/// engine counters on a fixed fuzz seed set.
#[must_use]
pub fn derive_case_seeds(master: u64, count: usize) -> Vec<u64> {
    let mut stream = master;
    (0..count).map(|_| splitmix64(&mut stream)).collect()
}

/// Renders a spec as a self-contained `.tg` reproducer with a header
/// documenting its provenance.
///
/// # Panics
///
/// Panics if the spec does not build (reproducers come from specs that
/// built at least once).
#[must_use]
pub fn reproducer_tg(spec: &SysSpec, case_seed: u64, oracle: &'static str) -> String {
    let (system, purpose) = spec.build().expect("reproducer spec builds");
    format!(
        "// tiga fuzz reproducer\n// oracle: {oracle}\n// case seed: {case_seed:#x}\n// re-run: tiga solve <this file> --engine jacobi   (vs. otfur/worklist)\n{}",
        print_system(&system, Some(&purpose))
    )
}

/// The outcome of one self-contained case: every oracle's failures plus the
/// engine tallies, merged into the report in case order.
struct CaseOutcome {
    failures: Vec<FuzzFailure>,
    agreed: bool,
    winning: bool,
    safety: bool,
    bounded: bool,
    skipped: bool,
    executed: bool,
    unobservable: bool,
    mutants: usize,
    detected: usize,
}

fn run_case(case_index: usize, case_seed: u64, options: &FuzzOptions) -> CaseOutcome {
    let mut outcome = CaseOutcome {
        failures: Vec::new(),
        agreed: false,
        winning: false,
        safety: false,
        bounded: false,
        skipped: false,
        executed: false,
        unobservable: false,
        mutants: 0,
        detected: 0,
    };

    // Oracles 3 and 4 first: they are independent of the generated system
    // and use their own RNG streams derived from the case seed.
    let mut zone_rng = StdRng::seed_from_u64(case_seed ^ 0x5A5A_5A5A_5A5A_5A5A);
    for round in 0..options.zone_rounds {
        let dim = 2 + (round % 3);
        if let Some(detail) = check_zone_algebra(&mut zone_rng, dim, 6, options.zone_samples) {
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "zone-algebra",
                detail,
                reproducer: None,
            });
        }
    }
    let mut pred_rng = StdRng::seed_from_u64(case_seed ^ 0x9ED7_9ED7_9ED7_9ED7);
    for round in 0..options.zone_rounds {
        let dim = 2 + (round % 3);
        if let Some(detail) = check_pred_t(&mut pred_rng, dim, 6, options.zone_samples) {
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "pred-t",
                detail,
                reproducer: None,
            });
        }
    }

    let spec = generate_spec(case_seed, &options.gen);
    let (system, purpose) = match spec.build() {
        Ok(built) => built,
        Err(e) => {
            // The generator must only emit buildable specs.
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "generator",
                detail: format!("generated spec does not build: {e}"),
                reproducer: None,
            });
            return outcome;
        }
    };
    outcome.safety = purpose.quantifier == tiga_tctl::PathQuantifier::Safety;
    outcome.bounded = purpose.bound.is_some();

    // Oracle 2: roundtrip.
    if let Some(detail) = check_roundtrip(&system, &purpose) {
        let shrunk = maybe_shrink(options, &spec, &mut |s| {
            s.build()
                .ok()
                .is_some_and(|(sys, p)| check_roundtrip(&sys, &p).is_some())
        });
        outcome.failures.push(FuzzFailure {
            case_index,
            case_seed,
            oracle: "roundtrip",
            detail,
            reproducer: Some(reproducer_tg(&shrunk, case_seed, "roundtrip")),
        });
    }

    // Oracle 1: engine agreement (reachability and safety purposes alike).
    match check_engine_agreement(&system, &purpose, &options.engines) {
        EngineCheck::Agreed { winning } => {
            outcome.agreed = true;
            outcome.winning = winning;
        }
        EngineCheck::Skipped(_) => outcome.skipped = true,
        EngineCheck::Diverged(detail) => {
            let engines = options.engines.clone();
            let shrunk = maybe_shrink(options, &spec, &mut |s| {
                s.build().ok().is_some_and(|(sys, p)| {
                    matches!(
                        check_engine_agreement(&sys, &p, &engines),
                        EngineCheck::Diverged(_)
                    )
                })
            });
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "engine-agreement",
                detail,
                reproducer: Some(reproducer_tg(&shrunk, case_seed, "engine-agreement")),
            });
        }
    }

    // Bound monotonicity, on every time-bounded purpose: tightening the
    // deadline can only shrink a reachability winning set and grow a safety
    // one.  Cheap relative to the engine sweep (three Jacobi runs).
    if outcome.bounded {
        if let Some(detail) = check_bound_monotonicity(&system, &purpose, &options.engines) {
            let engines = options.engines.clone();
            let shrunk = maybe_shrink(options, &spec, &mut |s| {
                s.build()
                    .ok()
                    .is_some_and(|(sys, p)| check_bound_monotonicity(&sys, &p, &engines).is_some())
            });
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "bound-monotonicity",
                detail,
                reproducer: Some(reproducer_tg(&shrunk, case_seed, "bound-monotonicity")),
            });
        }
    }

    // Oracle 5: test execution, on every game the engines proved winning.
    if outcome.winning {
        let exec_detail = match check_test_execution(&system, &purpose, &options.exec) {
            ExecCheck::Executed { mutants, detected } => {
                outcome.executed = true;
                outcome.mutants = mutants;
                outcome.detected = detected;
                None
            }
            // The engines just proved the game winning under the same state
            // budget, so "not enforceable" contradicts them.
            ExecCheck::NotApplicable => {
                Some("engines say WINNING but the harness found no strategy".to_string())
            }
            // Internal edges put the game outside the observability test
            // hypothesis; the solver oracles still covered it.
            ExecCheck::Unobservable => {
                outcome.unobservable = true;
                None
            }
            ExecCheck::Diverged(detail) => Some(detail),
        };
        if let Some(detail) = exec_detail {
            let exec = options.exec.clone();
            let shrunk = maybe_shrink(options, &spec, &mut |s| {
                s.build().ok().is_some_and(|(sys, p)| {
                    matches!(
                        check_test_execution(&sys, &p, &exec),
                        ExecCheck::Diverged(_)
                    )
                })
            });
            outcome.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "test-execution",
                detail,
                reproducer: Some(reproducer_tg(&shrunk, case_seed, "test-execution")),
            });
        }
    }
    outcome
}

/// Runs one fuzzing campaign.  `progress` is invoked after every case with
/// `(cases_done, failures_so_far)` (for sharded runs, during the in-order
/// merge).
pub fn fuzz_campaign(options: &FuzzOptions, progress: &mut dyn FnMut(usize, usize)) -> FuzzReport {
    let seeds = derive_case_seeds(options.seed, options.count);
    // `jobs = 0` means all available parallelism — resolved by
    // `effective_threads`, so it must see the raw value.
    let threads = effective_threads(options.jobs, seeds.len());
    let outcomes: Vec<CaseOutcome> = if threads <= 1 {
        let mut out = Vec::with_capacity(seeds.len());
        let mut failures_so_far = 0;
        for (case_index, &case_seed) in seeds.iter().enumerate() {
            let outcome = run_case(case_index, case_seed, options);
            failures_so_far += outcome.failures.len();
            out.push(outcome);
            progress(case_index + 1, failures_so_far);
        }
        out
    } else {
        run_indexed(seeds, threads, |case_index, case_seed| {
            run_case(case_index, case_seed, options)
        })
    };

    let mut report = FuzzReport::default();
    for (case_index, outcome) in outcomes.into_iter().enumerate() {
        report.cases += 1;
        report.agreed += usize::from(outcome.agreed);
        report.winning += usize::from(outcome.winning);
        report.safety += usize::from(outcome.safety);
        report.bounded += usize::from(outcome.bounded);
        report.skipped += usize::from(outcome.skipped);
        report.executed += usize::from(outcome.executed);
        report.unobservable += usize::from(outcome.unobservable);
        report.mutants += outcome.mutants;
        report.detected += outcome.detected;
        report.failures.extend(outcome.failures);
        if threads > 1 {
            progress(case_index + 1, report.failures.len());
        }
    }
    report
}

fn maybe_shrink(
    options: &FuzzOptions,
    spec: &SysSpec,
    still_fails: &mut dyn FnMut(&SysSpec) -> bool,
) -> SysSpec {
    if options.shrink {
        shrink_spec(spec, still_fails, options.shrink_budget)
    } else {
        spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_reports_progress() {
        let options = FuzzOptions {
            count: 10,
            zone_rounds: 1,
            zone_samples: 8,
            ..FuzzOptions::default()
        };
        let mut ticks = 0usize;
        let a = fuzz_campaign(&options, &mut |_, _| ticks += 1);
        assert_eq!(ticks, 10);
        assert_eq!(a.cases, 10);
        let b = fuzz_campaign(&options, &mut |_, _| {});
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_campaign_is_clean_with_zero_skips() {
        // With every objective bounded, all oracles — including
        // bound-monotonicity — must be clean, and no case may be skipped:
        // the `#t`-augmented products of generated (single-digit-constant)
        // games stay well inside the state budget.
        let options = FuzzOptions {
            count: 30,
            zone_rounds: 0,
            gen: GenConfig {
                bound_prob: 1.0,
                safety_prob: 0.3,
                ..GenConfig::default()
            },
            ..FuzzOptions::default()
        };
        let report = fuzz_campaign(&options, &mut |_, _| {});
        assert!(report.is_clean(), "failures: {:?}", report.failures);
        assert_eq!(report.cases, 30);
        assert_eq!(report.bounded, 30, "bound_prob=1.0 must bound every case");
        assert_eq!(report.skipped, 0, "bounded cases must not blow the budget");
        assert!(report.agreed == 30, "engines must agree on every case");
        assert!(report.winning > 0, "some bounded games should be winning");
        assert!(
            report.executed > 0,
            "some bounded strategies should execute end-to-end"
        );
    }

    #[test]
    fn a_zero_bound_probability_leaves_the_seed_stream_untouched() {
        // The pinned fixed-seed gates (bench baseline, campaign pins) rely
        // on `bound_prob: 0.0` consuming no RNG draws.
        let seeds = derive_case_seeds(7, 5);
        for seed in seeds {
            let default_spec = generate_spec(seed, &GenConfig::default());
            let explicit = GenConfig {
                bound_prob: 0.0,
                ..GenConfig::default()
            };
            assert_eq!(default_spec, generate_spec(seed, &explicit));
            assert!(default_spec.objective.bound.is_none());
        }
    }

    #[test]
    fn sharded_campaign_is_bit_identical_for_any_job_count() {
        let reference = FuzzOptions {
            count: 24,
            zone_rounds: 1,
            zone_samples: 8,
            jobs: 1,
            gen: GenConfig {
                safety_prob: 0.4,
                ..GenConfig::default()
            },
            ..FuzzOptions::default()
        };
        let baseline = fuzz_campaign(&reference, &mut |_, _| {});
        assert!(baseline.safety > 0, "expected safety cases in the mix");
        for jobs in [0, 2, 3, 7] {
            let options = FuzzOptions {
                jobs,
                ..reference.clone()
            };
            let mut ticks = 0usize;
            let report = fuzz_campaign(&options, &mut |_, _| ticks += 1);
            assert_eq!(ticks, 24, "jobs = {jobs}");
            assert_eq!(report, baseline, "jobs = {jobs}");
        }
    }

    #[test]
    fn campaign_finds_both_verdicts() {
        // Over a modest number of cases the generator should produce both
        // winnable and unwinnable games — otherwise the engine oracle only
        // exercises half the code.
        let options = FuzzOptions {
            count: 40,
            zone_rounds: 0,
            ..FuzzOptions::default()
        };
        let report = fuzz_campaign(&options, &mut |_, _| {});
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert!(report.agreed > 0);
        assert!(
            report.winning > 0 && report.winning < report.agreed,
            "verdict mix is degenerate: {} winning of {} agreed",
            report.winning,
            report.agreed
        );
    }

    #[test]
    fn fixed_seed_smoke_run_has_zero_skips_and_checks_safety() {
        // The acceptance gate of the safety work: on the CI smoke seed every
        // generated purpose — `A<>` and `A[]` alike — is a *checked* case.
        let options = FuzzOptions {
            seed: 1,
            count: 500,
            zone_rounds: 0,
            ..FuzzOptions::default()
        };
        let report = fuzz_campaign(&options, &mut |_, _| {});
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert_eq!(report.skipped, 0, "no case may be skipped");
        assert_eq!(report.agreed, 500, "every case must be checked");
        assert!(
            report.safety > 20,
            "expected a meaningful safety share, got {}",
            report.safety
        );
        assert_eq!(
            report.executed + report.unobservable,
            report.winning,
            "every winning observable game must execute end-to-end"
        );
        assert!(
            report.executed > report.unobservable,
            "the executable share must dominate: {} executed, {} unobservable",
            report.executed,
            report.unobservable
        );
        assert!(
            report.mutants > 0 && report.detected > 0,
            "expected the mutant pool to be exercised: {} mutants, {} detected",
            report.mutants,
            report.detected
        );
    }
}
