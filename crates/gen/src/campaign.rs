//! The fuzzing campaign driver: generate → run all oracles → shrink.
//!
//! [`fuzz_campaign`] is the library entry point behind `tiga fuzz`.  It is
//! fully deterministic for a given [`FuzzOptions::seed`]: per-case seeds are
//! derived with SplitMix64, so any failing case is reproducible from the
//! master seed and its index alone — and a shrunk reproducer additionally
//! gets written out as a self-contained `.tg` file.

use crate::gen::{generate_spec, GenConfig};
use crate::oracle::{
    check_engine_agreement, check_roundtrip, check_zone_algebra, EngineCheck, EngineCheckOptions,
};
use crate::shrink::shrink_spec;
use crate::spec::SysSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tiga_lang::print_system;

/// Options of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Master seed; case `i` uses the `i`-th SplitMix64 value derived from it.
    pub seed: u64,
    /// Number of generated systems.
    pub count: usize,
    /// Whether failing cases are shrunk before reporting.
    pub shrink: bool,
    /// Re-check budget per shrink (oracle re-runs).
    pub shrink_budget: usize,
    /// Zone-algebra rounds per case (each draws fresh zones).
    pub zone_rounds: usize,
    /// Sampled valuations per zone-algebra round.
    pub zone_samples: usize,
    /// Engine budgets.
    pub engines: EngineCheckOptions,
    /// System-shape knobs.
    pub gen: GenConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            count: 100,
            shrink: true,
            shrink_budget: 400,
            zone_rounds: 2,
            zone_samples: 24,
            engines: EngineCheckOptions::default(),
            gen: GenConfig::default(),
        }
    }
}

/// One confirmed oracle failure.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index of the case within the campaign.
    pub case_index: usize,
    /// The derived per-case seed (regenerates the unshrunk system).
    pub case_seed: u64,
    /// Which oracle failed: `engine-agreement`, `roundtrip` or `zone-algebra`.
    pub oracle: &'static str,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Self-contained `.tg` reproducer (shrunk when shrinking is enabled);
    /// `None` for failures without a buildable system (`zone-algebra`,
    /// which has no system at all, and `generator`, whose spec failed to
    /// build) — those reproduce from the case seed alone.
    pub reproducer: Option<String>,
}

/// Aggregate result of a campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Systems generated.
    pub cases: usize,
    /// Cases whose game every engine solved and agreed on.
    pub agreed: usize,
    /// ... of which the shared verdict was "winning".
    pub winning: usize,
    /// Cases skipped by the engine oracle (safety objective / state limit).
    pub skipped: usize,
    /// All confirmed failures.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when every oracle was clean on every case.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a spec as a self-contained `.tg` reproducer with a header
/// documenting its provenance.
///
/// # Panics
///
/// Panics if the spec does not build (reproducers come from specs that
/// built at least once).
#[must_use]
pub fn reproducer_tg(spec: &SysSpec, case_seed: u64, oracle: &'static str) -> String {
    let (system, purpose) = spec.build().expect("reproducer spec builds");
    format!(
        "// tiga fuzz reproducer\n// oracle: {oracle}\n// case seed: {case_seed:#x}\n// re-run: tiga solve <this file> --engine jacobi   (vs. otfur/worklist)\n{}",
        print_system(&system, Some(&purpose))
    )
}

/// Runs one fuzzing campaign.  `progress` is invoked after every case with
/// `(cases_done, failures_so_far)`.
pub fn fuzz_campaign(options: &FuzzOptions, progress: &mut dyn FnMut(usize, usize)) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut stream = options.seed;
    for case_index in 0..options.count {
        let case_seed = splitmix64(&mut stream);
        report.cases += 1;

        // Oracle 3 first: it is independent of the generated system and uses
        // its own RNG stream derived from the case seed.
        let mut zone_rng = StdRng::seed_from_u64(case_seed ^ 0x5A5A_5A5A_5A5A_5A5A);
        for round in 0..options.zone_rounds {
            let dim = 2 + (round % 3);
            if let Some(detail) = check_zone_algebra(&mut zone_rng, dim, 6, options.zone_samples) {
                report.failures.push(FuzzFailure {
                    case_index,
                    case_seed,
                    oracle: "zone-algebra",
                    detail,
                    reproducer: None,
                });
            }
        }

        let spec = generate_spec(case_seed, &options.gen);
        let (system, purpose) = match spec.build() {
            Ok(built) => built,
            Err(e) => {
                // The generator must only emit buildable specs.
                report.failures.push(FuzzFailure {
                    case_index,
                    case_seed,
                    oracle: "generator",
                    detail: format!("generated spec does not build: {e}"),
                    reproducer: None,
                });
                progress(case_index + 1, report.failures.len());
                continue;
            }
        };

        // Oracle 2: roundtrip.
        if let Some(detail) = check_roundtrip(&system, &purpose) {
            let shrunk = maybe_shrink(options, &spec, &mut |s| {
                s.build()
                    .ok()
                    .is_some_and(|(sys, p)| check_roundtrip(&sys, &p).is_some())
            });
            report.failures.push(FuzzFailure {
                case_index,
                case_seed,
                oracle: "roundtrip",
                detail,
                reproducer: Some(reproducer_tg(&shrunk, case_seed, "roundtrip")),
            });
        }

        // Oracle 1: engine agreement.
        match check_engine_agreement(&system, &purpose, &options.engines) {
            EngineCheck::Agreed { winning } => {
                report.agreed += 1;
                if winning {
                    report.winning += 1;
                }
            }
            EngineCheck::Skipped(_) => report.skipped += 1,
            EngineCheck::Diverged(detail) => {
                let engines = options.engines.clone();
                let shrunk = maybe_shrink(options, &spec, &mut |s| {
                    s.build().ok().is_some_and(|(sys, p)| {
                        matches!(
                            check_engine_agreement(&sys, &p, &engines),
                            EngineCheck::Diverged(_)
                        )
                    })
                });
                report.failures.push(FuzzFailure {
                    case_index,
                    case_seed,
                    oracle: "engine-agreement",
                    detail,
                    reproducer: Some(reproducer_tg(&shrunk, case_seed, "engine-agreement")),
                });
            }
        }
        progress(case_index + 1, report.failures.len());
    }
    report
}

fn maybe_shrink(
    options: &FuzzOptions,
    spec: &SysSpec,
    still_fails: &mut dyn FnMut(&SysSpec) -> bool,
) -> SysSpec {
    if options.shrink {
        shrink_spec(spec, still_fails, options.shrink_budget)
    } else {
        spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_and_reports_progress() {
        let options = FuzzOptions {
            count: 10,
            zone_rounds: 1,
            zone_samples: 8,
            ..FuzzOptions::default()
        };
        let mut ticks = 0usize;
        let a = fuzz_campaign(&options, &mut |_, _| ticks += 1);
        assert_eq!(ticks, 10);
        assert_eq!(a.cases, 10);
        let b = fuzz_campaign(&options, &mut |_, _| {});
        assert_eq!(a.agreed, b.agreed);
        assert_eq!(a.winning, b.winning);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn campaign_finds_both_verdicts() {
        // Over a modest number of cases the generator should produce both
        // winnable and unwinnable games — otherwise the engine oracle only
        // exercises half the code.
        let options = FuzzOptions {
            count: 40,
            zone_rounds: 0,
            ..FuzzOptions::default()
        };
        let report = fuzz_campaign(&options, &mut |_, _| {});
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert!(report.agreed > 0);
        assert!(
            report.winning > 0 && report.winning < report.agreed,
            "verdict mix is degenerate: {} winning of {} agreed",
            report.winning,
            report.agreed
        );
    }
}
