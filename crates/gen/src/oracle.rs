//! The five differential oracles of the fuzzing harness.
//!
//! 1. **Engine agreement** — every solver engine must return the same
//!    verdict on a generated game — reachability (`A<>`) *and* safety
//!    (`A[]`) — and (for small graphs) semantically identical winning
//!    federations: the worklist engine must match the Jacobi oracle
//!    exactly, and the exhaustive on-the-fly engine must match
//!    `jacobi ∩ reach` per discrete state (its documented confinement).
//! 2. **Roundtrip** — `parse(print(sys)) ≡ sys` and the objective survives,
//!    on *generated* systems rather than the hand-written zoo.
//! 3. **Zone algebra** — `Federation` `up`/`down`/`free`/`reset`/
//!    `intersect`/`subtract` agree with the exact rational-valuation
//!    reference model of [`crate::refmodel`], and `zone_subtract` satisfies
//!    its partition laws.
//! 4. **`Pred_t`** — the timed-predecessor operator against the exact
//!    rational interval-sweep reference ([`check_pred_t`]).
//! 5. **Test execution** — for generated *winning* games, the synthesized
//!    strategy is executed end-to-end via [`TestHarness`] against the
//!    conformant implementation (under every deterministic output policy)
//!    and a pool of mutants, with the tioco verdicts as the oracle: the
//!    soundness theorem says a conformant implementation can never fail,
//!    and a winning strategy must actually drive every conformant run to a
//!    `pass` ([`check_test_execution`]).

use crate::refmodel;
use rand::rngs::StdRng;
use rand::Rng;
use tiga_dbm::{zone_subtract, Bound, Dbm, Federation};
use tiga_lang::{parse_model, print_system};
use tiga_model::System;
use tiga_solver::{solve, GameSolution, SolveEngine, SolveOptions, SolverError};
use tiga_tctl::TestPurpose;
use tiga_testing::{
    default_policies, generate_mutants, HarnessError, MutationConfig, OutputPolicy, SimulatedIut,
    TestConfig, TestHarness,
};

/// Outcome of the engine-agreement oracle on one generated game.
#[derive(Clone, Debug)]
pub enum EngineCheck {
    /// All engines agreed; the shared verdict is reported for statistics.
    Agreed {
        /// Whether the initial state is winning.
        winning: bool,
    },
    /// The case was not solvable within budget (or not a reachability game);
    /// not a failure.
    Skipped(String),
    /// The engines disagreed — a bug in at least one of them.
    Diverged(String),
}

/// Budget and depth knobs for the engine-agreement oracle.
#[derive(Clone, Debug)]
pub struct EngineCheckOptions {
    /// Forward-exploration state cap per engine.
    pub max_states: usize,
    /// Compare full winning federations (not just verdicts) when the Jacobi
    /// graph has at most this many discrete states.
    pub deep_compare_limit: usize,
}

impl Default for EngineCheckOptions {
    fn default() -> Self {
        EngineCheckOptions {
            max_states: 20_000,
            deep_compare_limit: 300,
        }
    }
}

fn solve_options(engine: SolveEngine, early: bool, max_states: usize) -> SolveOptions {
    let mut options = SolveOptions {
        engine,
        early_termination: early,
        ..SolveOptions::default()
    };
    options.explore.max_states = max_states;
    options
}

/// Runs all engines on one game and compares their answers.
#[must_use]
pub fn check_engine_agreement(
    system: &System,
    purpose: &TestPurpose,
    options: &EngineCheckOptions,
) -> EngineCheck {
    let jacobi = match solve(
        system,
        purpose,
        &solve_options(SolveEngine::Jacobi, true, options.max_states),
    ) {
        Ok(solution) => solution,
        Err(SolverError::StateLimitExceeded { .. }) => {
            return EngineCheck::Skipped("state limit exceeded".into());
        }
        Err(e) => return EngineCheck::Diverged(format!("jacobi failed to solve: {e}")),
    };
    let mut runs: Vec<(&'static str, GameSolution)> = Vec::new();
    for (name, engine, early) in [
        ("worklist", SolveEngine::Worklist, true),
        ("otfur", SolveEngine::Otfur, true),
        ("otfur-exhaustive", SolveEngine::Otfur, false),
    ] {
        match solve(
            system,
            purpose,
            &solve_options(engine, early, options.max_states),
        ) {
            Ok(solution) => runs.push((name, solution)),
            Err(e) => {
                return EngineCheck::Diverged(format!(
                    "jacobi solved the game but {name} failed: {e}"
                ));
            }
        }
    }
    for (name, solution) in &runs {
        if solution.winning_from_initial != jacobi.winning_from_initial {
            return EngineCheck::Diverged(format!(
                "verdict disagreement: jacobi={} but {name}={}",
                verdict(jacobi.winning_from_initial),
                verdict(solution.winning_from_initial)
            ));
        }
    }
    if jacobi.graph.len() <= options.deep_compare_limit {
        if let Some(detail) = deep_compare(system, &jacobi, &runs) {
            return EngineCheck::Diverged(detail);
        }
    }
    EngineCheck::Agreed {
        winning: jacobi.winning_from_initial,
    }
}

/// The bound-monotonicity oracle: on a time-bounded purpose, the verdict
/// must be monotone in the bound — for reachability, winning under `T`
/// implies winning under any looser bound and unbounded; for safety,
/// dually, winning under a looser bound (or unbounded) implies winning
/// under `T`.  Returns a description of the first violation; `None` when
/// the purpose is unbounded, the budget is exceeded, or everything holds.
#[must_use]
pub fn check_bound_monotonicity(
    system: &System,
    purpose: &TestPurpose,
    options: &EngineCheckOptions,
) -> Option<String> {
    let bound = purpose.bound?;
    let mut unbounded = purpose.clone();
    unbounded.bound = None;
    unbounded.source = String::new();
    let mut looser = purpose.clone();
    looser.bound = Some(bound.saturating_mul(2).saturating_add(1));
    looser.source = String::new();

    let jacobi = solve_options(SolveEngine::Jacobi, true, options.max_states);
    let verdict_of = |p: &TestPurpose, label: &str| match solve(system, p, &jacobi) {
        Ok(solution) => Some(Ok(solution.winning_from_initial)),
        Err(SolverError::StateLimitExceeded { .. }) => None,
        Err(e) => Some(Err(format!("{label} solve failed: {e}"))),
    };
    let tight = match verdict_of(purpose, "bounded")? {
        Ok(w) => w,
        Err(e) => return Some(e),
    };
    let loose = match verdict_of(&looser, "loosely bounded")? {
        Ok(w) => w,
        Err(e) => return Some(e),
    };
    let free = match verdict_of(&unbounded, "unbounded")? {
        Ok(w) => w,
        Err(e) => return Some(e),
    };
    let ok = match purpose.quantifier {
        tiga_tctl::PathQuantifier::Reachability => tight <= loose && loose <= free,
        tiga_tctl::PathQuantifier::Safety => free <= loose && loose <= tight,
    };
    if ok {
        None
    } else {
        Some(format!(
            "bound monotonicity violated ({:?}): T={bound} -> {}, T={} -> {}, unbounded -> {}",
            purpose.quantifier,
            verdict(tight),
            looser.bound.unwrap_or(0),
            verdict(loose),
            verdict(free)
        ))
    }
}

fn verdict(winning: bool) -> &'static str {
    if winning {
        "WINNING"
    } else {
        "LOSING"
    }
}

/// Winning-set comparison beyond the verdict (see module docs).
fn deep_compare(
    system: &System,
    jacobi: &GameSolution,
    runs: &[(&'static str, GameSolution)],
) -> Option<String> {
    for (name, solution) in runs {
        match *name {
            // The worklist engine explores the same eager graph and computes
            // the same fixpoint.
            "worklist" => {
                for (id, node) in jacobi.graph.nodes().iter().enumerate() {
                    let Some(other) = solution.graph.node_of(&node.discrete) else {
                        return Some(format!(
                            "worklist graph is missing state {}",
                            node.discrete.display(system)
                        ));
                    };
                    if !jacobi.winning[id].set_equals(&solution.winning[other]) {
                        return Some(format!(
                            "worklist winning set differs from jacobi in {}",
                            node.discrete.display(system)
                        ));
                    }
                }
            }
            // The exhaustive on-the-fly engine confines winning sets to the
            // explored reach zones: expected = jacobi ∩ reach, per state.
            "otfur-exhaustive" => {
                if solution.graph.len() != jacobi.graph.len() {
                    return Some(format!(
                        "exhaustive otfur explored {} states, jacobi {}",
                        solution.graph.len(),
                        jacobi.graph.len()
                    ));
                }
                for (id, node) in jacobi.graph.nodes().iter().enumerate() {
                    let Some(other) = solution.graph.node_of(&node.discrete) else {
                        return Some(format!(
                            "exhaustive otfur graph is missing state {}",
                            node.discrete.display(system)
                        ));
                    };
                    let expected = jacobi.winning[id].intersection(&node.reach);
                    if !expected.set_equals(&solution.winning[other]) {
                        return Some(format!(
                            "exhaustive otfur winning set differs from jacobi ∩ reach in {}",
                            node.discrete.display(system)
                        ));
                    }
                }
            }
            // Early-terminating otfur may stop anywhere; only its verdict is
            // comparable.
            _ => {}
        }
    }
    None
}

/// Checks `parse(print(sys)) ≡ sys` (plus objective survival and printer
/// fixpoint) on one generated system.  Returns a description of the first
/// violation.
#[must_use]
pub fn check_roundtrip(system: &System, purpose: &TestPurpose) -> Option<String> {
    let printed = print_system(system, Some(purpose));
    let model = match parse_model(&printed) {
        Ok(model) => model,
        Err(e) => {
            return Some(format!("printed .tg does not parse: {e}\n---\n{printed}"));
        }
    };
    if &model.system != system {
        return Some(format!(
            "parse(print(sys)) differs from sys\n---\n{printed}"
        ));
    }
    match &model.purpose {
        None => return Some("control: line lost in the round trip".into()),
        Some(p) if p != purpose => {
            return Some(format!(
                "objective changed in the round trip: `{}` vs `{}`",
                p, purpose
            ));
        }
        Some(_) => {}
    }
    let reprinted = print_system(&model.system, model.purpose.as_ref());
    if reprinted != printed {
        return Some("printing is not a fixpoint after one round trip".into());
    }
    None
}

// ---- test execution -------------------------------------------------------

/// Outcome of the test-execution oracle on one generated game.
#[derive(Clone, Debug)]
pub enum ExecCheck {
    /// The strategy was synthesized and executed; tallies for the report.
    Executed {
        /// Mutant implementations exercised.
        mutants: usize,
        /// ... of which the injected fault was detected (verdict `fail`).
        detected: usize,
    },
    /// The purpose is not enforceable, so there is no strategy to execute;
    /// not a failure when the caller has not already established a winning
    /// verdict.
    NotApplicable,
    /// The system has *controllable* internal (`tau`) edges, which violate
    /// the paper's observability test hypothesis: the strategy may prescribe
    /// a silent move that a black-box run cannot be told about.  Such games
    /// still exercise the solver oracles; test execution does not apply.
    /// (Uncontrollable internal edges are fine — they follow the shared
    /// forced-progression rule.)
    Unobservable,
    /// A soundness violation — a bug in the strategy extraction, the test
    /// executor, or the conformance monitor.
    Diverged(String),
}

/// Budgets of the test-execution oracle.
#[derive(Clone, Debug)]
pub struct ExecCheckOptions {
    /// Forward-exploration state cap for the harness synthesis (matches the
    /// engine oracle's budget so a game the engines solved is in reach).
    pub max_states: usize,
    /// Upper bound on the mutant pool exercised per case.
    pub max_mutants: usize,
    /// Execution budgets (tick scale, step and time caps).  The default is
    /// deliberately smaller than [`TestConfig::default`]: generated systems
    /// have single-digit constants, so a short observation window keeps the
    /// campaign fast while still deciding every run.
    pub config: TestConfig,
}

impl Default for ExecCheckOptions {
    fn default() -> Self {
        ExecCheckOptions {
            max_states: 20_000,
            max_mutants: 8,
            config: TestConfig {
                max_steps: 600,
                max_ticks: 4_000,
                ..TestConfig::default()
            },
        }
    }
}

/// Runs the synthesized strategy of a *winning* generated game against the
/// conformant implementation and a mutant pool (the fifth fuzz oracle).
///
/// The conformant implementation — the generated closed network itself,
/// simulated under every deterministic output policy — must `pass`: a
/// winning reachability strategy drives any conformant implementation into
/// the goal, and a winning safety strategy keeps it inside the safe set for
/// the whole observation budget.  Any `fail` contradicts tioco soundness
/// and any `inconclusive` contradicts the winning verdict, so both are
/// reported as divergences.  Repeated runs must also be bit-identical (the
/// executor is deterministic).  Mutants may or may not be caught — their
/// tally is reported, not asserted.
///
/// Systems with *controllable* internal (`tau`) edges are
/// [`ExecCheck::Unobservable`]: the paper's test hypothesis requires an
/// observable specification, and a strategy-prescribed silent move would
/// desynchronize every tracker in the harness.
#[must_use]
pub fn check_test_execution(
    system: &System,
    purpose: &TestPurpose,
    options: &ExecCheckOptions,
) -> ExecCheck {
    // Test execution assumes the paper's observability hypothesis.
    // *Uncontrollable* internal edges are fine: they only fire when time is
    // blocked, under the deterministic forced-progression rule that the
    // executor, the monitor and the simulated implementation share.  A
    // *controllable* internal edge, however, is a silent move the strategy
    // itself may prescribe — the black box cannot be told about it, so no
    // tracker stays synchronized with the implementation.
    let has_controllable_tau = system.automata().iter().any(|a| {
        a.edges()
            .iter()
            .any(|e| e.sync == tiga_model::Sync::Tau && e.controllable == Some(true))
    });
    if has_controllable_tau {
        return ExecCheck::Unobservable;
    }
    let mut solve_options = SolveOptions::default();
    solve_options.explore.max_states = options.max_states;
    let harness = match TestHarness::synthesize_with(
        system.clone(),
        system.clone(),
        &purpose.source,
        options.config.clone(),
        &solve_options,
    ) {
        Ok(harness) => harness,
        Err(HarnessError::NotEnforceable { .. }) => return ExecCheck::NotApplicable,
        Err(e) => return ExecCheck::Diverged(format!("harness synthesis failed: {e}")),
    };

    let scale = options.config.scale;
    let mut first_report = None;
    for policy in default_policies() {
        let mut iut = SimulatedIut::closed("conformant", system.clone(), scale, policy);
        let report = match harness.execute(&mut iut) {
            Ok(report) => report,
            Err(e) => {
                return ExecCheck::Diverged(format!(
                    "conformant execution errored under {policy:?}: {e}"
                ));
            }
        };
        if !report.verdict.is_pass() {
            return ExecCheck::Diverged(format!(
                "conformant implementation under {policy:?} got `{}` instead of pass",
                report.verdict
            ));
        }
        if let OutputPolicy::Eager = policy {
            first_report = Some(report);
        }
    }
    // Determinism of the executor: the same (strategy, implementation,
    // policy) run twice must produce the same verdict, trace and step count.
    if let Some(first) = first_report {
        let mut iut =
            SimulatedIut::closed("conformant", system.clone(), scale, OutputPolicy::Eager);
        match harness.execute(&mut iut) {
            Ok(again) if again == first => {}
            Ok(_) => {
                return ExecCheck::Diverged(
                    "re-running the eager conformant implementation changed the report".into(),
                );
            }
            Err(e) => return ExecCheck::Diverged(format!("re-run errored: {e}")),
        }
        // Compiled ≡ interpreted: the same run driven by the interpreted
        // strategy (instead of the default compiled controller) must produce
        // the identical report, trace included.
        let mut iut =
            SimulatedIut::closed("conformant", system.clone(), scale, OutputPolicy::Eager);
        match harness.execute_controlled(&mut iut, harness.strategy()) {
            Ok(interpreted) if interpreted == first => {}
            Ok(_) => {
                return ExecCheck::Diverged(
                    "interpreted strategy and compiled controller produced different reports"
                        .into(),
                );
            }
            Err(e) => return ExecCheck::Diverged(format!("interpreted run errored: {e}")),
        }
    }

    let mutation = MutationConfig {
        max_mutants: options.max_mutants,
        ..MutationConfig::default()
    };
    let mutants = match generate_mutants(system, &mutation) {
        Ok(mutants) => mutants,
        Err(e) => return ExecCheck::Diverged(format!("mutant generation failed: {e}")),
    };
    let mut detected = 0;
    for mutant in &mutants {
        let mut iut = SimulatedIut::closed(
            &mutant.name,
            mutant.system.clone(),
            scale,
            OutputPolicy::Eager,
        );
        match harness.execute(&mut iut) {
            Ok(report) => detected += usize::from(report.verdict.is_fail()),
            Err(e) => {
                return ExecCheck::Diverged(format!(
                    "mutant `{}` execution errored: {e}",
                    mutant.name
                ));
            }
        }
    }
    ExecCheck::Executed {
        mutants: mutants.len(),
        detected,
    }
}

// ---- zone algebra ---------------------------------------------------------

/// Generates a pseudo-random non-empty zone (the generator half of oracle 3;
/// also drives the `zone_subtract` property tests).
#[must_use]
pub fn random_zone(rng: &mut StdRng, dim: usize, max_const: i32) -> Dbm {
    loop {
        let mut zone = Dbm::universe(dim);
        let constraints = rng.gen_range(0..2 * dim);
        for _ in 0..constraints {
            let i = rng.gen_range(0..dim);
            let j = rng.gen_range(0..dim);
            if i == j {
                continue;
            }
            let m = rng.gen_range(-max_const..=max_const);
            let bound = if rng.gen_bool(0.5) {
                Bound::le(m)
            } else {
                Bound::lt(m)
            };
            zone.constrain(i, j, bound);
        }
        if !zone.is_empty() {
            return zone;
        }
    }
}

/// Generates a pseudo-random federation with up to `zones` member zones.
#[must_use]
pub fn random_federation(rng: &mut StdRng, dim: usize, zones: usize, max_const: i32) -> Federation {
    let count = rng.gen_range(1..=zones.max(1));
    Federation::from_zones(dim, (0..count).map(|_| random_zone(rng, dim, max_const)))
}

/// A random scaled valuation with `vals[0] = 0`.
fn random_valuation(rng: &mut StdRng, dim: usize, max_const: i32, scale: i64) -> Vec<i64> {
    let top = (i64::from(max_const) + 2) * scale;
    let mut vals = vec![0i64; dim];
    for v in vals.iter_mut().skip(1) {
        *v = rng.gen_range(0..=top);
    }
    vals
}

/// Checks the `zone_subtract` partition laws for one `(a, b)` pair:
/// every piece is non-empty, inside `a`, disjoint from `b` and from the
/// other pieces; `(a \ b) ∪ (a ∩ b)` denotes exactly `a`; and subtracting
/// `b` again from any piece is the identity.
///
/// Shared by the campaign's zone-algebra oracle and the dedicated property
/// tests (`tests/zone_subtract_props.rs`), so the law set cannot drift
/// between the two.  Returns a description of the first violation.
#[must_use]
pub fn subtract_partition_violation(a: &Dbm, b: &Dbm) -> Option<String> {
    let dim = a.dim();
    let pieces = zone_subtract(a, b);
    for (idx, piece) in pieces.iter().enumerate() {
        if piece.is_empty() {
            return Some(format!("zone_subtract produced an empty piece #{idx}"));
        }
        if !piece.is_subset_of(a) {
            return Some(format!(
                "zone_subtract piece #{idx} leaves the minuend\na = {a:?}\nb = {b:?}"
            ));
        }
        if piece.intersects(b) {
            return Some(format!(
                "zone_subtract piece #{idx} intersects the subtrahend\na = {a:?}\nb = {b:?}"
            ));
        }
        for (jdx, other) in pieces.iter().enumerate().skip(idx + 1) {
            if piece.intersects(other) {
                return Some(format!(
                    "zone_subtract pieces #{idx} and #{jdx} overlap\na = {a:?}\nb = {b:?}"
                ));
            }
        }
        let again = Federation::from_zones(dim, zone_subtract(piece, b));
        if !again.set_equals(&Federation::from_zone(piece.clone())) {
            return Some(format!(
                "zone_subtract piece #{idx} is not stable under re-subtraction\na = {a:?}\nb = {b:?}"
            ));
        }
    }
    let mut recovered = Federation::from_zones(dim, pieces);
    if let Some(meet) = a.intersection(b) {
        recovered.add_zone(meet);
    }
    if !recovered.set_equals(&Federation::from_zone(a.clone())) {
        return Some(format!(
            "(a \\ b) ∪ (a ∩ b) differs from a\na = {a:?}\nb = {b:?}"
        ));
    }
    None
}

/// One round of the zone-algebra oracle: random zones/federations through
/// every per-zone transformer and the subtraction laws, checked against the
/// reference model at `samples` random rational valuations.
///
/// Returns a description of the first violation.
#[must_use]
pub fn check_zone_algebra(
    rng: &mut StdRng,
    dim: usize,
    max_const: i32,
    samples: usize,
) -> Option<String> {
    let scale = 2;
    let a = random_zone(rng, dim, max_const);
    let b = random_zone(rng, dim, max_const);

    // zone_subtract partition laws (symbolic, no sampling).
    if let Some(violation) = subtract_partition_violation(&a, &b) {
        return Some(violation);
    }

    // Federation transformers vs the reference model at sampled valuations.
    let fa = random_federation(rng, dim, 3, max_const);
    let fb = random_federation(rng, dim, 3, max_const);
    let mut up = fa.clone();
    up.up();
    let mut down = fa.clone();
    down.down();
    let free_k = if dim > 1 {
        Some(rng.gen_range(1..dim))
    } else {
        None
    };
    let freed = free_k.map(|k| {
        let mut f = fa.clone();
        f.free(k);
        f
    });
    let reset_v = rng.gen_range(0..=max_const);
    let reset = free_k.map(|k| {
        let mut f = fa.clone();
        f.reset(k, reset_v);
        f
    });
    let inter = fa.intersection(&fb);
    let diff = fa.difference(&fb);

    for _ in 0..samples {
        let vals = random_valuation(rng, dim, max_const, scale);
        let in_a = fa.iter().any(|z| refmodel::zone_contains(z, &vals, scale));
        let in_b = fb.iter().any(|z| refmodel::zone_contains(z, &vals, scale));
        let point = || {
            vals.iter()
                .skip(1)
                .map(|v| format!("{}", *v as f64 / scale as f64))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if inter.contains_at(&vals, scale) != (in_a && in_b) {
            return Some(format!(
                "intersection disagrees with the reference at ({})\nfa = {fa:?}\nfb = {fb:?}",
                point()
            ));
        }
        if diff.contains_at(&vals, scale) != (in_a && !in_b) {
            return Some(format!(
                "difference disagrees with the reference at ({})\nfa = {fa:?}\nfb = {fb:?}",
                point()
            ));
        }
        let ref_up = fa.iter().any(|z| refmodel::up_contains(z, &vals, scale));
        if up.contains_at(&vals, scale) != ref_up {
            return Some(format!(
                "up() disagrees with the reference at ({})\nfa = {fa:?}",
                point()
            ));
        }
        let ref_down = fa.iter().any(|z| refmodel::down_contains(z, &vals, scale));
        if down.contains_at(&vals, scale) != ref_down {
            return Some(format!(
                "down() disagrees with the reference at ({})\nfa = {fa:?}",
                point()
            ));
        }
        if let (Some(k), Some(freed)) = (free_k, &freed) {
            let ref_free = fa
                .iter()
                .any(|z| refmodel::free_contains(z, k, &vals, scale));
            if freed.contains_at(&vals, scale) != ref_free {
                return Some(format!(
                    "free({k}) disagrees with the reference at ({})\nfa = {fa:?}",
                    point()
                ));
            }
        }
        if let (Some(k), Some(reset)) = (free_k, &reset) {
            let ref_reset = fa
                .iter()
                .any(|z| refmodel::reset_contains(z, k, reset_v, &vals, scale));
            if reset.contains_at(&vals, scale) != ref_reset {
                return Some(format!(
                    "reset({k}, {reset_v}) disagrees with the reference at ({})\nfa = {fa:?}",
                    point()
                ));
            }
        }
    }
    None
}

/// One round of the `Pred_t` oracle (the fourth fuzz oracle): random good
/// and bad federations through [`tiga_dbm::Federation::pred_t`], checked
/// against the exact rational interval-sweep reference
/// [`refmodel::pred_t_contains`] at `samples` random valuations.
///
/// Returns a description of the first violation.
#[must_use]
pub fn check_pred_t(
    rng: &mut StdRng,
    dim: usize,
    max_const: i32,
    samples: usize,
) -> Option<String> {
    let scale = 2;
    let good = random_federation(rng, dim, 3, max_const);
    let bad = if rng.gen_bool(0.2) {
        Federation::empty(dim)
    } else {
        random_federation(rng, dim, 3, max_const)
    };
    let result = good.pred_t(&bad);
    let good_zones: Vec<&Dbm> = good.iter().collect();
    let bad_zones: Vec<&Dbm> = bad.iter().collect();
    for _ in 0..samples {
        let vals = random_valuation(rng, dim, max_const, scale);
        let expected = refmodel::pred_t_contains(&good_zones, &bad_zones, &vals, scale);
        if result.contains_at(&vals, scale) != expected {
            let point = vals
                .iter()
                .skip(1)
                .map(|v| format!("{}", *v as f64 / scale as f64))
                .collect::<Vec<_>>()
                .join(", ");
            return Some(format!(
                "pred_t disagrees with the reference at ({point}): \
                 pred_t said {}, reference said {expected}\ngood = {good:?}\nbad = {bad:?}",
                !expected
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pred_t_oracle_is_clean_on_seeded_rounds() {
        let mut rng = StdRng::seed_from_u64(0x9ED7);
        for round in 0..100 {
            for dim in 2..=4 {
                if let Some(detail) = check_pred_t(&mut rng, dim, 6, 24) {
                    panic!("round {round}, dim {dim}: {detail}");
                }
            }
        }
    }

    #[test]
    fn engine_agreement_covers_safety_objectives() {
        // With the reachability-only skip gone, generated `A[]` games are
        // checked cases; force a safety-heavy distribution to exercise the
        // dual fixpoint across all engines.
        let config = crate::GenConfig {
            safety_prob: 1.0,
            ..crate::GenConfig::default()
        };
        let options = EngineCheckOptions::default();
        let mut agreed = 0;
        for seed in 0..30 {
            let (system, purpose) = crate::generate_spec(seed, &config).build().unwrap();
            assert_eq!(purpose.quantifier, tiga_tctl::PathQuantifier::Safety);
            match check_engine_agreement(&system, &purpose, &options) {
                EngineCheck::Agreed { .. } => agreed += 1,
                EngineCheck::Skipped(reason) => {
                    panic!("seed {seed}: safety case skipped ({reason})")
                }
                EngineCheck::Diverged(detail) => panic!("seed {seed}: {detail}"),
            }
        }
        assert_eq!(agreed, 30);
    }

    #[test]
    fn zone_algebra_oracle_is_clean_on_seeded_rounds() {
        let mut rng = StdRng::seed_from_u64(0xA15E);
        for round in 0..50 {
            for dim in 2..=4 {
                if let Some(detail) = check_zone_algebra(&mut rng, dim, 6, 16) {
                    panic!("round {round}, dim {dim}: {detail}");
                }
            }
        }
    }

    #[test]
    fn engine_agreement_on_generated_systems() {
        let config = crate::GenConfig::default();
        let options = EngineCheckOptions::default();
        let mut agreed = 0;
        for seed in 0..30 {
            let (system, purpose) = crate::generate_spec(seed, &config).build().unwrap();
            match check_engine_agreement(&system, &purpose, &options) {
                EngineCheck::Agreed { .. } => agreed += 1,
                EngineCheck::Skipped(_) => {}
                EngineCheck::Diverged(detail) => panic!("seed {seed}: {detail}"),
            }
        }
        assert!(agreed >= 20, "only {agreed}/30 cases were solvable");
    }

    #[test]
    fn test_execution_oracle_on_generated_winning_games() {
        // The full fifth-oracle loop on a slice of the default distribution:
        // every game the engines call winning must synthesize a harness and
        // drive the conformant implementation to `pass` under every policy.
        let config = crate::GenConfig::default();
        let engine_options = EngineCheckOptions::default();
        let exec_options = ExecCheckOptions::default();
        let mut executed = 0;
        for seed in 0..30 {
            let (system, purpose) = crate::generate_spec(seed, &config).build().unwrap();
            let winning = match check_engine_agreement(&system, &purpose, &engine_options) {
                EngineCheck::Agreed { winning } => winning,
                EngineCheck::Skipped(_) => continue,
                EngineCheck::Diverged(detail) => panic!("seed {seed}: {detail}"),
            };
            if !winning {
                continue;
            }
            match check_test_execution(&system, &purpose, &exec_options) {
                ExecCheck::Executed { .. } => executed += 1,
                // Internal edges are outside the observability hypothesis.
                ExecCheck::Unobservable => {}
                // The engines proved the game winning with the same state
                // budget, so the harness must find the strategy too.
                ExecCheck::NotApplicable => {
                    panic!("seed {seed}: winning game deemed not enforceable")
                }
                ExecCheck::Diverged(detail) => panic!("seed {seed}: {detail}"),
            }
        }
        assert!(executed >= 10, "only {executed}/30 cases were executed");
    }

    #[test]
    fn roundtrip_oracle_on_generated_systems() {
        let config = crate::GenConfig::default();
        for seed in 0..60 {
            let (system, purpose) = crate::generate_spec(seed, &config).build().unwrap();
            if let Some(detail) = check_roundtrip(&system, &purpose) {
                panic!("seed {seed}: {detail}");
            }
        }
    }
}
