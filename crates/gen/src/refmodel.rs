//! A slow, independent reference model of the zone operators, used as the
//! fuzzing oracle for the DBM/Federation layer.
//!
//! Every check works on *rational valuations* represented exactly as scaled
//! integers (`vals[i] = scale · value(x_i)`, `vals[0] = 0`).  Operators with
//! an existential witness (`up`, `down`, `free`, `reset`) are decided by
//! exact interval arithmetic over the witness (a delay `δ` or a freed clock
//! value `w`): each DBM entry contributes one lower or upper bound with a
//! strictness flag, and the operator holds iff the resulting interval is
//! non-empty.  No grid refinement is needed — the decision is exact for
//! every rational valuation on the grid.
//!
//! The same interval machinery decides the game-level safe time-predecessor
//! `Pred_t(G, B)` ([`pred_t_contains`]): the delay witness must land in a
//! good window while staying below the avoid threshold contributed by every
//! bad zone's window — the operator both fuzz-found solver bugs sat next
//! to, now covered by its own oracle.
//!
//! The reference deliberately reads only the raw DBM entries
//! ([`Dbm::at`], [`Bound::constant`], [`Bound::is_strict`]); it shares no
//! logic with the transformer implementations it is checking.

use tiga_dbm::{Bound, Dbm};

/// A (possibly empty, possibly unbounded-above) interval over scaled values,
/// with strict/non-strict endpoints.
#[derive(Clone, Copy, Debug)]
struct Window {
    lo: i64,
    lo_strict: bool,
    hi: Option<i64>,
    hi_strict: bool,
}

impl Window {
    /// `[0, ∞)`.
    fn nonneg() -> Self {
        Window {
            lo: 0,
            lo_strict: false,
            hi: None,
            hi_strict: false,
        }
    }

    fn add_lower(&mut self, v: i64, strict: bool) {
        if v > self.lo || (v == self.lo && strict) {
            self.lo = v;
            self.lo_strict = strict;
        }
    }

    fn add_upper(&mut self, v: i64, strict: bool) {
        match self.hi {
            None => {
                self.hi = Some(v);
                self.hi_strict = strict;
            }
            Some(cur) => {
                if v < cur || (v == cur && strict) {
                    self.hi = Some(v);
                    self.hi_strict = strict;
                }
            }
        }
    }

    /// Does the interval contain a rational point?
    ///
    /// Between two distinct rationals there is always another rational, so
    /// the interval is non-empty iff `lo < hi`, or `lo == hi` with both
    /// endpoints closed.
    fn is_nonempty(&self) -> bool {
        match self.hi {
            None => true,
            Some(hi) => self.lo < hi || (self.lo == hi && !self.lo_strict && !self.hi_strict),
        }
    }
}

/// Does the scaled difference `d` satisfy the bound?
fn admits(b: Bound, d: i64, scale: i64) -> bool {
    match b.constant() {
        None => true,
        Some(m) => {
            let limit = i64::from(m) * scale;
            if b.is_strict() {
                d < limit
            } else {
                d <= limit
            }
        }
    }
}

/// Reference membership: does the scaled valuation lie in the zone?
///
/// # Panics
///
/// Panics if `vals.len() != zone.dim()`.
#[must_use]
pub fn zone_contains(zone: &Dbm, vals: &[i64], scale: i64) -> bool {
    assert_eq!(vals.len(), zone.dim(), "one value per clock required");
    if zone.is_empty() {
        return false;
    }
    for i in 0..zone.dim() {
        for j in 0..zone.dim() {
            if i != j && !admits(zone.at(i, j), vals[i] - vals[j], scale) {
                return false;
            }
        }
    }
    true
}

/// The interval of delays `δ ≥ 0` with `vals + δ·1 ∈ zone`, or `None` when
/// no delay enters the zone (including when a delay-invariant difference
/// constraint already fails).
///
/// The window is exact over the rationals: endpoints are scaled integers
/// with strictness flags, so `Pred_t` decisions need no grid refinement.
fn delay_window(zone: &Dbm, vals: &[i64], scale: i64) -> Option<Window> {
    assert_eq!(vals.len(), zone.dim(), "one value per clock required");
    if zone.is_empty() {
        return None;
    }
    let n = zone.dim();
    // Differences between real clocks are delay-invariant.
    for i in 1..n {
        for j in 1..n {
            if i != j && !admits(zone.at(i, j), vals[i] - vals[j], scale) {
                return None;
            }
        }
    }
    let mut w = Window::nonneg();
    for (i, &v) in vals.iter().enumerate().skip(1) {
        // (v_i + δ) - 0 ≺ m  ⟺  δ ≺ m·scale - v_i
        if let Some(m) = zone.at(i, 0).constant() {
            w.add_upper(i64::from(m) * scale - v, zone.at(i, 0).is_strict());
        }
        // 0 - (v_i + δ) ≺ m  ⟺  δ ≻ -m·scale - v_i
        if let Some(m) = zone.at(0, i).constant() {
            w.add_lower(-i64::from(m) * scale - v, zone.at(0, i).is_strict());
        }
    }
    w.is_nonempty().then_some(w)
}

/// Reference for the safe time-predecessor `Pred_t(good, bad)`: does some
/// delay `δ ≥ 0` exist with `vals + δ·1 ∈ good` while the whole trajectory
/// `[0, δ]` avoids `bad`?
///
/// Decided by an exact rational interval sweep over the delay witness:
/// each good zone contributes one candidate delay interval
/// ([`delay_window`]), each bad zone an *avoid threshold* — the infimum of
/// its delay window caps every admissible `δ` (strictly when the bad window
/// is closed at its infimum, non-strictly when it is open there, since the
/// trajectory endpoint itself must avoid `bad`).  The operator holds iff
/// some good interval meets the `[0, threshold]` prefix.
#[must_use]
pub fn pred_t_contains(good: &[&Dbm], bad: &[&Dbm], vals: &[i64], scale: i64) -> bool {
    // The tightest avoid threshold over all bad zones: admissible delays
    // form the prefix `[0, cap)` (`cap_closed` = the cap itself is still
    // admissible, which happens when the bad window opens strictly).
    let mut cap: Option<(i64, bool)> = None;
    for b in bad {
        if let Some(w) = delay_window(b, vals, scale) {
            let candidate = (w.lo, w.lo_strict);
            cap = Some(match cap {
                None => candidate,
                Some(current) => {
                    // Smaller threshold wins; at equal thresholds the open
                    // (non-admissible) one is the stricter constraint.
                    if candidate.0 < current.0 || (candidate.0 == current.0 && !candidate.1) {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
    }
    for g in good {
        if let Some(mut w) = delay_window(g, vals, scale) {
            if let Some((threshold, closed)) = cap {
                w.add_upper(threshold, !closed);
            }
            if w.is_nonempty() {
                return true;
            }
        }
    }
    false
}

/// Reference for `up`: is `vals` in the delay-future of the zone, i.e. does
/// some `δ ≥ 0` exist with `vals - δ·1 ∈ zone`?
#[must_use]
pub fn up_contains(zone: &Dbm, vals: &[i64], scale: i64) -> bool {
    assert_eq!(vals.len(), zone.dim(), "one value per clock required");
    if zone.is_empty() {
        return false;
    }
    let n = zone.dim();
    // Differences between real clocks are delay-invariant.
    for i in 1..n {
        for j in 1..n {
            if i != j && !admits(zone.at(i, j), vals[i] - vals[j], scale) {
                return false;
            }
        }
    }
    let mut w = Window::nonneg();
    for (i, &v) in vals.iter().enumerate().skip(1) {
        // (v_i - δ) - 0 ≺ m  ⟺  δ ≻ v_i - m·scale
        if let Some(m) = zone.at(i, 0).constant() {
            w.add_lower(v - i64::from(m) * scale, zone.at(i, 0).is_strict());
        }
        // 0 - (v_i - δ) ≺ m  ⟺  δ ≺ m·scale + v_i
        if let Some(m) = zone.at(0, i).constant() {
            w.add_upper(i64::from(m) * scale + v, zone.at(0, i).is_strict());
        }
    }
    w.is_nonempty()
}

/// Reference for `down`: does some `δ ≥ 0` exist with `vals + δ·1 ∈ zone`?
#[must_use]
pub fn down_contains(zone: &Dbm, vals: &[i64], scale: i64) -> bool {
    assert_eq!(vals.len(), zone.dim(), "one value per clock required");
    if zone.is_empty() {
        return false;
    }
    let n = zone.dim();
    for i in 1..n {
        for j in 1..n {
            if i != j && !admits(zone.at(i, j), vals[i] - vals[j], scale) {
                return false;
            }
        }
    }
    let mut w = Window::nonneg();
    for (i, &v) in vals.iter().enumerate().skip(1) {
        // (v_i + δ) - 0 ≺ m  ⟺  δ ≺ m·scale - v_i
        if let Some(m) = zone.at(i, 0).constant() {
            w.add_upper(i64::from(m) * scale - v, zone.at(i, 0).is_strict());
        }
        // 0 - (v_i + δ) ≺ m  ⟺  δ ≻ -m·scale - v_i
        if let Some(m) = zone.at(0, i).constant() {
            w.add_lower(-i64::from(m) * scale - v, zone.at(0, i).is_strict());
        }
    }
    w.is_nonempty()
}

/// Reference for `free(k)`: does some `w ≥ 0` exist with
/// `vals[k := w] ∈ zone`?
///
/// Also the witness check behind [`reset_contains`].
#[must_use]
pub fn free_contains(zone: &Dbm, k: usize, vals: &[i64], scale: i64) -> bool {
    assert_eq!(vals.len(), zone.dim(), "one value per clock required");
    assert!(k > 0 && k < zone.dim(), "cannot free the reference clock");
    if zone.is_empty() {
        return false;
    }
    let n = zone.dim();
    // Constraints not involving clock k must already hold.
    for i in 0..n {
        for j in 0..n {
            if i != j && i != k && j != k && !admits(zone.at(i, j), vals[i] - vals[j], scale) {
                return false;
            }
        }
    }
    let mut wnd = Window::nonneg();
    for (j, &v) in vals.iter().enumerate() {
        if j == k {
            continue;
        }
        // w - v_j ≺ m  ⟺  w ≺ m·scale + v_j
        if let Some(m) = zone.at(k, j).constant() {
            wnd.add_upper(i64::from(m) * scale + v, zone.at(k, j).is_strict());
        }
        // v_j - w ≺ m  ⟺  w ≻ v_j - m·scale
        if let Some(m) = zone.at(j, k).constant() {
            wnd.add_lower(v - i64::from(m) * scale, zone.at(j, k).is_strict());
        }
    }
    wnd.is_nonempty()
}

/// Reference for `reset(k, value)`: `reset` maps every zone valuation to the
/// same valuation with clock `k` forced to `value`, so membership in the
/// image requires `vals[k] == value·scale` plus a witness for the
/// pre-reset value of clock `k` (the [`free_contains`] interval).
#[must_use]
pub fn reset_contains(zone: &Dbm, k: usize, value: i32, vals: &[i64], scale: i64) -> bool {
    vals[k] == i64::from(value) * scale && free_contains(zone, k, vals, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zone `lo ≤ x ≤ hi` over one clock (dim 2).
    fn interval(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(0, 1, Bound::le(-lo)));
        assert!(z.constrain(1, 0, Bound::le(hi)));
        z
    }

    #[test]
    fn zone_contains_matches_dbm() {
        let z = interval(1, 3);
        for v in 0..10 {
            assert_eq!(
                zone_contains(&z, &[0, v], 2),
                z.contains_scaled(&[0, v]),
                "x = {}",
                v as f64 / 2.0
            );
        }
    }

    #[test]
    fn up_witness_interval() {
        let z = interval(1, 3);
        // x = 5 is in up(z) (delay from x = 3), x = 0.5 is not.
        assert!(up_contains(&z, &[0, 10], 2));
        assert!(!up_contains(&z, &[0, 1], 2));
        // Two clocks: delay preserves differences — (2, 2) is reachable from
        // the origin by delay, (2, 1) is not.
        let orig = Dbm::zero(3);
        assert!(up_contains(&orig, &[0, 4, 4], 2));
        assert!(!up_contains(&orig, &[0, 4, 2], 2));
    }

    #[test]
    fn down_witness_interval() {
        let z = interval(4, 5);
        assert!(down_contains(&z, &[0, 0], 2));
        assert!(down_contains(&z, &[0, 9], 2)); // 4.5
        assert!(!down_contains(&z, &[0, 11], 2)); // 5.5
    }

    #[test]
    fn strict_interval_still_has_rational_witness() {
        // Zone 2 < x < 3: from x = 0 a delay in (2, 3) exists even though no
        // half-integer delay does at scale 1 — the interval check must say
        // yes regardless of the grid.
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::lt(-2));
        z.constrain(1, 0, Bound::lt(3));
        assert!(down_contains(&z, &[0, 0], 1));
        assert!(up_contains(&z, &[0, 4], 1)); // x = 4 from x ∈ (2,3)
    }

    #[test]
    fn pred_t_with_no_bad_is_down() {
        let g = interval(4, 5);
        for v in 0..12 {
            assert_eq!(
                pred_t_contains(&[&g], &[], &[0, v], 2),
                down_contains(&g, &[0, v], 2),
                "x = {}",
                v as f64 / 2.0
            );
        }
    }

    #[test]
    fn pred_t_is_blocked_by_earlier_bad() {
        let g = interval(4, 5);
        let b = interval(2, 3);
        // From x = 0 the trajectory crosses the bad interval first.
        assert!(!pred_t_contains(&[&g], &[&b], &[0, 0], 2));
        // From x = 2.5 the valuation is inside bad: nothing is admissible.
        assert!(!pred_t_contains(&[&g], &[&b], &[0, 5], 2));
        // From x = 3.5 the bad interval is behind; good is ahead.
        assert!(pred_t_contains(&[&g], &[&b], &[0, 7], 2));
        // Inside good with bad behind.
        assert!(pred_t_contains(&[&g], &[&b], &[0, 9], 2));
    }

    #[test]
    fn pred_t_endpoint_strictness() {
        // Good starts exactly where bad starts.  With a *strictly* open bad
        // interval (2 < x <= 3) the trajectory may stop at x = 2 (still
        // outside bad) and be inside good; with a closed bad ([2, 3]) it
        // may not.
        let g = interval(2, 5);
        let mut open_bad = Dbm::universe(2);
        open_bad.constrain(0, 1, Bound::lt(-2));
        open_bad.constrain(1, 0, Bound::le(3));
        let closed_bad = interval(2, 3);
        assert!(pred_t_contains(&[&g], &[&open_bad], &[0, 0], 2));
        assert!(!pred_t_contains(&[&g], &[&closed_bad], &[0, 0], 2));
    }

    #[test]
    fn pred_t_takes_the_tightest_bad_threshold() {
        let g = interval(6, 7);
        let near = interval(1, 2);
        let far = interval(4, 5);
        assert!(!pred_t_contains(&[&g], &[&near, &far], &[0, 0], 2));
        assert!(!pred_t_contains(&[&g], &[&far, &near], &[0, 0], 2));
        // Past the near one, the far one still blocks.
        assert!(!pred_t_contains(&[&g], &[&near, &far], &[0, 5], 2));
        // Past both, good is reachable.
        assert!(pred_t_contains(&[&g], &[&near, &far], &[0, 11], 2));
    }

    #[test]
    fn free_and_reset_witnesses() {
        // dim 3, zone: x = 5 (clock 1), y free in [0, 2] (clock 2).
        let mut z = Dbm::universe(3);
        z.constrain(1, 0, Bound::le(5));
        z.constrain(0, 1, Bound::le(-5));
        z.constrain(2, 0, Bound::le(2));
        // free(2): y may be anything, x stays 5.
        assert!(free_contains(&z, 2, &[0, 10, 99], 2));
        assert!(!free_contains(&z, 2, &[0, 8, 0], 2)); // x = 4 ≠ 5
                                                       // reset(2, 1): y must equal 1, and the old y needs a witness in [0,2].
        assert!(reset_contains(&z, 2, 1, &[0, 10, 2], 2));
        assert!(!reset_contains(&z, 2, 1, &[0, 10, 4], 2)); // y = 2 ≠ 1
    }
}
