//! # tiga-gen — seeded random timed games and differential fuzzing oracles
//!
//! The hand-written model zoo covers four case studies; this crate covers
//! everything else.  It provides
//!
//! * a **seeded, knob-controlled generator** of random timed-game systems
//!   ([`generate_spec`], [`GenConfig`]) — clocks, bounded variables and
//!   arrays, input/output/internal channels, urgent locations, invariants,
//!   guarded edges with resets and updates, and a random `control:`
//!   objective — materialized through the ordinary [`tiga_model`] builders;
//! * four **differential oracles** ([`check_engine_agreement`],
//!   [`check_roundtrip`], [`check_zone_algebra`], [`check_pred_t`]) that
//!   cross-check the solver engines against each other — on reachability
//!   *and* safety objectives — the `.tg` printer against the parser, and
//!   the DBM/Federation layer (including the game-level safe
//!   time-predecessor `Pred_t`) against an exact rational-valuation
//!   reference model ([`refmodel`]);
//! * a **greedy structural shrinker** ([`shrink_spec`]) that reduces a
//!   failing system to a minimal `.tg` reproducer, bisecting guard and
//!   invariant constants toward zero and simplifying channel kinds; and
//! * the **campaign driver** ([`fuzz_campaign`]) behind `tiga fuzz`, which
//!   shards cases over a deterministic work queue (`--jobs`) with
//!   bit-identical findings for any job count.
//!
//! Everything is deterministic per seed: a failure report names the case
//! seed, and `generate_spec(case_seed, &config)` regenerates the exact
//! offending system.
//!
//! # Example
//!
//! ```
//! use tiga_gen::{fuzz_campaign, FuzzOptions};
//!
//! let options = FuzzOptions {
//!     count: 5,
//!     ..FuzzOptions::default()
//! };
//! let report = fuzz_campaign(&options, &mut |_, _| {});
//! assert_eq!(report.cases, 5);
//! assert!(report.is_clean(), "{:#?}", report.failures);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod gen;
mod oracle;
pub mod refmodel;
mod shrink;
mod spec;

pub use campaign::{
    derive_case_seeds, fuzz_campaign, reproducer_tg, FuzzFailure, FuzzOptions, FuzzReport,
};
pub use gen::{generate_spec, GenConfig};
pub use oracle::{
    check_bound_monotonicity, check_engine_agreement, check_pred_t, check_roundtrip,
    check_test_execution, check_zone_algebra, random_federation, random_zone,
    subtract_partition_violation, EngineCheck, EngineCheckOptions, ExecCheck, ExecCheckOptions,
};
pub use shrink::shrink_spec;
pub use spec::{
    AutSpec, ChanKind, ConstraintSpec, EdgeSpec, ExprSpec, LocSpec, ObjectiveSpec, SpecError,
    SysSpec, UpdateSpec, VarSpec,
};
