//! Structural shrinking of failing specs.
//!
//! Given a spec on which an oracle fails and a predicate that re-runs the
//! oracle, [`shrink_spec`] greedily applies the first structural edit that
//! keeps the failure alive, restarting from the largest-granularity edits
//! (drop an automaton) down to clause-level cleanups (drop one guard,
//! bisect a guard/invariant constant toward zero, simplify an internal
//! channel to a plain input), until no edit preserves the failure or the
//! re-check budget is exhausted.
//!
//! Every candidate edit strictly decreases [`crate::SysSpec::size_metric`]
//! (pinned by a test), so greedy descent terminates and reproducers only
//! ever get smaller.  Edits that produce a spec that no longer *builds*
//! (e.g. dropping the automaton the objective points at) are discarded
//! without consuming budget: [`crate::SysSpec::build`] is the validity
//! filter.

use crate::spec::{ChanKind, SysSpec};

/// Greedily shrinks `spec` while `still_fails` holds.
///
/// `budget` caps the number of `still_fails` invocations (each one re-runs
/// the failing oracle, which may involve solving the game four times).
#[must_use]
pub fn shrink_spec(
    spec: &SysSpec,
    still_fails: &mut dyn FnMut(&SysSpec) -> bool,
    mut budget: usize,
) -> SysSpec {
    let mut current = spec.clone();
    'outer: loop {
        for candidate in candidates(&current) {
            if budget == 0 {
                break 'outer;
            }
            if candidate.build().is_err() {
                continue;
            }
            budget -= 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Enumerates one-step shrink candidates, coarsest first.
fn candidates(spec: &SysSpec) -> Vec<SysSpec> {
    let mut out = Vec::new();
    // Whole automata (keep at least one).
    if spec.automata.len() > 1 {
        for a in 0..spec.automata.len() {
            let mut s = spec.clone();
            s.drop_automaton(a);
            out.push(s);
        }
    }
    // Channels (edges synchronizing on them go too).
    for ch in 0..spec.channels.len() {
        let mut s = spec.clone();
        s.drop_channel(ch);
        out.push(s);
    }
    // Edges.
    for (a, aut) in spec.automata.iter().enumerate() {
        for e in 0..aut.edges.len() {
            let mut s = spec.clone();
            s.automata[a].edges.remove(e);
            out.push(s);
        }
    }
    // Locations (touching edges go too; keep at least one per automaton).
    for (a, aut) in spec.automata.iter().enumerate() {
        if aut.locations.len() > 1 {
            for l in 0..aut.locations.len() {
                let mut s = spec.clone();
                s.drop_location(a, l);
                out.push(s);
            }
        }
    }
    // Clocks and variables.
    for c in 0..spec.clocks {
        let mut s = spec.clone();
        s.drop_clock(c);
        out.push(s);
    }
    for v in 0..spec.vars.len() {
        let mut s = spec.clone();
        s.drop_var(v);
        out.push(s);
    }
    // Clause-level cleanups.
    for (a, aut) in spec.automata.iter().enumerate() {
        for (l, loc) in aut.locations.iter().enumerate() {
            if !loc.invariant.is_empty() {
                let mut s = spec.clone();
                s.automata[a].locations[l].invariant.clear();
                out.push(s);
            }
            if loc.urgent {
                let mut s = spec.clone();
                s.automata[a].locations[l].urgent = false;
                out.push(s);
            }
        }
        for (e, edge) in aut.edges.iter().enumerate() {
            for g in 0..edge.guard.len() {
                let mut s = spec.clone();
                s.automata[a].edges[e].guard.remove(g);
                out.push(s);
            }
            if edge.when.is_some() {
                let mut s = spec.clone();
                s.automata[a].edges[e].when = None;
                out.push(s);
            }
            for r in 0..edge.resets.len() {
                let mut s = spec.clone();
                s.automata[a].edges[e].resets.remove(r);
                out.push(s);
            }
            for u in 0..edge.updates.len() {
                let mut s = spec.clone();
                s.automata[a].edges[e].updates.remove(u);
                out.push(s);
            }
            if edge.controllable.is_some() {
                let mut s = spec.clone();
                s.automata[a].edges[e].controllable = None;
                out.push(s);
            }
        }
    }
    // Constant bisection: pull guard and invariant bounds toward 0 by
    // halving (a few greedy restarts reach the minimal failing constant).
    for (a, aut) in spec.automata.iter().enumerate() {
        for (l, loc) in aut.locations.iter().enumerate() {
            for (c, constraint) in loc.invariant.iter().enumerate() {
                if constraint.bound != 0 {
                    let mut s = spec.clone();
                    s.automata[a].locations[l].invariant[c].bound = constraint.bound / 2;
                    out.push(s);
                }
            }
        }
        for (e, edge) in aut.edges.iter().enumerate() {
            for (g, constraint) in edge.guard.iter().enumerate() {
                if constraint.bound != 0 {
                    let mut s = spec.clone();
                    s.automata[a].edges[e].guard[g].bound = constraint.bound / 2;
                    out.push(s);
                }
            }
        }
    }
    // Channel-kind simplification: an internal channel (whose edges carry
    // controllability overrides) becomes a plain controllable input.
    for (ch, kind) in spec.channels.iter().enumerate() {
        if *kind == ChanKind::Internal {
            let mut s = spec.clone();
            s.channels[ch] = ChanKind::Input;
            out.push(s);
        }
    }
    // Objective simplifications.
    if spec.objective.or_target.is_some() {
        let mut s = spec.clone();
        s.objective.or_target = None;
        out.push(s);
    }
    if spec.objective.var_clause.is_some() {
        let mut s = spec.clone();
        s.objective.var_clause = None;
        out.push(s);
    }
    if let Some(bound) = spec.objective.bound {
        // Drop the time bound entirely, and bisect it toward 1 (a bound of
        // 0 degenerates most objectives to the initial state).
        let mut s = spec.clone();
        s.objective.bound = None;
        out.push(s);
        if bound > 1 {
            let mut s = spec.clone();
            s.objective.bound = Some(bound / 2);
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_spec, GenConfig};

    #[test]
    fn shrinks_to_the_failure_kernel() {
        // Synthetic failure: "the spec still contains an urgent location".
        // The shrinker must strip everything not needed to keep one urgent
        // location alive while every intermediate spec still builds.
        let config = GenConfig {
            urgent_prob: 1.0,
            ..GenConfig::default()
        };
        let spec = generate_spec(5, &config);
        assert!(spec.build().is_ok());
        let mut checks = 0usize;
        let shrunk = shrink_spec(
            &spec,
            &mut |s| {
                checks += 1;
                s.automata
                    .iter()
                    .any(|a| a.locations.iter().any(|l| l.urgent))
            },
            1_000,
        );
        assert!(checks > 0);
        assert!(shrunk.build().is_ok(), "shrunk spec must still build");
        assert!(shrunk
            .automata
            .iter()
            .any(|a| a.locations.iter().any(|l| l.urgent)));
        // The kernel is small: one automaton, no channels, no vars, no
        // clocks, and at most the locations the objective needs.
        assert_eq!(shrunk.automata.len(), 1);
        assert!(shrunk.channels.is_empty());
        assert!(shrunk.vars.is_empty());
        assert_eq!(shrunk.clocks, 0);
    }

    #[test]
    fn budget_zero_returns_the_input() {
        let spec = generate_spec(6, &GenConfig::default());
        let shrunk = shrink_spec(&spec, &mut |_| true, 0);
        assert_eq!(shrunk, spec);
    }

    #[test]
    fn every_candidate_edit_strictly_reduces_the_size_metric() {
        // Greedy descent terminates and reproducers only ever get smaller
        // because every one-step edit is strictly smaller by the metric —
        // including the constant-bisection and channel-kind edits.
        for seed in 0..40 {
            let spec = generate_spec(seed, &GenConfig::default());
            let size = spec.size_metric();
            for (idx, candidate) in candidates(&spec).into_iter().enumerate() {
                assert!(
                    candidate.size_metric() < size,
                    "seed {seed}: candidate #{idx} does not shrink ({} -> {})",
                    size,
                    candidate.size_metric()
                );
            }
        }
    }

    #[test]
    fn guard_constants_are_bisected_toward_zero() {
        // Synthetic failure: "some clock constraint has a bound >= 4".
        // Starting from a single guard with bound 16, halving gives
        // 16 -> 8 -> 4, where the next bisection (-> 2) no longer fails —
        // the reproducer pins the minimal failing constant exactly.
        let config = GenConfig {
            guard_prob: 1.0,
            max_clocks: 1,
            ..GenConfig::default()
        };
        let mut spec = generate_spec(3, &config);
        // Normalize: exactly one guard with a large bound.
        for aut in &mut spec.automata {
            for edge in &mut aut.edges {
                edge.guard.clear();
            }
            for loc in &mut aut.locations {
                loc.invariant.clear();
            }
        }
        spec.automata[0].edges[0].guard.push(crate::ConstraintSpec {
            left: 0,
            minus: None,
            op: tiga_model::CmpOp::Le,
            bound: 16,
        });
        assert!(spec.build().is_ok());
        let max_bound = |s: &SysSpec| {
            s.automata
                .iter()
                .flat_map(|a| a.edges.iter().flat_map(|e| e.guard.iter()))
                .chain(
                    s.automata
                        .iter()
                        .flat_map(|a| a.locations.iter().flat_map(|l| l.invariant.iter())),
                )
                .map(|c| c.bound)
                .max()
                .unwrap_or(0)
        };
        let shrunk = shrink_spec(&spec, &mut |s| max_bound(s) >= 4, 2_000);
        assert!(shrunk.build().is_ok());
        assert_eq!(
            max_bound(&shrunk),
            4,
            "bisection should stop at the minimal failing constant"
        );
        assert!(shrunk.size_metric() <= spec.size_metric());
    }

    #[test]
    fn internal_channels_simplify_to_inputs() {
        // Synthetic failure: "some edge synchronizes on a channel".  An
        // internal channel can always be demoted to a plain input while the
        // sync edge survives, so the reproducer ends with no internal kinds.
        let config = GenConfig {
            sync_prob: 1.0,
            ..GenConfig::default()
        };
        let mut found = false;
        for seed in 0..20 {
            let spec = generate_spec(seed, &config);
            if !spec.channels.contains(&crate::ChanKind::Internal) {
                continue;
            }
            if spec.build().is_err() {
                continue;
            }
            found = true;
            let shrunk = shrink_spec(
                &spec,
                &mut |s| {
                    s.automata
                        .iter()
                        .any(|a| a.edges.iter().any(|e| e.sync.is_some()))
                },
                2_000,
            );
            assert!(shrunk.build().is_ok(), "seed {seed}");
            assert!(
                shrunk
                    .channels
                    .iter()
                    .all(|k| *k != crate::ChanKind::Internal),
                "seed {seed}: internal channel survived: {:?}",
                shrunk.channels
            );
            assert!(shrunk.size_metric() <= spec.size_metric(), "seed {seed}");
        }
        assert!(found, "no seed produced an internal channel");
    }
}
