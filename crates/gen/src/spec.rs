//! The shrinkable intermediate representation of a generated timed game.
//!
//! The generator does not build [`tiga_model::System`] values directly:
//! systems are index-based and immutable, which makes structural shrinking
//! (drop an automaton, drop a clock, ...) awkward.  Instead it produces a
//! [`SysSpec`] — a small, name-free, index-based description that

//! * materializes into a `System` + parsed `control:` objective through the
//!   ordinary builder pipeline ([`SysSpec::build`]), and
//! * supports the structural edits the shrinker needs while keeping all
//!   internal references consistent ([`SysSpec::drop_clock`] and friends).
//!
//! Every entity is named canonically from its index (`c0`, `ch1`, `v2`,
//! `A0`, `L3`), so materialization never hits name clashes and reproducers
//! stay readable.

use tiga_model::{
    AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, Expr, ModelError, System, SystemBuilder,
};
use tiga_tctl::{TctlError, TestPurpose};

/// Channel controllability kind in a spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChanKind {
    /// Controllable: offered by the tester.
    Input,
    /// Uncontrollable: produced by the plant.
    Output,
    /// Unobservable; edge controllability comes from explicit overrides.
    Internal,
}

/// A bounded integer variable (or array) declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarSpec {
    /// `None` for a scalar, `Some(n)` for an array of `n` elements.
    pub size: Option<usize>,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Inclusive upper bound.
    pub upper: i64,
    /// Initial value of every element.
    pub initial: i64,
}

/// A clock constraint `c op bound` or `c - c' op bound` with a constant
/// bound (indices into [`SysSpec::clocks`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstraintSpec {
    /// Left-hand clock index.
    pub left: usize,
    /// Optional subtracted clock index (diagonal constraint).
    pub minus: Option<usize>,
    /// Comparison operator (`!=` is never generated: non-convex).
    pub op: CmpOp,
    /// Constant bound.
    pub bound: i64,
}

/// A data expression over the spec's variables.
///
/// Deliberately excludes division and modulo (runtime evaluation errors
/// would make engine comparison noisy) and array indices are literal and
/// in range by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprSpec {
    /// Integer literal.
    Const(i64),
    /// Scalar variable (index into [`SysSpec::vars`]).
    Var(usize),
    /// Array element with a literal index.
    Elem(usize, usize),
    /// Sum.
    Add(Box<ExprSpec>, Box<ExprSpec>),
    /// Difference.
    Sub(Box<ExprSpec>, Box<ExprSpec>),
    /// Comparison (`0`/`1` valued).
    Cmp(CmpOp, Box<ExprSpec>, Box<ExprSpec>),
    /// Conjunction.
    And(Box<ExprSpec>, Box<ExprSpec>),
    /// Disjunction.
    Or(Box<ExprSpec>, Box<ExprSpec>),
}

impl ExprSpec {
    /// Does the expression mention variable `var`?
    #[must_use]
    pub fn uses_var(&self, var: usize) -> bool {
        match self {
            ExprSpec::Const(_) => false,
            ExprSpec::Var(v) | ExprSpec::Elem(v, _) => *v == var,
            ExprSpec::Add(a, b)
            | ExprSpec::Sub(a, b)
            | ExprSpec::Cmp(_, a, b)
            | ExprSpec::And(a, b)
            | ExprSpec::Or(a, b) => a.uses_var(var) || b.uses_var(var),
        }
    }

    /// Decrements every variable index above `var` (after `var` was removed).
    fn shift_var_down(&mut self, var: usize) {
        match self {
            ExprSpec::Const(_) => {}
            ExprSpec::Var(v) | ExprSpec::Elem(v, _) => {
                if *v > var {
                    *v -= 1;
                }
            }
            ExprSpec::Add(a, b)
            | ExprSpec::Sub(a, b)
            | ExprSpec::Cmp(_, a, b)
            | ExprSpec::And(a, b)
            | ExprSpec::Or(a, b) => {
                a.shift_var_down(var);
                b.shift_var_down(var);
            }
        }
    }

    fn to_expr(&self, vars: &[tiga_model::VarId]) -> Expr {
        match self {
            ExprSpec::Const(n) => Expr::constant(*n),
            ExprSpec::Var(v) => Expr::var(vars[*v]),
            ExprSpec::Elem(v, i) => Expr::index(vars[*v], Expr::constant(*i as i64)),
            ExprSpec::Add(a, b) => a.to_expr(vars) + b.to_expr(vars),
            ExprSpec::Sub(a, b) => a.to_expr(vars) - b.to_expr(vars),
            ExprSpec::Cmp(op, a, b) => a.to_expr(vars).cmp(*op, b.to_expr(vars)),
            ExprSpec::And(a, b) => a.to_expr(vars).and(b.to_expr(vars)),
            ExprSpec::Or(a, b) => a.to_expr(vars).or(b.to_expr(vars)),
        }
    }
}

/// A variable update `v := e` or `v[i] := e` on an edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSpec {
    /// Target variable index.
    pub var: usize,
    /// Literal array index, `None` for scalars.
    pub index: Option<usize>,
    /// Assigned value.
    pub value: ExprSpec,
}

/// An edge of a spec automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Source location index.
    pub source: usize,
    /// Target location index.
    pub target: usize,
    /// `Some((channel, receive))`: `ch?` when `receive`, else `ch!`.
    /// `None`: an internal (`tau`) edge.
    pub sync: Option<(usize, bool)>,
    /// Clock guard (conjunction).
    pub guard: Vec<ConstraintSpec>,
    /// Data guard.
    pub when: Option<ExprSpec>,
    /// Clock resets `(clock, value)`; `value` is a non-negative constant.
    pub resets: Vec<(usize, i64)>,
    /// Variable updates.
    pub updates: Vec<UpdateSpec>,
    /// Controllability override for `tau` edges.
    pub controllable: Option<bool>,
}

/// A location of a spec automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocSpec {
    /// Time may not elapse here.
    pub urgent: bool,
    /// Invariant (conjunction of upper bounds by construction).
    pub invariant: Vec<ConstraintSpec>,
}

/// One automaton of a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutSpec {
    /// Locations (the name of location `i` is `L{i}` within `A{index}`).
    pub locations: Vec<LocSpec>,
    /// Index of the initial location.
    pub initial: usize,
    /// Edges.
    pub edges: Vec<EdgeSpec>,
}

/// The reachability/safety objective of a generated game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectiveSpec {
    /// `true` for `A<>` (reachability), `false` for `A[]` (safety).
    pub reachability: bool,
    /// Target `(automaton, location)`.
    pub target: (usize, usize),
    /// Optional second disjunct `(automaton, location)`.
    pub or_target: Option<(usize, usize)>,
    /// Optional conjoined variable comparison `v op c` (scalar vars only).
    pub var_clause: Option<(usize, CmpOp, i64)>,
    /// Optional time bound `T` (`A<><=T` / `A[]<=T`).
    pub bound: Option<i64>,
}

/// A complete generated system description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysSpec {
    /// System name (embeds the generating seed for traceability).
    pub name: String,
    /// Number of clocks (clock `i` is named `c{i}`).
    pub clocks: usize,
    /// Channel kinds (channel `i` is named `ch{i}`).
    pub channels: Vec<ChanKind>,
    /// Variable declarations (variable `i` is named `v{i}`).
    pub vars: Vec<VarSpec>,
    /// Automata (automaton `i` is named `A{i}`).
    pub automata: Vec<AutSpec>,
    /// The `control:` objective.
    pub objective: ObjectiveSpec,
}

impl SysSpec {
    /// The canonical name of clock `i`.
    #[must_use]
    pub fn clock_name(i: usize) -> String {
        format!("c{i}")
    }

    /// The `control:` line of the objective, in `tiga-tctl` syntax.
    ///
    /// Safety objectives take the standard avoid-the-bad-states shape
    /// `A[] not (φ)`: the target predicate names what must never hold, so
    /// the game is non-trivial whenever the initial state is not already a
    /// target (an `A[] φ` of the stay-inside shape is almost always decided
    /// at the initial state and would fuzz nothing).
    #[must_use]
    pub fn control_line(&self) -> String {
        let o = &self.objective;
        let mut pred = format!("A{}.L{}", o.target.0, o.target.1);
        if let Some((a, l)) = o.or_target {
            pred = format!("({pred} || A{a}.L{l})");
        }
        if let Some((v, op, c)) = o.var_clause {
            pred = format!("({pred} && v{v} {op} {c})");
        }
        let bound = o.bound.map(|t| format!("<={t}")).unwrap_or_default();
        if o.reachability {
            format!("control: A<>{bound} {pred}")
        } else {
            format!("control: A[]{bound} not ({pred})")
        }
    }

    /// Materializes the spec into a solvable system and its parsed objective.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is structurally invalid — the shrinker
    /// relies on this to discard edits that break a reference (e.g. dropping
    /// the automaton the objective points at).
    pub fn build(&self) -> Result<(System, TestPurpose), SpecError> {
        let mut b = SystemBuilder::new(&self.name);
        let mut clock_ids = Vec::with_capacity(self.clocks);
        for i in 0..self.clocks {
            clock_ids.push(b.clock(&Self::clock_name(i))?);
        }
        let mut chan_ids = Vec::with_capacity(self.channels.len());
        for (i, kind) in self.channels.iter().enumerate() {
            let name = format!("ch{i}");
            chan_ids.push(match kind {
                ChanKind::Input => b.input_channel(&name)?,
                ChanKind::Output => b.output_channel(&name)?,
                ChanKind::Internal => b.internal_channel(&name)?,
            });
        }
        let mut var_ids = Vec::with_capacity(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            let name = format!("v{i}");
            var_ids.push(match v.size {
                None => b.int_var(&name, v.lower, v.upper, v.initial)?,
                Some(size) => b.int_array(&name, size, v.lower, v.upper, v.initial)?,
            });
        }
        for (ai, aut) in self.automata.iter().enumerate() {
            let mut ab = AutomatonBuilder::new(&format!("A{ai}"));
            let mut loc_ids = Vec::with_capacity(aut.locations.len());
            for (li, loc) in aut.locations.iter().enumerate() {
                let id = ab.location(&format!("L{li}"))?;
                loc_ids.push(id);
                if loc.urgent {
                    ab.set_urgent(id);
                }
                let invariant = loc
                    .invariant
                    .iter()
                    .map(|c| constraint(c, &clock_ids))
                    .collect::<Result<Vec<_>, _>>()?;
                ab.set_invariant(id, invariant);
            }
            let initial = *loc_ids
                .get(aut.initial)
                .ok_or(SpecError::DanglingReference("initial location"))?;
            ab.set_initial(initial);
            for e in &aut.edges {
                let (&src, &tgt) = match (loc_ids.get(e.source), loc_ids.get(e.target)) {
                    (Some(s), Some(t)) => (s, t),
                    _ => return Err(SpecError::DanglingReference("edge endpoint")),
                };
                let mut eb = EdgeBuilder::new(src, tgt);
                if let Some((ch, receive)) = e.sync {
                    let &id = chan_ids
                        .get(ch)
                        .ok_or(SpecError::DanglingReference("channel"))?;
                    eb = if receive { eb.input(id) } else { eb.output(id) };
                }
                for c in &e.guard {
                    eb = eb.guard_clock(constraint(c, &clock_ids)?);
                }
                if let Some(when) = &e.when {
                    check_vars(when, &self.vars)?;
                    eb = eb.when(when.to_expr(&var_ids));
                }
                for &(clock, value) in &e.resets {
                    let &id = clock_ids
                        .get(clock)
                        .ok_or(SpecError::DanglingReference("reset clock"))?;
                    eb = if value == 0 {
                        eb.reset(id)
                    } else {
                        eb.reset_to(id, Expr::constant(value))
                    };
                }
                for u in &e.updates {
                    let decl = self
                        .vars
                        .get(u.var)
                        .ok_or(SpecError::DanglingReference("update target"))?;
                    check_vars(&u.value, &self.vars)?;
                    let &id = var_ids.get(u.var).expect("checked above");
                    eb = match (u.index, decl.size) {
                        (None, None) => eb.set(id, u.value.to_expr(&var_ids)),
                        (Some(i), Some(size)) if i < size => {
                            eb.set_element(id, Expr::constant(i as i64), u.value.to_expr(&var_ids))
                        }
                        _ => return Err(SpecError::DanglingReference("array index")),
                    };
                }
                if let Some(c) = e.controllable {
                    eb = eb.controllable(c);
                }
                ab.add_edge(eb);
            }
            b.add_automaton(ab.build()?)?;
        }
        let system = b.build()?;
        self.check_objective()?;
        let purpose = TestPurpose::parse(&self.control_line(), &system)?;
        Ok((system, purpose))
    }

    fn check_objective(&self) -> Result<(), SpecError> {
        let mut targets = vec![self.objective.target];
        targets.extend(self.objective.or_target);
        for (a, l) in targets {
            let aut = self
                .automata
                .get(a)
                .ok_or(SpecError::DanglingReference("objective automaton"))?;
            if l >= aut.locations.len() {
                return Err(SpecError::DanglingReference("objective location"));
            }
        }
        if let Some((v, _, _)) = self.objective.var_clause {
            match self.vars.get(v) {
                Some(decl) if decl.size.is_none() => {}
                _ => return Err(SpecError::DanglingReference("objective variable")),
            }
        }
        Ok(())
    }

    // ---- shrinking edits -------------------------------------------------
    //
    // Each edit keeps the *remaining* references consistent (reindexing
    // after a removal).  References *to the removed entity* are removed
    // along with it; whether the resulting spec still makes sense (e.g. the
    // objective still resolves) is decided by re-running `build`.

    /// Removes automaton `a`, shifting the objective's automaton references.
    ///
    /// An objective that pointed *at* `a` is left dangling (the subsequent
    /// [`SysSpec::build`] fails), so the shrinker naturally discards edits
    /// that would remove the objective's target — it must never silently
    /// rebind to whatever automaton slides into the removed index, which
    /// would let a shrink change what the game is about.
    pub fn drop_automaton(&mut self, a: usize) {
        self.automata.remove(a);
        if self.objective.target.0 == a {
            self.objective.target.0 = usize::MAX;
        } else if self.objective.target.0 > a {
            self.objective.target.0 -= 1;
        }
        self.objective.or_target = match self.objective.or_target.take() {
            Some((oa, _)) if oa == a => None,
            Some((oa, ol)) => Some((if oa > a { oa - 1 } else { oa }, ol)),
            None => None,
        };
    }

    /// Removes location `l` of automaton `a` together with every edge that
    /// touches it, remapping the remaining indices.
    ///
    /// Dropping the automaton's initial location or an objective target
    /// leaves that reference dangling (build fails, the shrinker skips the
    /// edit) rather than silently rebinding it to the location that slides
    /// into index `l`.
    pub fn drop_location(&mut self, a: usize, l: usize) {
        let aut = &mut self.automata[a];
        aut.locations.remove(l);
        aut.edges.retain(|e| e.source != l && e.target != l);
        for e in &mut aut.edges {
            if e.source > l {
                e.source -= 1;
            }
            if e.target > l {
                e.target -= 1;
            }
        }
        if aut.initial == l {
            aut.initial = usize::MAX;
        } else if aut.initial > l {
            aut.initial -= 1;
        }
        let fix = |t: &mut (usize, usize)| {
            if t.0 == a {
                if t.1 == l {
                    t.1 = usize::MAX;
                } else if t.1 > l {
                    t.1 -= 1;
                }
            }
        };
        fix(&mut self.objective.target);
        if let Some(t) = &mut self.objective.or_target {
            fix(t);
        }
    }

    /// Removes clock `c` and every constraint or reset that mentions it.
    pub fn drop_clock(&mut self, c: usize) {
        self.clocks -= 1;
        let keep = |cs: &ConstraintSpec| cs.left != c && cs.minus != Some(c);
        let shift = |cs: &mut ConstraintSpec| {
            if cs.left > c {
                cs.left -= 1;
            }
            if let Some(m) = &mut cs.minus {
                if *m > c {
                    *m -= 1;
                }
            }
        };
        for aut in &mut self.automata {
            for loc in &mut aut.locations {
                loc.invariant.retain(keep);
                loc.invariant.iter_mut().for_each(shift);
            }
            for e in &mut aut.edges {
                e.guard.retain(keep);
                e.guard.iter_mut().for_each(shift);
                e.resets.retain(|&(clock, _)| clock != c);
                for (clock, _) in &mut e.resets {
                    if *clock > c {
                        *clock -= 1;
                    }
                }
            }
        }
    }

    /// Removes variable `v` and every guard/update that mentions it.
    pub fn drop_var(&mut self, v: usize) {
        self.vars.remove(v);
        for aut in &mut self.automata {
            for e in &mut aut.edges {
                if e.when.as_ref().is_some_and(|w| w.uses_var(v)) {
                    e.when = None;
                }
                if let Some(w) = &mut e.when {
                    w.shift_var_down(v);
                }
                e.updates.retain(|u| u.var != v && !u.value.uses_var(v));
                for u in &mut e.updates {
                    if u.var > v {
                        u.var -= 1;
                    }
                    u.value.shift_var_down(v);
                }
            }
        }
        match &mut self.objective.var_clause {
            Some((var, _, _)) if *var == v => self.objective.var_clause = None,
            Some((var, _, _)) if *var > v => *var -= 1,
            _ => {}
        }
    }

    /// A structural size measure used to validate that every shrink edit
    /// makes the spec strictly smaller: entity counts plus the magnitudes
    /// of clock constants (so constant *bisection* counts as progress) plus
    /// a channel-kind weight (internal channels carry controllability
    /// overrides, so `internal → input` simplification counts too).
    #[must_use]
    pub fn size_metric(&self) -> u64 {
        fn constraint_size(c: &ConstraintSpec) -> u64 {
            3 + u64::from(c.minus.is_some()) + c.bound.unsigned_abs()
        }
        fn expr_size(e: &ExprSpec) -> u64 {
            match e {
                ExprSpec::Const(n) => 1 + n.unsigned_abs().min(8),
                ExprSpec::Var(_) | ExprSpec::Elem(_, _) => 1,
                ExprSpec::Add(a, b)
                | ExprSpec::Sub(a, b)
                | ExprSpec::Cmp(_, a, b)
                | ExprSpec::And(a, b)
                | ExprSpec::Or(a, b) => 1 + expr_size(a) + expr_size(b),
            }
        }
        let mut size = 4 * self.clocks as u64 + 4 * self.vars.len() as u64;
        for kind in &self.channels {
            size += match kind {
                ChanKind::Input | ChanKind::Output => 2,
                ChanKind::Internal => 3,
            };
        }
        for var in &self.vars {
            size += u64::from(var.size.is_some());
        }
        for aut in &self.automata {
            size += 10;
            for loc in &aut.locations {
                size += 5 + u64::from(loc.urgent);
                size += loc.invariant.iter().map(constraint_size).sum::<u64>();
            }
            for edge in &aut.edges {
                size += 5 + u64::from(edge.sync.is_some());
                size += edge.guard.iter().map(constraint_size).sum::<u64>();
                size += edge.when.as_ref().map_or(0, expr_size);
                size += edge
                    .resets
                    .iter()
                    .map(|&(_, value)| 2 + value.unsigned_abs())
                    .sum::<u64>();
                size += edge
                    .updates
                    .iter()
                    .map(|u| 3 + expr_size(&u.value))
                    .sum::<u64>();
                size += u64::from(edge.controllable.is_some());
            }
        }
        size += 2 * u64::from(self.objective.or_target.is_some());
        size += 2 * u64::from(self.objective.var_clause.is_some());
        size
    }

    /// Removes channel `ch` and every edge synchronizing on it.
    pub fn drop_channel(&mut self, ch: usize) {
        self.channels.remove(ch);
        for aut in &mut self.automata {
            aut.edges
                .retain(|e| !matches!(e.sync, Some((c, _)) if c == ch));
            for e in &mut aut.edges {
                if let Some((c, _)) = &mut e.sync {
                    if *c > ch {
                        *c -= 1;
                    }
                }
            }
        }
    }
}

fn constraint(
    c: &ConstraintSpec,
    clocks: &[tiga_model::ClockId],
) -> Result<ClockConstraint, SpecError> {
    let &left = clocks
        .get(c.left)
        .ok_or(SpecError::DanglingReference("constraint clock"))?;
    Ok(match c.minus {
        None => ClockConstraint::new(left, c.op, c.bound),
        Some(m) => {
            let &minus = clocks
                .get(m)
                .ok_or(SpecError::DanglingReference("constraint clock"))?;
            ClockConstraint::diff(left, minus, c.op, c.bound)
        }
    })
}

fn check_vars(e: &ExprSpec, vars: &[VarSpec]) -> Result<(), SpecError> {
    match e {
        ExprSpec::Const(_) => Ok(()),
        ExprSpec::Var(v) => match vars.get(*v) {
            Some(decl) if decl.size.is_none() => Ok(()),
            _ => Err(SpecError::DanglingReference("scalar variable")),
        },
        ExprSpec::Elem(v, i) => match vars.get(*v) {
            Some(decl) if decl.size.is_some_and(|s| *i < s) => Ok(()),
            _ => Err(SpecError::DanglingReference("array element")),
        },
        ExprSpec::Add(a, b)
        | ExprSpec::Sub(a, b)
        | ExprSpec::Cmp(_, a, b)
        | ExprSpec::And(a, b)
        | ExprSpec::Or(a, b) => {
            check_vars(a, vars)?;
            check_vars(b, vars)
        }
    }
}

/// Why a spec failed to materialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A structural reference does not resolve (typical after a shrink edit).
    DanglingReference(&'static str),
    /// The model builders rejected the spec.
    Model(String),
    /// The `control:` objective does not parse/resolve against the system.
    Objective(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::DanglingReference(what) => write!(f, "dangling reference: {what}"),
            SpecError::Model(e) => write!(f, "model error: {e}"),
            SpecError::Objective(e) => write!(f, "objective error: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e.to_string())
    }
}

impl From<TctlError> for SpecError {
    fn from(e: TctlError) -> Self {
        SpecError::Objective(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-automaton spec exercising every construct once.
    fn sample_spec() -> SysSpec {
        SysSpec {
            name: "sample".into(),
            clocks: 2,
            channels: vec![ChanKind::Input, ChanKind::Output],
            vars: vec![
                VarSpec {
                    size: None,
                    lower: 0,
                    upper: 3,
                    initial: 0,
                },
                VarSpec {
                    size: Some(2),
                    lower: 0,
                    upper: 1,
                    initial: 0,
                },
            ],
            automata: vec![
                AutSpec {
                    locations: vec![
                        LocSpec {
                            urgent: false,
                            invariant: vec![],
                        },
                        LocSpec {
                            urgent: false,
                            invariant: vec![ConstraintSpec {
                                left: 0,
                                minus: None,
                                op: CmpOp::Le,
                                bound: 5,
                            }],
                        },
                    ],
                    initial: 0,
                    edges: vec![
                        EdgeSpec {
                            source: 0,
                            target: 1,
                            sync: Some((0, true)),
                            guard: vec![ConstraintSpec {
                                left: 1,
                                minus: Some(0),
                                op: CmpOp::Ge,
                                bound: 0,
                            }],
                            when: Some(ExprSpec::Cmp(
                                CmpOp::Lt,
                                Box::new(ExprSpec::Var(0)),
                                Box::new(ExprSpec::Const(3)),
                            )),
                            resets: vec![(0, 0)],
                            updates: vec![UpdateSpec {
                                var: 0,
                                index: None,
                                value: ExprSpec::Add(
                                    Box::new(ExprSpec::Var(0)),
                                    Box::new(ExprSpec::Const(1)),
                                ),
                            }],
                            controllable: None,
                        },
                        EdgeSpec {
                            source: 1,
                            target: 0,
                            sync: None,
                            guard: vec![],
                            when: None,
                            resets: vec![(1, 2)],
                            updates: vec![UpdateSpec {
                                var: 1,
                                index: Some(1),
                                value: ExprSpec::Const(1),
                            }],
                            controllable: Some(true),
                        },
                    ],
                },
                AutSpec {
                    locations: vec![LocSpec {
                        urgent: true,
                        invariant: vec![],
                    }],
                    initial: 0,
                    edges: vec![EdgeSpec {
                        source: 0,
                        target: 0,
                        sync: Some((0, false)),
                        guard: vec![],
                        when: None,
                        resets: vec![],
                        updates: vec![],
                        controllable: None,
                    }],
                },
            ],
            objective: ObjectiveSpec {
                reachability: true,
                target: (0, 1),
                or_target: None,
                var_clause: Some((0, CmpOp::Ge, 1)),
                bound: None,
            },
        }
    }

    #[test]
    fn sample_spec_builds() {
        let (system, purpose) = sample_spec().build().unwrap();
        assert_eq!(system.clocks().len(), 2);
        assert_eq!(system.automata().len(), 2);
        assert_eq!(purpose.quantifier, tiga_tctl::PathQuantifier::Reachability);
        assert!(!purpose.source.is_empty());
    }

    #[test]
    fn drop_automaton_reindexes_objective() {
        let mut spec = sample_spec();
        spec.objective.target = (1, 0);
        spec.drop_automaton(0);
        assert_eq!(spec.objective.target, (0, 0));
        // Edges on ch0 survive (the channel still exists); the spec builds.
        assert!(spec.build().is_ok());
    }

    #[test]
    fn drop_objective_automaton_fails_build() {
        let mut spec = sample_spec();
        spec.drop_automaton(0);
        // Objective pointed at A0.L1, which no longer exists.
        assert!(spec.build().is_err());
    }

    #[test]
    fn drop_clock_removes_references() {
        let mut spec = sample_spec();
        spec.drop_clock(0);
        assert_eq!(spec.clocks, 1);
        let (system, _) = spec.build().unwrap();
        assert_eq!(system.clocks().len(), 1);
        // The diagonal guard on (c1 - c0) and the reset of c0 are gone; the
        // invariant on c0 is gone; the reset of c1 remains, reindexed to 0.
        let a0 = &system.automata()[0];
        assert!(a0.edges()[0].guard.clocks.is_empty());
        assert!(a0.locations()[1].invariant.is_empty());
        assert_eq!(a0.edges()[1].resets.len(), 1);
    }

    #[test]
    fn drop_var_removes_guards_and_updates() {
        let mut spec = sample_spec();
        spec.drop_var(0);
        let (system, purpose) = spec.build().unwrap();
        assert_eq!(system.vars().len(), 1);
        let a0 = &system.automata()[0];
        assert!(a0.edges()[0].guard.data.is_none());
        assert_eq!(a0.edges()[0].updates.len(), 0);
        // The objective's var clause is dropped with the variable.
        assert!(!purpose.source.contains("v0"));
    }

    #[test]
    fn drop_channel_drops_syncing_edges() {
        let mut spec = sample_spec();
        spec.drop_channel(0);
        let (system, _) = spec.build().unwrap();
        assert_eq!(system.channels().len(), 1);
        assert_eq!(system.automata()[0].edges().len(), 1);
        assert_eq!(system.automata()[1].edges().len(), 0);
    }

    #[test]
    fn drop_location_drops_touching_edges() {
        let mut spec = sample_spec();
        spec.objective.target = (0, 0);
        spec.objective.var_clause = None;
        spec.drop_location(0, 1);
        let (system, _) = spec.build().unwrap();
        assert_eq!(system.automata()[0].locations().len(), 1);
        assert_eq!(system.automata()[0].edges().len(), 0);
    }

    #[test]
    fn exact_match_drops_dangle_instead_of_rebinding() {
        // Dropping the objective's target location must not silently point
        // the objective at the location that slides into its index.
        let mut spec = sample_spec();
        spec.drop_location(0, 1); // objective targets A0.L1
        assert!(spec.build().is_err());
        // Dropping the initial location must not silently promote another.
        let mut spec = sample_spec();
        spec.objective.target = (0, 1);
        spec.automata[0].initial = 0;
        spec.drop_location(0, 0);
        assert!(spec.build().is_err());
    }
}
