//! The seeded random system generator.
//!
//! [`generate_spec`] draws a [`SysSpec`] from a [`GenConfig`]-shaped
//! distribution, deterministically for a given seed.  The generator aims for
//! *semantic validity by construction* so that every generated system is a
//! well-defined timed game the engines must agree on:
//!
//! * invariants are upper bounds with non-negative constants (the initial
//!   valuation always satisfies them);
//! * data expressions exclude division/modulo and out-of-range array
//!   indices (no runtime evaluation errors);
//! * resets use non-negative constants;
//! * `!=` never appears in clock constraints (non-convex).
//!
//! Everything else — urgency, diagonal guards, equality guards, unmatched
//! synchronizations, dead channels, contradictory guards, unreachable
//! objectives — is fair game: those corners are exactly where the engines
//! and the printer can disagree.

use crate::spec::{
    AutSpec, ChanKind, ConstraintSpec, EdgeSpec, ExprSpec, LocSpec, ObjectiveSpec, SysSpec,
    UpdateSpec, VarSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_model::CmpOp;

/// Distribution knobs of the random system generator.
///
/// All `*_prob` fields are probabilities in `[0, 1]`; the `max_*` fields are
/// inclusive upper bounds on uniformly drawn sizes.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Clocks per system (at least 1).
    pub max_clocks: usize,
    /// Discrete variables per system (0 allowed).
    pub max_vars: usize,
    /// Channels per system (at least 1).
    pub max_channels: usize,
    /// Automata per system (at least 2, so synchronization is possible).
    pub max_automata: usize,
    /// Locations per automaton (at least 1).
    pub max_locations: usize,
    /// Edges per automaton.
    pub max_edges: usize,
    /// Largest constant in guards, invariants, resets and variable ranges.
    pub max_const: i64,
    /// Probability that a location is urgent.
    pub urgent_prob: f64,
    /// Probability that a location carries an invariant.
    pub invariant_prob: f64,
    /// Probability that an edge carries each of its up-to-two clock guards.
    pub guard_prob: f64,
    /// Probability that a generated clock constraint is diagonal.
    pub diagonal_prob: f64,
    /// Probability that an edge carries a data guard.
    pub when_prob: f64,
    /// Per-clock probability that an edge resets it.
    pub reset_prob: f64,
    /// Probability that a reset is to a non-zero constant.
    pub value_reset_prob: f64,
    /// Per-edge probability of a variable update.
    pub update_prob: f64,
    /// Probability that an edge synchronizes on a channel (vs. `tau`).
    pub sync_prob: f64,
    /// Probability that a `tau` edge carries a controllability override.
    pub controllable_override_prob: f64,
    /// Probability that a variable declaration is an array.
    pub array_prob: f64,
    /// Probability that the objective is `A[]` (safety) instead of `A<>`.
    pub safety_prob: f64,
    /// Probability that the objective has a second location disjunct.
    pub or_target_prob: f64,
    /// Probability that the objective conjoins a variable comparison.
    pub var_clause_prob: f64,
    /// Probability that the objective carries a time bound (`A<><=T` /
    /// `A[]<=T`).  The default is `0.0`, and a zero probability draws
    /// nothing from the RNG, so the pinned fixed-seed streams (the bench
    /// baseline's fuzz matrix, the campaign gates) stay bit-identical.
    pub bound_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_clocks: 2,
            max_vars: 2,
            max_channels: 3,
            max_automata: 3,
            max_locations: 4,
            max_edges: 5,
            max_const: 8,
            urgent_prob: 0.1,
            invariant_prob: 0.4,
            guard_prob: 0.5,
            diagonal_prob: 0.15,
            when_prob: 0.25,
            reset_prob: 0.35,
            value_reset_prob: 0.15,
            update_prob: 0.35,
            sync_prob: 0.75,
            controllable_override_prob: 0.4,
            array_prob: 0.2,
            safety_prob: 0.1,
            or_target_prob: 0.25,
            var_clause_prob: 0.25,
            bound_prob: 0.0,
        }
    }
}

/// Generates a random system spec, deterministically for `seed`.
#[must_use]
pub fn generate_spec(seed: u64, config: &GenConfig) -> SysSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let clocks = rng.gen_range(1..=config.max_clocks.max(1));
    let channels: Vec<ChanKind> = (0..rng.gen_range(1..=config.max_channels.max(1)))
        .map(|_| match rng.gen_range(0..6u32) {
            0 | 1 => ChanKind::Input,
            2 | 3 => ChanKind::Output,
            _ => {
                if rng.gen_bool(0.5) {
                    ChanKind::Internal
                } else if rng.gen_bool(0.5) {
                    ChanKind::Input
                } else {
                    ChanKind::Output
                }
            }
        })
        .collect();
    let vars: Vec<VarSpec> = (0..rng.gen_range(0..=config.max_vars))
        .map(|_| {
            let lower = if rng.gen_bool(0.3) {
                -rng.gen_range(0..=config.max_const.min(3))
            } else {
                0
            };
            let upper = lower + rng.gen_range(1..=config.max_const.min(4));
            VarSpec {
                size: if rng.gen_bool(config.array_prob) {
                    Some(rng.gen_range(2..=3))
                } else {
                    None
                },
                lower,
                upper,
                initial: rng.gen_range(lower..=upper),
            }
        })
        .collect();
    let n_automata = rng.gen_range(2..=config.max_automata.max(2));
    let automata: Vec<AutSpec> = (0..n_automata)
        .map(|_| gen_automaton(&mut rng, config, clocks, &channels, &vars))
        .collect();
    let objective = gen_objective(&mut rng, config, &automata, &vars);
    SysSpec {
        name: format!("fuzz-{seed:#x}"),
        clocks,
        channels,
        vars,
        automata,
        objective,
    }
}

fn gen_automaton(
    rng: &mut StdRng,
    config: &GenConfig,
    clocks: usize,
    channels: &[ChanKind],
    vars: &[VarSpec],
) -> AutSpec {
    let n_locs = rng.gen_range(1..=config.max_locations.max(1));
    let locations: Vec<LocSpec> = (0..n_locs)
        .map(|_| {
            let urgent = rng.gen_bool(config.urgent_prob);
            let invariant = if !urgent && clocks > 0 && rng.gen_bool(config.invariant_prob) {
                // Upper bounds only, with non-negative constants, so the
                // all-zero initial valuation is always admissible.
                vec![ConstraintSpec {
                    left: rng.gen_range(0..clocks),
                    minus: None,
                    op: if rng.gen_bool(0.8) {
                        CmpOp::Le
                    } else {
                        CmpOp::Lt
                    },
                    bound: rng.gen_range(1..=config.max_const),
                }]
            } else {
                Vec::new()
            };
            LocSpec { urgent, invariant }
        })
        .collect();
    let n_edges = rng.gen_range(1..=config.max_edges.max(1));
    let edges: Vec<EdgeSpec> = (0..n_edges)
        .map(|_| gen_edge(rng, config, clocks, channels, vars, n_locs))
        .collect();
    AutSpec {
        locations,
        initial: rng.gen_range(0..n_locs),
        edges,
    }
}

fn gen_edge(
    rng: &mut StdRng,
    config: &GenConfig,
    clocks: usize,
    channels: &[ChanKind],
    vars: &[VarSpec],
    n_locs: usize,
) -> EdgeSpec {
    let sync = if !channels.is_empty() && rng.gen_bool(config.sync_prob) {
        Some((rng.gen_range(0..channels.len()), rng.gen_bool(0.5)))
    } else {
        None
    };
    let mut guard = Vec::new();
    for _ in 0..2 {
        if clocks > 0 && rng.gen_bool(config.guard_prob) {
            guard.push(gen_constraint(rng, config, clocks));
        }
    }
    let when = if !vars.is_empty() && rng.gen_bool(config.when_prob) {
        Some(gen_bool_expr(rng, config, vars))
    } else {
        None
    };
    let mut resets = Vec::new();
    for c in 0..clocks {
        if rng.gen_bool(config.reset_prob) {
            let value = if rng.gen_bool(config.value_reset_prob) {
                rng.gen_range(1..=config.max_const)
            } else {
                0
            };
            resets.push((c, value));
        }
    }
    let mut updates = Vec::new();
    if !vars.is_empty() && rng.gen_bool(config.update_prob) {
        let var = rng.gen_range(0..vars.len());
        let decl = &vars[var];
        updates.push(UpdateSpec {
            var,
            index: decl.size.map(|s| rng.gen_range(0..s)),
            value: gen_int_expr(rng, config, vars),
        });
    }
    let controllable = if sync.is_none() && rng.gen_bool(config.controllable_override_prob) {
        Some(rng.gen_bool(0.5))
    } else {
        None
    };
    EdgeSpec {
        source: rng.gen_range(0..n_locs),
        target: rng.gen_range(0..n_locs),
        sync,
        guard,
        when,
        resets,
        updates,
        controllable,
    }
}

fn gen_constraint(rng: &mut StdRng, config: &GenConfig, clocks: usize) -> ConstraintSpec {
    let left = rng.gen_range(0..clocks);
    let minus = if clocks > 1 && rng.gen_bool(config.diagonal_prob) {
        // Distinct clock for the diagonal.
        let m = rng.gen_range(0..clocks - 1);
        Some(if m >= left { m + 1 } else { m })
    } else {
        None
    };
    let op = match rng.gen_range(0..5u32) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        _ => CmpOp::Eq,
    };
    let bound = if minus.is_some() && rng.gen_bool(0.4) {
        // Diagonals are allowed negative bounds.
        -rng.gen_range(0..=config.max_const)
    } else {
        rng.gen_range(0..=config.max_const)
    };
    ConstraintSpec {
        left,
        minus,
        op,
        bound,
    }
}

/// A scalar/element atom, or a small constant.
fn gen_atom(rng: &mut StdRng, config: &GenConfig, vars: &[VarSpec]) -> ExprSpec {
    if !vars.is_empty() && rng.gen_bool(0.6) {
        let v = rng.gen_range(0..vars.len());
        match vars[v].size {
            None => ExprSpec::Var(v),
            Some(size) => ExprSpec::Elem(v, rng.gen_range(0..size)),
        }
    } else {
        ExprSpec::Const(rng.gen_range(-config.max_const..=config.max_const))
    }
}

fn gen_int_expr(rng: &mut StdRng, config: &GenConfig, vars: &[VarSpec]) -> ExprSpec {
    match rng.gen_range(0..4u32) {
        0 => gen_atom(rng, config, vars),
        1 => ExprSpec::Add(
            Box::new(gen_atom(rng, config, vars)),
            Box::new(ExprSpec::Const(rng.gen_range(1..=2))),
        ),
        2 => ExprSpec::Sub(
            Box::new(gen_atom(rng, config, vars)),
            Box::new(ExprSpec::Const(rng.gen_range(1..=2))),
        ),
        _ => ExprSpec::Const(rng.gen_range(0..=config.max_const.min(3))),
    }
}

fn gen_cmp(rng: &mut StdRng, config: &GenConfig, vars: &[VarSpec]) -> ExprSpec {
    let op = match rng.gen_range(0..6u32) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    };
    ExprSpec::Cmp(
        op,
        Box::new(gen_atom(rng, config, vars)),
        Box::new(ExprSpec::Const(
            rng.gen_range(-config.max_const..=config.max_const),
        )),
    )
}

fn gen_bool_expr(rng: &mut StdRng, config: &GenConfig, vars: &[VarSpec]) -> ExprSpec {
    let first = gen_cmp(rng, config, vars);
    match rng.gen_range(0..4u32) {
        0 => ExprSpec::And(Box::new(first), Box::new(gen_cmp(rng, config, vars))),
        1 => ExprSpec::Or(Box::new(first), Box::new(gen_cmp(rng, config, vars))),
        _ => first,
    }
}

fn gen_objective(
    rng: &mut StdRng,
    config: &GenConfig,
    automata: &[AutSpec],
    vars: &[VarSpec],
) -> ObjectiveSpec {
    let pick = |rng: &mut StdRng| {
        let a = rng.gen_range(0..automata.len());
        let l = rng.gen_range(0..automata[a].locations.len());
        (a, l)
    };
    let target = pick(rng);
    let or_target = if rng.gen_bool(config.or_target_prob) {
        Some(pick(rng))
    } else {
        None
    };
    let scalars: Vec<usize> = vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.size.is_none())
        .map(|(i, _)| i)
        .collect();
    let var_clause = if !scalars.is_empty() && rng.gen_bool(config.var_clause_prob) {
        let v = scalars[rng.gen_range(0..scalars.len())];
        let op = if rng.gen_bool(0.5) {
            CmpOp::Ge
        } else {
            CmpOp::Eq
        };
        let c = rng.gen_range(vars[v].lower..=vars[v].upper);
        Some((v, op, c))
    } else {
        None
    };
    // The zero-probability guard is load-bearing: `gen_bool(0.0)` would
    // still consume a draw and shift every pinned fixed-seed stream.
    let bound = if config.bound_prob > 0.0 && rng.gen_bool(config.bound_prob) {
        // Bounds near the generated constants keep the clip non-vacuous:
        // anything far above `max_const` would subsume every run.
        Some(rng.gen_range(1..=config.max_const.max(1) * 2))
    } else {
        None
    };
    ObjectiveSpec {
        reachability: !rng.gen_bool(config.safety_prob),
        target,
        or_target,
        var_clause,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = GenConfig::default();
        let a = generate_spec(42, &config);
        let b = generate_spec(42, &config);
        assert_eq!(a, b);
        let c = generate_spec(43, &config);
        assert_ne!(a, c, "different seeds should give different systems");
    }

    #[test]
    fn generated_specs_build() {
        let config = GenConfig::default();
        for seed in 0..200 {
            let spec = generate_spec(seed, &config);
            let (system, purpose) = spec
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: spec does not build: {e}"));
            assert!(system.automata().len() >= 2);
            assert!(!purpose.source.is_empty());
        }
    }

    #[test]
    fn generated_initial_states_are_valid() {
        // Invariants are upper bounds with positive constants, so the
        // all-zero initial state is never excluded.
        let config = GenConfig::default();
        for seed in 0..100 {
            let (system, _) = generate_spec(seed, &config).build().unwrap();
            let s0 = system.initial_symbolic().unwrap();
            assert!(
                !s0.zone.is_empty(),
                "seed {seed}: initial state violates an invariant"
            );
        }
    }
}
