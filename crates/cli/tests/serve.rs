//! In-process pins for the `tiga serve` jsonl protocol.
//!
//! The invariants CI's serve-smoke job later checks from the outside are
//! asserted here at the source: duplicate submissions are answered from the
//! solve cache with a payload byte-identical to the original solve's, batch
//! responses merge in submission order and are bit-identical for any
//! `--jobs`, and malformed input produces spanned error responses without
//! ending the session.

use std::io::Cursor;
use std::path::{Path, PathBuf};
use tiga_cli::{serve_session, ServeArgs};

fn tg_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/tg")
}

fn tg(name: &str) -> String {
    tg_dir().join(name).to_string_lossy().into_owned()
}

/// Feeds `requests` through one serve session and returns the response lines.
fn session(requests: &[String], jobs: usize) -> Vec<String> {
    let input = requests.join("\n");
    let mut output = Vec::new();
    serve_session(Cursor::new(input), &mut output, &ServeArgs { jobs })
        .expect("in-memory I/O cannot fail");
    let text = String::from_utf8(output).expect("responses are UTF-8");
    text.lines().map(ToString::to_string).collect()
}

/// Extracts the stable `payload` object from an ok response line.  The
/// payload is the envelope's last field, so it spans from the marker to the
/// envelope's closing brace.
fn payload(line: &str) -> &str {
    let start = line
        .find("\"payload\":")
        .unwrap_or_else(|| panic!("no payload in {line}"))
        + "\"payload\":".len();
    &line[start..line.len() - 1]
}

fn json_string(text: &str) -> String {
    let mut out = String::from("\"");
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[test]
fn duplicate_submissions_hit_the_cache_with_byte_identical_payloads() {
    let requests = vec![
        format!(
            "{{\"id\":1,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
        format!(
            "{{\"id\":2,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
    ];
    let mut payloads_by_jobs = Vec::new();
    for jobs in [1, 4] {
        let lines = session(&requests, jobs);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"id\":1,"), "{}", lines[0]);
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[0].contains("\"cache_misses\":1"), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":2,"), "{}", lines[1]);
        assert!(lines[1].contains("\"cache\":\"hit\""), "{}", lines[1]);
        assert!(lines[1].contains("\"cache_hits\":1"), "{}", lines[1]);
        assert!(lines[0].contains("\"verdict\":\"winning\""), "{}", lines[0]);
        assert_eq!(
            payload(&lines[0]),
            payload(&lines[1]),
            "hit payload must be byte-identical to the miss"
        );
        assert!(
            payload(&lines[0]).contains("\"strategy\":\"tiga-strategy v1\\u000a"),
            "payload embeds the versioned strategy text"
        );
        payloads_by_jobs.push(payload(&lines[0]).to_string());
    }
    assert_eq!(
        payloads_by_jobs[0], payloads_by_jobs[1],
        "payloads are bit-identical for any --jobs"
    );
}

#[test]
fn inline_source_shares_the_cache_key_with_its_file() {
    let source = std::fs::read_to_string(tg("smart_light.tg")).unwrap();
    let requests = vec![
        format!("{{\"path\":{}}}", json_string(&tg("smart_light.tg"))),
        format!("{{\"model\":{}}}", json_string(&source)),
    ];
    let lines = session(&requests, 1);
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(
        lines[1].contains("\"cache\":\"hit\""),
        "an inline copy of the same model is the same game: {}",
        lines[1]
    );
    assert_eq!(payload(&lines[0]), payload(&lines[1]));
}

#[test]
fn malformed_lines_are_spanned_errors_and_the_session_survives() {
    let requests = vec![
        "{\"id\":1,\"path\" \"oops\"}".to_string(),
        "{\"id\":2,\"path\":\"/nonexistent/missing.tg\"}".to_string(),
        format!(
            "{{\"id\":3,\"path\":{},\"wat\":true}}",
            json_string(&tg("smart_light.tg"))
        ),
        format!(
            "{{\"id\":4,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
    ];
    let lines = session(&requests, 1);
    assert_eq!(lines.len(), 4, "{lines:?}");
    // JSON syntax error: spanned with line and byte offset, id falls back to
    // the line number.
    assert!(
        lines[0].contains("\"id\":1,\"status\":\"error\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"line\":1,\"byte\":15"), "{}", lines[0]);
    // Missing file: a request-level error.
    assert!(lines[1].contains("\"id\":2,"), "{}", lines[1]);
    assert!(lines[1].contains("\"status\":\"error\""), "{}", lines[1]);
    assert!(lines[1].contains("cannot read"), "{}", lines[1]);
    // Unknown field: rejected, not ignored.
    assert!(lines[2].contains("\"status\":\"error\""), "{}", lines[2]);
    assert!(
        lines[2].contains("unknown request field `wat`"),
        "{}",
        lines[2]
    );
    // The session is still alive and solves the good request.
    assert!(lines[3].contains("\"id\":4,"), "{}", lines[3]);
    assert!(lines[3].contains("\"status\":\"ok\""), "{}", lines[3]);
}

#[test]
fn batch_responses_merge_in_order_and_deduplicate() {
    let paths = [
        tg("smart_light.tg"),
        tg("coffee_machine.tg"),
        tg("smart_light.tg"), // duplicate of item 0
        "/nonexistent/missing.tg".to_string(),
    ];
    let request = format!(
        "{{\"id\":9,\"kind\":\"batch\",\"paths\":[{}]}}",
        paths
            .iter()
            .map(|p| json_string(p))
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut outputs_by_jobs = Vec::new();
    for jobs in [1, 4] {
        let lines = session(std::slice::from_ref(&request), jobs);
        assert_eq!(lines.len(), 5, "4 items + summary: {lines:?}");
        for (i, line) in lines[..4].iter().enumerate() {
            assert!(
                line.contains(&format!("\"index\":{i},")),
                "responses merge in submission order: {line}"
            );
            assert!(line.contains("\"id\":9,\"kind\":\"batch-item\""), "{line}");
        }
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cache\":\"miss\""), "{}", lines[1]);
        assert!(lines[2].contains("\"cache\":\"hit\""), "{}", lines[2]);
        assert_eq!(
            payload(&lines[0]),
            payload(&lines[2]),
            "the duplicate's payload is byte-identical"
        );
        assert!(lines[3].contains("\"status\":\"error\""), "{}", lines[3]);
        let summary = &lines[4];
        assert!(summary.contains("\"id\":9,\"kind\":\"batch\""), "{summary}");
        assert!(summary.contains("\"items\":4,\"errors\":1"), "{summary}");
        assert!(
            summary.contains("\"cache_hits\":1,\"cache_misses\":2"),
            "{summary}"
        );
        // Everything except the envelope timing is --jobs-invariant; strip
        // elapsed_us and compare the whole session byte-for-byte.
        let stripped: Vec<String> = lines.iter().map(|l| strip_field(l, "elapsed_us")).collect();
        outputs_by_jobs.push(stripped);
    }
    assert_eq!(
        outputs_by_jobs[0], outputs_by_jobs[1],
        "batch output is bit-identical for any --jobs"
    );
}

/// Removes a `"name":<digits>` field (with its preceding or trailing comma)
/// from a response line, for timing-insensitive comparisons.
fn strip_field(line: &str, name: &str) -> String {
    let marker = format!("\"{name}\":");
    let Some(start) = line.find(&marker) else {
        return line.to_string();
    };
    let mut end = start + marker.len();
    let bytes = line.as_bytes();
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b',' {
        end += 1; // also swallow the trailing comma
    } else if start > 0 && bytes[start - 1] == b',' {
        return format!("{}{}", &line[..start - 1], &line[end..]);
    }
    format!("{}{}", &line[..start], &line[end..])
}

#[test]
fn purpose_override_changes_the_game_and_the_cache_key() {
    let requests = vec![
        format!(
            "{{\"id\":1,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
        format!(
            "{{\"id\":2,\"path\":{},\"purpose\":\"control: A[] not IUT.Bright\"}}",
            json_string(&tg("smart_light.tg"))
        ),
        // The plant file has no control: line, so it needs an override...
        format!(
            "{{\"id\":3,\"path\":{}}}",
            json_string(&tg("smart_light.plant.tg"))
        ),
        // ...and solves fine with one.
        format!(
            "{{\"id\":4,\"path\":{},\"purpose\":\"control: A<> IUT.Bright\"}}",
            json_string(&tg("smart_light.plant.tg"))
        ),
    ];
    let lines = session(&requests, 1);
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(
        lines[1].contains("\"cache\":\"miss\""),
        "a different objective is a different game: {}",
        lines[1]
    );
    assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
    assert!(lines[2].contains("\"status\":\"error\""), "{}", lines[2]);
    assert!(lines[3].contains("\"status\":\"ok\""), "{}", lines[3]);
}

#[test]
fn solver_options_reach_the_solve_and_the_key() {
    let requests = vec![
        format!(
            "{{\"id\":1,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
        // Different semantics-relevant options → different cache entry.
        format!(
            "{{\"id\":2,\"path\":{},\"engine\":\"jacobi\",\"exhaustive\":true}}",
            json_string(&tg("smart_light.tg"))
        ),
        // jobs is NOT part of the key: same game, different parallelism.
        format!(
            "{{\"id\":3,\"path\":{},\"jobs\":4}}",
            json_string(&tg("smart_light.tg"))
        ),
        // no_strategy variant: payload carries a verdict-only strategy file.
        format!(
            "{{\"id\":4,\"path\":{},\"strategy\":false}}",
            json_string(&tg("smart_light.tg"))
        ),
    ];
    let lines = session(&requests, 1);
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\":\"miss\""), "{}", lines[1]);
    assert!(lines[1].contains("\"engine\":\"jacobi\""), "{}", lines[1]);
    assert!(
        lines[2].contains("\"cache\":\"hit\""),
        "jobs must not change the cache key: {}",
        lines[2]
    );
    assert_eq!(payload(&lines[0]), payload(&lines[2]));
    assert!(lines[3].contains("\"cache\":\"miss\""), "{}", lines[3]);
    assert!(lines[3].contains("\"strategy_rules\":null"), "{}", lines[3]);
    assert!(
        payload(&lines[3]).contains("strategy none"),
        "verdict-only files still serialize: {}",
        lines[3]
    );
}

#[test]
fn controller_fields_and_downloads_ride_the_same_cache_entry() {
    let requests = vec![
        format!(
            "{{\"id\":1,\"path\":{}}}",
            json_string(&tg("smart_light.tg"))
        ),
        // Same game, controller requested: must be a cache hit — the flag
        // selects what the response carries, not what is cached.
        format!(
            "{{\"id\":2,\"path\":{},\"controller\":true}}",
            json_string(&tg("smart_light.tg"))
        ),
        // No strategy extracted → controller summary is null.
        format!(
            "{{\"id\":3,\"path\":{},\"strategy\":false,\"controller\":true}}",
            json_string(&tg("smart_light.tg"))
        ),
    ];
    let lines = session(&requests, 1);
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[0].contains("\"minimized_rules\":"), "{}", lines[0]);
    assert!(lines[0].contains("\"controller_states\":"), "{}", lines[0]);
    assert!(
        !payload(&lines[0]).contains("\"controller\":\"tiga-controller"),
        "without the flag the serialized controller stays out: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"cache\":\"hit\""),
        "`controller` must not change the cache key: {}",
        lines[1]
    );
    assert!(
        payload(&lines[1]).contains("\"controller\":\"tiga-controller v1\\u000a"),
        "the flag adds the versioned controller text: {}",
        lines[1]
    );
    // Modulo the requested controller field, the hit payload is the miss's.
    let with_flag = payload(&lines[1]);
    let marker = ",\"controller\":\"";
    let start = with_flag.find(marker).unwrap();
    let end = with_flag[start + marker.len()..]
        .find("\"}")
        .map(|i| start + marker.len() + i + 1)
        .unwrap();
    let stripped = format!("{}{}", &with_flag[..start], &with_flag[end..]);
    assert_eq!(stripped, payload(&lines[0]));
    // The minimized controller never has more rules than the strategy.
    let field = |line: &str, key: &str| {
        let start = line.find(key).unwrap() + key.len();
        line[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<usize>()
            .unwrap()
    };
    assert!(
        field(&lines[0], "\"minimized_rules\":") <= field(&lines[0], "\"strategy_rules\":"),
        "{}",
        lines[0]
    );
    assert!(
        lines[2].contains("\"minimized_rules\":null,\"controller_states\":null"),
        "{}",
        lines[2]
    );
}

#[test]
fn numeric_request_fields_reject_negatives_and_overflow() {
    let light = json_string(&tg("smart_light.tg"));
    let requests = vec![
        format!("{{\"id\":1,\"path\":{light},\"max_rounds\":-1}}"),
        format!("{{\"id\":2,\"path\":{light},\"jobs\":-3}}"),
        format!("{{\"id\":3,\"path\":{light},\"max_states\":-2}}"),
        // Beyond i64: rejected by the JSON reader itself, with a byte offset.
        format!("{{\"id\":4,\"path\":{light},\"max_rounds\":99999999999999999999}}"),
        // The session survives all of it and solves the next request.
        format!("{{\"id\":5,\"path\":{light}}}"),
    ];
    let lines = session(&requests, 1);
    assert_eq!(lines.len(), 5, "{lines:?}");
    for (line, needle) in [
        (
            &lines[0],
            "`max_rounds` must be a non-negative number, got -1",
        ),
        (&lines[1], "`jobs` must be a non-negative number, got -3"),
        (
            &lines[2],
            "`max_states` must be a non-negative number, got -2",
        ),
    ] {
        assert!(line.contains("\"status\":\"error\""), "{line}");
        assert!(line.contains(needle), "expected {needle:?} in {line}");
    }
    assert!(lines[3].contains("\"status\":\"error\""), "{}", lines[3]);
    assert!(lines[3].contains("\"byte\":"), "{}", lines[3]);
    assert!(lines[3].contains("bad number"), "{}", lines[3]);
    assert!(lines[4].contains("\"status\":\"ok\""), "{}", lines[4]);
}

#[test]
fn bounded_purposes_get_distinct_cache_entries() {
    let light = json_string(&tg("smart_light.tg"));
    let requests = vec![
        format!("{{\"id\":1,\"path\":{light},\"purpose\":\"control: A<><=50 IUT.Bright\"}}"),
        // Same model, same predicate, different bound: a different game —
        // the bound lands in the canonical control: line, hence in the key.
        format!("{{\"id\":2,\"path\":{light},\"purpose\":\"control: A<><=60 IUT.Bright\"}}"),
        // Repeating the first bound hits its (still cached) entry.
        format!("{{\"id\":3,\"path\":{light},\"purpose\":\"control: A<><=50 IUT.Bright\"}}"),
        // The unbounded purpose is a third distinct game.
        format!("{{\"id\":4,\"path\":{light},\"purpose\":\"control: A<> IUT.Bright\"}}"),
        // An out-of-range bound is a spanned request error, not a panic.
        format!("{{\"id\":5,\"path\":{light},\"purpose\":\"control: A<><=-1 IUT.Bright\"}}"),
    ];
    let lines = session(&requests, 1);
    assert_eq!(lines.len(), 5, "{lines:?}");
    let key = |line: &str| {
        let marker = "\"key\":\"";
        let start = line.find(marker).unwrap() + marker.len();
        line[start..].split('"').next().unwrap().to_string()
    };
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(
        lines[1].contains("\"cache\":\"miss\""),
        "a different bound is a different game: {}",
        lines[1]
    );
    assert_ne!(
        key(&lines[0]),
        key(&lines[1]),
        "bounds T=50 and T=60 must produce distinct cache keys"
    );
    assert!(
        lines[2].contains("\"cache\":\"hit\""),
        "both bounded games sit in one session cache: {}",
        lines[2]
    );
    assert_eq!(key(&lines[0]), key(&lines[2]));
    assert_eq!(payload(&lines[0]), payload(&lines[2]));
    assert!(lines[3].contains("\"cache\":\"miss\""), "{}", lines[3]);
    assert_ne!(key(&lines[3]), key(&lines[0]));
    assert!(lines[4].contains("\"status\":\"error\""), "{}", lines[4]);
    assert!(lines[4].contains("a time bound in 0..="), "{}", lines[4]);
}

#[test]
fn blank_lines_are_skipped_and_ids_echo_strings() {
    let requests = vec![
        String::new(),
        format!(
            "{{\"id\":\"job-a\",\"path\":{}}}",
            json_string(&tg("coffee_machine.tg"))
        ),
        "   ".to_string(),
    ];
    let lines = session(&requests, 1);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("\"id\":\"job-a\","), "{}", lines[0]);
    assert!(
        lines[0].contains("\"model\":\"coffee-machine\""),
        "{}",
        lines[0]
    );
}
