//! Acceptance pin: the checked-in `examples/tg/` files are faithful to the
//! programmatic model zoo.
//!
//! * every checked-in `.tg` parses;
//! * `tiga solve examples/tg/smart_light.tg` (default options) reproduces
//!   the same verdict and `SolverStats` state counts as solving the
//!   programmatic `model_zoo()` entry;
//! * the checked-in products and plants are structurally equal to their
//!   in-memory counterparts, so `tiga zoo --emit-tg` is a no-op diff.

use std::path::{Path, PathBuf};
use tiga_bench::model_zoo;
use tiga_lang::{parse_model, print_system};
use tiga_solver::{solve, SolveOptions};

fn tg_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/tg")
}

fn load(name: &str) -> tiga_lang::TgModel {
    let path = tg_dir().join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_model(&source).unwrap_or_else(|e| panic!("{name}: {}", e.render(&source, name)))
}

#[test]
fn every_checked_in_tg_file_parses() {
    let mut count = 0;
    for entry in std::fs::read_dir(tg_dir()).expect("examples/tg exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "tg") {
            load(&path.file_name().unwrap().to_string_lossy());
            count += 1;
        }
    }
    assert!(
        count >= 6,
        "expected ≥ 6 checked-in .tg files, found {count}"
    );
}

#[test]
fn solve_smart_light_tg_matches_programmatic_zoo_entry() {
    let model = load("smart_light.tg");
    let purpose = model.purpose.as_ref().expect("has a control: line");
    let from_file = solve(&model.system, purpose, &SolveOptions::default()).expect("solves");

    let zoo = model_zoo();
    let reference = zoo
        .iter()
        .find(|i| i.model == "smart_light" && i.purpose_name == "bright")
        .expect("zoo has smart_light/bright");
    assert_eq!(model.system, reference.system, "parsed system differs");
    let programmatic = solve(
        &reference.system,
        &reference.purpose,
        &SolveOptions::default(),
    )
    .expect("solves");

    assert_eq!(
        from_file.winning_from_initial, programmatic.winning_from_initial,
        "verdicts differ"
    );
    let (a, b) = (from_file.stats(), programmatic.stats());
    assert_eq!(a.discrete_states, b.discrete_states);
    assert_eq!(a.graph_edges, b.graph_edges);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.winning_zones, b.winning_zones);
    assert_eq!(a.reach_zones, b.reach_zones);
    assert_eq!(a.subsumed_zones, b.subsumed_zones);
    assert_eq!(a.pruned_evaluations, b.pruned_evaluations);
    assert_eq!(a.early_terminated, b.early_terminated);
}

#[test]
fn checked_in_products_equal_zoo_models() {
    let zoo = model_zoo();
    for (file, model_id) in [
        ("smart_light.tg", "smart_light"),
        ("coffee_machine.tg", "coffee_machine"),
        ("lep3.tg", "lep3"),
        ("lep4.tg", "lep4"),
    ] {
        let parsed = load(file);
        let reference = zoo
            .iter()
            .find(|i| i.model == model_id)
            .unwrap_or_else(|| panic!("zoo has {model_id}"));
        assert_eq!(
            parsed.system, reference.system,
            "{file} drifted from the programmatic model — \
             regenerate with `tiga zoo --emit-tg examples/tg`"
        );
        // The checked-in file carries the model's primary purpose.
        assert_eq!(
            parsed.purpose.expect("product files carry a control: line"),
            reference.purpose,
            "{file} carries a different purpose than the zoo's primary one"
        );
    }
}

#[test]
fn checked_in_plants_equal_plant_builders() {
    use tiga_models::{coffee_machine, leader_election, smart_light};
    let plants = [
        ("smart_light.plant.tg", smart_light::plant().unwrap()),
        ("coffee_machine.plant.tg", coffee_machine::plant().unwrap()),
        (
            "lep3.plant.tg",
            leader_election::plant(leader_election::LepConfig::new(3)).unwrap(),
        ),
        (
            "lep4.plant.tg",
            leader_election::plant(leader_election::LepConfig::detailed(4)).unwrap(),
        ),
    ];
    for (file, reference) in &plants {
        let parsed = load(file);
        assert_eq!(
            &parsed.system, reference,
            "{file} drifted — regenerate with `tiga zoo --emit-tg examples/tg`"
        );
        assert!(parsed.purpose.is_none(), "plant files carry no objective");
    }
}

#[test]
fn checked_in_files_are_printer_fixpoints() {
    let zoo = model_zoo();
    for instance in &zoo {
        if instance.purpose_name != zoo_primary(&instance.model) {
            continue;
        }
        let file = tg_dir().join(format!("{}.tg", instance.model));
        let on_disk = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let printed = print_system(&instance.system, Some(&instance.purpose));
        assert_eq!(
            on_disk,
            printed,
            "{} is stale — regenerate with `tiga zoo --emit-tg examples/tg`",
            file.display()
        );
    }
}

#[test]
fn checked_in_safety_instances_match_the_zoo_and_are_winning() {
    // The safety zoo: every `A[]` purpose is checked in as
    // `<model>.<purpose>.tg`, parses back to the programmatic instance,
    // is a printer fixpoint, and solves WINNING with a safe controller.
    let zoo = model_zoo();
    let safety: Vec<_> = zoo
        .iter()
        .filter(|i| i.purpose.quantifier == tiga_tctl::PathQuantifier::Safety)
        .collect();
    assert!(
        safety.len() >= 2,
        "expected at least two safety zoo instances, found {}",
        safety.len()
    );
    for instance in safety {
        let file = format!("{}.{}.tg", instance.model, instance.purpose_name);
        let parsed = load(&file);
        assert_eq!(
            parsed.system, instance.system,
            "{file} drifted — regenerate with `tiga zoo --emit-tg examples/tg`"
        );
        let purpose = parsed.purpose.expect("safety files carry a control: line");
        assert_eq!(purpose, instance.purpose, "{file} purpose drifted");
        let on_disk = std::fs::read_to_string(tg_dir().join(&file)).expect("readable");
        assert_eq!(
            on_disk,
            print_system(&instance.system, Some(&instance.purpose)),
            "{file} is not a printer fixpoint"
        );
        let solution = solve(&parsed.system, &purpose, &SolveOptions::default()).expect("solves");
        assert!(solution.winning_from_initial, "{file} must be enforceable");
        assert!(
            solution.strategy.is_some(),
            "{file}: the safe controller must be extracted"
        );
    }
}

#[test]
fn checked_in_bounded_instances_match_the_zoo_and_are_winning() {
    // The time-bounded zoo: every purpose with a bound is checked in as
    // `<model>.<purpose>.tg`, round-trips with its bound intact, and
    // solves WINNING with an extracted strategy over the `#t`-augmented
    // product (one extra clock column).
    let zoo = model_zoo();
    let bounded: Vec<_> = zoo.iter().filter(|i| i.purpose.bound.is_some()).collect();
    assert!(
        bounded.len() >= 2,
        "expected at least two bounded zoo instances, found {}",
        bounded.len()
    );
    for instance in bounded {
        let file = format!("{}.{}.tg", instance.model, instance.purpose_name);
        let parsed = load(&file);
        assert_eq!(
            parsed.system, instance.system,
            "{file} drifted — regenerate with `tiga zoo --emit-tg examples/tg`"
        );
        let purpose = parsed.purpose.expect("bounded files carry a control: line");
        assert_eq!(purpose, instance.purpose, "{file} purpose drifted");
        assert_eq!(
            purpose.bound, instance.purpose.bound,
            "{file} bound drifted"
        );
        let solution = solve(&parsed.system, &purpose, &SolveOptions::default()).expect("solves");
        assert!(solution.winning_from_initial, "{file} must be enforceable");
        assert_eq!(
            solution.bound, purpose.bound,
            "{file}: the solution must record the bound it was solved under"
        );
        let strategy = solution
            .strategy
            .as_ref()
            .expect("bounded strategies must be extracted");
        assert_eq!(
            strategy.dim(),
            parsed.system.dim() + 1,
            "{file}: bounded strategies range over the #t-augmented product"
        );
    }
}

/// The primary (first-listed) purpose of each zoo model.
fn zoo_primary(model: &str) -> &'static str {
    match model {
        "coffee_machine" => "coffee",
        "smart_light" => "bright",
        "lep3" => "tp1",
        "lep4" => "tp2",
        other => panic!("unknown zoo model {other}"),
    }
}
