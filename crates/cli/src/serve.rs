//! `tiga serve` — strategy synthesis as a long-running service.
//!
//! A persistent process that reads one JSON request per line on stdin and
//! writes one JSON response per line on stdout (jsonl in, jsonl out).  Each
//! request carries a `.tg` model (inline source or a file path), an optional
//! `control:` objective override and solver knobs; the response carries the
//! verdict, the full 14-field `SolverStats` block (as in
//! `tiga solve --stats-json`), timing, the strategy in the versioned
//! `tiga-strategy v1` text format, and the minimized/compiled controller
//! summary (`minimized_rules`/`controller_states`).  A request with
//! `"controller":true` additionally receives the compiled controller itself
//! in the `tiga-controller v1` text format; the controller is compiled once
//! when the game is first solved and stored in the cache entry, so the flag
//! never changes what is cached, only what is serialized into the response.
//!
//! Underneath sits a content-hash [`SolveCache`] keyed on the canonical
//! serialized system (`print_system` output, including the `control:` line)
//! plus the semantics-relevant options: repeated or duplicate submissions
//! are answered from the cache with `"cache":"hit"` and a payload that is
//! byte-identical to the original solve's.  A `batch` request fans a list
//! of models through the work queue (`tiga_parallel::run_keyed`): distinct
//! games are solved concurrently, duplicates are deduplicated before any
//! solving happens, and the responses are merged in submission order — the
//! whole output stream is bit-identical for any `--jobs`, the same
//! discipline as `tiga fuzz`.
//!
//! Malformed input never kills the process: a line that is not valid JSON,
//! a request with bad fields, or a model that fails to parse each produce a
//! `"status":"error"` response (with the line number and, for JSON syntax
//! errors, the byte offset) and the session continues.

use crate::{parse_num, reject_leftovers, take_value, wants_help, EXIT_FAILURE, EXIT_USAGE};
use std::io::{BufRead, Write};
use std::time::Instant;
use tiga_solver::{solve, CacheEntry, SolveCache, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;

const USAGE: &str = "\
USAGE:
    tiga serve [OPTIONS]

Reads one JSON request per line on stdin, writes one JSON response per line
on stdout.  Solved games are kept in a content-hash cache for the lifetime
of the process; duplicate submissions are answered from it (\"cache\":\"hit\")
with a payload byte-identical to the original solve's.

REQUESTS:
    {\"id\":1,\"path\":\"model.tg\"}                    solve a .tg file
    {\"id\":2,\"model\":\"clock x; ...\"}               solve inline source
    {\"id\":3,\"kind\":\"batch\",\"paths\":[...]}        fan a list through the
                                                   work queue, responses
                                                   merged in order
    optional fields: \"purpose\" (control: line override), \"engine\"
    (otfur|jacobi|worklist), \"exhaustive\" (bool), \"strategy\" (bool,
    default true), \"controller\" (bool, default false: include the compiled
    controller in the `tiga-controller v1` text format in the payload),
    \"max_rounds\", \"max_states\", \"jobs\" (solve requests: intra-solve
    threads; default: the server's --jobs)

OPTIONS:
    --jobs N    worker threads: shards batch requests over the queue and is
                the default intra-solve parallelism for single requests
                (0 = all cores; default 1).  Responses are bit-identical
                for any value.
";

/// Parsed arguments of `tiga serve`.
#[derive(Clone, Debug)]
pub struct ServeArgs {
    /// Worker threads for batch sharding / default intra-solve parallelism.
    pub jobs: usize,
}

/// Parses `tiga serve` arguments.
///
/// # Errors
///
/// Returns a usage message on unknown or malformed flags.
pub fn parse_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut args = args.to_vec();
    let jobs = match take_value(&mut args, "--jobs")? {
        Some(n) => parse_num(&n, "--jobs")?,
        None => 1,
    };
    reject_leftovers(&args, USAGE)?;
    Ok(ServeArgs { jobs })
}

/// Runs a serve session: reads jsonl requests from `input` until EOF and
/// writes jsonl responses to `output`.
///
/// Request-level failures are reported as `"status":"error"` responses and
/// never abort the session; the returned error is only for broken I/O.
///
/// # Errors
///
/// Returns the first I/O error on `input` or `output`.
pub fn serve_session<R: BufRead, W: Write>(
    input: R,
    output: &mut W,
    args: &ServeArgs,
) -> std::io::Result<()> {
    let mut cache = SolveCache::new();
    for (index, line) in input.lines().enumerate() {
        let line = line?;
        let line_no = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        for response in handle_line(&line, line_no, args, &mut cache) {
            writeln!(output, "{response}")?;
        }
        output.flush()?;
    }
    Ok(())
}

/// Handles one request line, returning the response lines it produces (one
/// for solve requests, one per item plus a summary for batches).
fn handle_line(
    line: &str,
    line_no: usize,
    args: &ServeArgs,
    cache: &mut SolveCache,
) -> Vec<String> {
    let started = Instant::now();
    let json = match parse_json(line) {
        Ok(json) => json,
        Err(err) => {
            return vec![format!(
                "{{\"id\":{line_no},\"status\":\"error\",\"line\":{line_no},\
                 \"byte\":{},\"error\":\"{}\"}}",
                err.at,
                crate::solve::json_escape(&format!("bad request JSON: {}", err.message)),
            )]
        }
    };
    match Request::from_json(&json, line_no, args.jobs) {
        Err(message) => vec![error_response(
            &format!("{line_no}"),
            "request",
            line_no,
            &message,
        )],
        Ok(request) => match request.kind {
            RequestKind::Solve => vec![handle_solve(&request, line_no, cache, started)],
            RequestKind::Batch => handle_batch(&request, line_no, args, cache, started),
        },
    }
}

fn handle_solve(
    request: &Request,
    line_no: usize,
    cache: &mut SolveCache,
    started: Instant,
) -> String {
    let source = &request.sources[0];
    let prepared = match prepare(source, request, line_no, 0) {
        Ok(prepared) => prepared,
        Err(message) => return error_response(&request.id, "solve", line_no, &message),
    };
    let (entry, cached) = match cache.lookup(&prepared.key) {
        Some(entry) => (entry, true),
        None => match solve_prepared(&prepared) {
            Ok(entry) => {
                cache.store(prepared.key.clone(), entry.clone());
                (entry, false)
            }
            Err(message) => return error_response(&request.id, "solve", line_no, &message),
        },
    };
    ok_response(
        &request.id,
        "solve",
        None,
        cached,
        request.controller,
        &prepared,
        &entry,
        cache,
        started,
    )
}

fn handle_batch(
    request: &Request,
    line_no: usize,
    args: &ServeArgs,
    cache: &mut SolveCache,
    started: Instant,
) -> Vec<String> {
    let prepared: Vec<Result<Prepared, String>> = request
        .sources
        .iter()
        .enumerate()
        .map(|(i, source)| prepare(source, request, line_no, i))
        .collect();
    // Plan the shard: every item whose key is not already cached goes to the
    // work queue; `run_keyed` deduplicates within the batch so each distinct
    // game is solved once, concurrently, while the merge below stays in
    // submission order — deterministic output for any `--jobs`.
    let mut planned_to_run = vec![false; prepared.len()];
    let mut work: Vec<(String, usize)> = Vec::new();
    for (i, item) in prepared.iter().enumerate() {
        if let Ok(p) = item {
            if !cache.contains(&p.key) {
                planned_to_run[i] = true;
                work.push((p.key.clone(), i));
            }
        }
    }
    let results = tiga_parallel::run_keyed(work, args.jobs, |_key, first_index| {
        match &prepared[first_index] {
            Ok(p) => solve_prepared(p),
            Err(_) => unreachable!("only Ok items are planned into the work queue"),
        }
    });

    let mut responses = Vec::with_capacity(prepared.len() + 1);
    let mut errors = 0usize;
    let mut next_result = results.into_iter();
    for (i, item) in prepared.iter().enumerate() {
        let kind = "batch-item";
        match item {
            Err(message) => {
                errors += 1;
                responses.push(item_error_response(&request.id, kind, i, message));
            }
            Ok(p) => {
                let computed = if planned_to_run[i] {
                    Some(next_result.next().expect("one result per planned item").0)
                } else {
                    None
                };
                // The counted lookup happens here, in submission order: the
                // first occurrence of a key is the miss, every later
                // duplicate — whether solved speculatively by the queue or
                // cached in an earlier request — is a hit.
                match cache.lookup(&p.key) {
                    Some(entry) => responses.push(ok_response(
                        &request.id,
                        kind,
                        Some(i),
                        true,
                        request.controller,
                        p,
                        &entry,
                        cache,
                        started,
                    )),
                    None => match computed.expect("uncached items were planned into the queue") {
                        Ok(entry) => {
                            cache.store(p.key.clone(), entry.clone());
                            responses.push(ok_response(
                                &request.id,
                                kind,
                                Some(i),
                                false,
                                request.controller,
                                p,
                                &entry,
                                cache,
                                started,
                            ));
                        }
                        Err(message) => {
                            errors += 1;
                            responses.push(item_error_response(&request.id, kind, i, &message));
                        }
                    },
                }
            }
        }
    }
    let stats = cache.stats();
    responses.push(format!(
        "{{\"id\":{},\"kind\":\"batch\",\"status\":\"{}\",\"items\":{},\"errors\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\"elapsed_us\":{}}}",
        request.id,
        if errors == 0 { "ok" } else { "error" },
        prepared.len(),
        errors,
        stats.hits,
        stats.misses,
        cache.len(),
        started.elapsed().as_micros(),
    ));
    responses
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

enum RequestKind {
    Solve,
    Batch,
}

enum ModelSource {
    Inline(String),
    Path(String),
}

struct Request {
    /// The request's `id` re-encoded as a JSON token, echoed in responses.
    id: String,
    kind: RequestKind,
    sources: Vec<ModelSource>,
    purpose: Option<String>,
    options: SolveOptions,
    /// Include the serialized compiled controller in response payloads.
    /// Not part of the cache key: the controller is compiled and cached
    /// unconditionally, the flag only selects what the response carries.
    controller: bool,
}

impl Request {
    fn from_json(json: &Json, line_no: usize, default_jobs: usize) -> Result<Request, String> {
        let Json::Obj(fields) = json else {
            return Err("request must be a JSON object".to_string());
        };
        let mut id = format!("{line_no}");
        let mut kind = RequestKind::Solve;
        let mut inline: Option<String> = None;
        let mut path: Option<String> = None;
        let mut inlines: Option<Vec<String>> = None;
        let mut paths: Option<Vec<String>> = None;
        let mut purpose: Option<String> = None;
        let mut controller = false;
        let mut options = SolveOptions {
            jobs: default_jobs,
            ..SolveOptions::default()
        };
        for (name, value) in fields {
            match name.as_str() {
                "id" => {
                    id = match value {
                        Json::Int(n) => n.to_string(),
                        Json::Str(s) => format!("\"{}\"", crate::solve::json_escape(s)),
                        _ => return Err("`id` must be a number or a string".to_string()),
                    }
                }
                "kind" => match value.as_str().ok_or("`kind` must be a string")? {
                    "solve" => kind = RequestKind::Solve,
                    "batch" => kind = RequestKind::Batch,
                    other => return Err(format!("unknown request kind `{other}`")),
                },
                "model" => {
                    inline = Some(
                        value
                            .as_str()
                            .ok_or("`model` must be a string")?
                            .to_string(),
                    )
                }
                "path" => path = Some(value.as_str().ok_or("`path` must be a string")?.to_string()),
                "models" => inlines = Some(string_array(value, "models")?),
                "paths" => paths = Some(string_array(value, "paths")?),
                "purpose" => {
                    purpose = Some(
                        value
                            .as_str()
                            .ok_or("`purpose` must be a string")?
                            .to_string(),
                    );
                }
                "engine" => {
                    options.engine = match value.as_str().ok_or("`engine` must be a string")? {
                        "otfur" => SolveEngine::Otfur,
                        "jacobi" => SolveEngine::Jacobi,
                        "worklist" => SolveEngine::Worklist,
                        other => return Err(format!("unknown engine `{other}`")),
                    }
                }
                "exhaustive" => {
                    options.early_termination =
                        !value.as_bool().ok_or("`exhaustive` must be a bool")?;
                }
                "strategy" => {
                    options.extract_strategy =
                        value.as_bool().ok_or("`strategy` must be a bool")?;
                }
                "controller" => {
                    controller = value.as_bool().ok_or("`controller` must be a bool")?;
                }
                "max_rounds" => options.max_rounds = usize_field(value, "max_rounds")?,
                "max_states" => options.explore.max_states = usize_field(value, "max_states")?,
                "jobs" => options.jobs = usize_field(value, "jobs")?,
                other => return Err(format!("unknown request field `{other}`")),
            }
        }
        let sources = match kind {
            RequestKind::Solve => {
                if inlines.is_some() || paths.is_some() {
                    return Err("`models`/`paths` need `\"kind\":\"batch\"`".to_string());
                }
                match (inline, path) {
                    (Some(_), Some(_)) => {
                        return Err("pass `model` or `path`, not both".to_string())
                    }
                    (Some(text), None) => vec![ModelSource::Inline(text)],
                    (None, Some(p)) => vec![ModelSource::Path(p)],
                    (None, None) => {
                        return Err("a solve request needs `model` or `path`".to_string())
                    }
                }
            }
            RequestKind::Batch => {
                if inline.is_some() || path.is_some() {
                    return Err("a batch request takes `models` or `paths` arrays".to_string());
                }
                // Batch items run concurrently across the queue; intra-solve
                // parallelism would oversubscribe it.
                options.jobs = 1;
                let sources: Vec<ModelSource> = match (inlines, paths) {
                    (Some(_), Some(_)) => {
                        return Err("pass `models` or `paths`, not both".to_string())
                    }
                    (Some(texts), None) => texts.into_iter().map(ModelSource::Inline).collect(),
                    (None, Some(ps)) => ps.into_iter().map(ModelSource::Path).collect(),
                    (None, None) => {
                        return Err("a batch request needs `models` or `paths`".to_string())
                    }
                };
                if sources.is_empty() {
                    return Err("a batch request needs at least one model".to_string());
                }
                sources
            }
        };
        Ok(Request {
            id,
            kind,
            sources,
            purpose,
            options,
            controller,
        })
    }
}

/// Reads a non-negative integer request field.  A negative value names the
/// field and the offending number (overflowing literals never get this far:
/// the JSON reader rejects anything outside i64 with a byte offset).
fn usize_field(value: &Json, name: &str) -> Result<usize, String> {
    match value {
        Json::Int(n) => usize::try_from(*n)
            .map_err(|_| format!("`{name}` must be a non-negative number, got {n}")),
        _ => Err(format!("`{name}` must be a non-negative number")),
    }
}

fn string_array(value: &Json, name: &str) -> Result<Vec<String>, String> {
    let Json::Arr(items) = value else {
        return Err(format!("`{name}` must be an array of strings"));
    };
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(ToString::to_string)
                .ok_or_else(|| format!("`{name}` must be an array of strings"))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Solving
// ---------------------------------------------------------------------------

/// A request item resolved down to a solvable game plus its cache key.
struct Prepared {
    key: String,
    model_name: String,
    system: tiga_model::System,
    purpose: TestPurpose,
    options: SolveOptions,
}

fn prepare(
    source: &ModelSource,
    request: &Request,
    line_no: usize,
    item: usize,
) -> Result<Prepared, String> {
    let (text, label) = match source {
        ModelSource::Inline(text) => (text.clone(), format!("request-{line_no}.{item}")),
        ModelSource::Path(path) => (
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?,
            path.clone(),
        ),
    };
    let model = tiga_lang::parse_model(&text).map_err(|err| err.render(&text, &label))?;
    let purpose = crate::solve::resolve_purpose(&model, request.purpose.as_deref())?;
    // The canonical exact-inverse serialization of the lowered system (with
    // its objective) is the content-hash identity of the game: a file and an
    // inline copy of it, or two formattings of the same model, share a key.
    let canonical = tiga_lang::print_system(&model.system, Some(&purpose));
    let key = SolveCache::key(&canonical, &request.options);
    Ok(Prepared {
        key,
        model_name: model.system.name().to_string(),
        system: model.system,
        purpose,
        options: request.options.clone(),
    })
}

fn solve_prepared(prepared: &Prepared) -> Result<CacheEntry, String> {
    let solution = solve(&prepared.system, &prepared.purpose, &prepared.options)
        .map_err(|e| format!("solver failed: {e}"))?;
    // Minimize + compile at store time: every later hit answers the
    // controller fields (and a `"controller":true` download) for free.
    let controller = solution
        .strategy
        .as_ref()
        .map(tiga_solver::CompiledController::compile);
    Ok(CacheEntry {
        winning: solution.winning_from_initial,
        stats: solution.stats().clone(),
        strategy: solution.strategy,
        controller,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Renders an ok response: a volatile envelope (cache status, counters,
/// timing) followed by the stable `payload` object.  The payload is built
/// purely from the cache entry, so a hit is byte-identical to its miss.
#[allow(clippy::too_many_arguments)]
fn ok_response(
    id: &str,
    kind: &str,
    index: Option<usize>,
    cached: bool,
    include_controller: bool,
    prepared: &Prepared,
    entry: &CacheEntry,
    cache: &SolveCache,
    started: Instant,
) -> String {
    let stats = cache.stats();
    let index_field = index.map_or(String::new(), |i| format!("\"index\":{i},"));
    let strategy_text =
        tiga_solver::print_strategy(&prepared.model_name, entry.winning, entry.strategy.as_ref());
    let strategy_rules = entry
        .strategy
        .as_ref()
        .map_or("null".to_string(), |s| s.rule_count().to_string());
    // The serialized controller is included only on request: it is built
    // from the cached entry, so the payload stays a pure function of
    // (entry, request flag) — hits remain byte-identical to their miss.
    let controller_field = if include_controller {
        let text = tiga_solver::print_controller(
            &prepared.model_name,
            entry.winning,
            entry.controller.as_ref(),
        );
        format!(",\"controller\":\"{}\"", crate::solve::json_escape(&text))
    } else {
        String::new()
    };
    format!(
        "{{\"id\":{id},\"kind\":\"{kind}\",{index_field}\"status\":\"ok\",\
         \"cache\":\"{cache_status}\",\"key\":\"{key}\",\
         \"cache_hits\":{hits},\"cache_misses\":{misses},\"cache_entries\":{entries},\
         \"elapsed_us\":{elapsed},\
         \"payload\":{{\"model\":\"{model}\",\"engine\":\"{engine}\",\"verdict\":\"{verdict}\",\
         {stats_fields},\"strategy_rules\":{strategy_rules},{controller_fields},\
         \"strategy\":\"{strategy}\"{controller_field}}}}}",
        cache_status = if cached { "hit" } else { "miss" },
        key = SolveCache::fingerprint(&prepared.key),
        hits = stats.hits,
        misses = stats.misses,
        entries = cache.len(),
        elapsed = started.elapsed().as_micros(),
        model = crate::solve::json_escape(&prepared.model_name),
        engine = prepared.options.engine.name(),
        verdict = if entry.winning { "winning" } else { "losing" },
        stats_fields = crate::solve::stats_json_fields(&entry.stats),
        controller_fields = crate::solve::controller_json_fields(entry.controller.as_ref()),
        strategy = crate::solve::json_escape(&strategy_text),
    )
}

fn error_response(id: &str, kind: &str, line_no: usize, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"kind\":\"{kind}\",\"status\":\"error\",\"line\":{line_no},\
         \"error\":\"{}\"}}",
        crate::solve::json_escape(message)
    )
}

fn item_error_response(id: &str, kind: &str, index: usize, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"kind\":\"{kind}\",\"index\":{index},\"status\":\"error\",\
         \"error\":\"{}\"}}",
        crate::solve::json_escape(message)
    )
}

// ---------------------------------------------------------------------------
// A minimal JSON reader (crates.io/serde is unreachable; hand-rolled in the
// baseline.rs spirit).  Supports objects, arrays, strings with escapes,
// integers, booleans and null — everything the request protocol needs.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Kept for tests: production numeric fields go through [`usize_field`]
    /// so rejections carry the offending value.
    #[cfg(test)]
    fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// A JSON syntax error with the byte offset it occurred at.
#[derive(Debug)]
struct JsonError {
    at: usize,
    message: String,
}

fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the JSON value"));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("only integers are supported"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Int)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so bytes
                    // form valid sequences).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.error("bad UTF-8 in string"))?
                        .chars()
                        .next()
                        .expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Decodes `XXXX` after `\u`, including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.error("bad low surrogate"));
                }
                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.error("bad surrogate pair"));
            }
            return Err(self.error("lone high surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }
}

/// Entry point used by [`crate::run`].
pub(crate) fn main(args: &[String]) -> i32 {
    if wants_help(args) {
        crate::emit(USAGE.trim_end());
        return 0;
    }
    match parse_args(args) {
        Err(usage) => {
            eprintln!("{usage}");
            EXIT_USAGE
        }
        Ok(parsed) => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            match serve_session(stdin.lock(), &mut out, &parsed) {
                Ok(()) => 0,
                // A consumer hanging up mid-session (e.g. `| head`) is a
                // normal way for a pipe server to stop.
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
                Err(e) => {
                    eprintln!("error: serve I/O failed: {e}");
                    EXIT_FAILURE
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_protocol_surface() {
        let json = parse_json(
            r#"{"id":7,"kind":"batch","paths":["a.tg","b.tg"],"exhaustive":true,"jobs":0,"note":null,"neg":-3}"#,
        )
        .unwrap();
        let Json::Obj(fields) = &json else {
            panic!("not an object")
        };
        assert_eq!(fields[0], ("id".to_string(), Json::Int(7)));
        assert_eq!(fields[1].1.as_str(), Some("batch"));
        assert_eq!(
            fields[2].1,
            Json::Arr(vec![
                Json::Str("a.tg".to_string()),
                Json::Str("b.tg".to_string())
            ])
        );
        assert_eq!(fields[3].1.as_bool(), Some(true));
        assert_eq!(fields[4].1.as_usize(), Some(0));
        assert_eq!(fields[5].1, Json::Null);
        assert_eq!(fields[6].1, Json::Int(-3));
    }

    #[test]
    fn json_string_escapes_roundtrip() {
        let json = parse_json(r#"{"s":"a\nb\t\"q\"\\\u0041\u00e9\ud83d\ude00"}"#).unwrap();
        let Json::Obj(fields) = &json else {
            panic!("not an object")
        };
        assert_eq!(fields[0].1.as_str(), Some("a\nb\t\"q\"\\Aé😀"));
    }

    #[test]
    fn json_errors_carry_byte_offsets() {
        let err = parse_json("{\"a\" 1}").unwrap_err();
        assert_eq!(err.at, 5);
        assert!(parse_json("not json at all").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":1.5}").is_err(), "floats are rejected");
        assert!(parse_json("\"lone \\ud800\"").is_err());
        // Truncations never panic.
        let good = r#"{"id":1,"path":"x.tg","models":["a"],"purpose":"control: A<> true"}"#;
        for cut in 0..good.len() {
            let _ = parse_json(&good[..cut]);
        }
    }

    #[test]
    fn requests_reject_malformed_shapes() {
        let args_jobs = 1;
        let parse = |text: &str| Request::from_json(&parse_json(text).unwrap(), 1, args_jobs);
        assert!(parse(r#"{"path":"a.tg","model":"x"}"#).is_err());
        assert!(parse(r#"{}"#).is_err());
        assert!(parse(r#"{"kind":"batch","paths":[]}"#).is_err());
        assert!(parse(r#"{"kind":"batch","path":"a.tg"}"#).is_err());
        assert!(parse(r#"{"kind":"frobnicate","path":"a.tg"}"#).is_err());
        assert!(
            parse(r#"{"path":"a.tg","wat":1}"#).is_err(),
            "unknown fields"
        );
        assert!(parse(r#"{"path":"a.tg","engine":"magic"}"#).is_err());
        assert!(
            parse(r#"{"paths":["a.tg"]}"#).is_err(),
            "batch arrays need kind=batch"
        );
        let ok = parse(r#"{"id":"x","path":"a.tg","engine":"jacobi","exhaustive":true}"#).unwrap();
        assert_eq!(ok.id, "\"x\"");
        assert_eq!(ok.options.engine, SolveEngine::Jacobi);
        assert!(!ok.options.early_termination);
        assert!(!ok.controller, "controller defaults to false");
        let ok = parse(r#"{"path":"a.tg","controller":true}"#).unwrap();
        assert!(ok.controller);
        assert!(parse(r#"{"path":"a.tg","controller":1}"#).is_err());
    }
}
