//! `tiga test` — synthesize a strategy and run a mutation campaign.

use crate::{
    load_model, parse_num, reject_leftovers, take_value, wants_help, EXIT_FAILURE, EXIT_USAGE,
};
use tiga_testing::{
    default_policies, generate_mutants, run_mutation_campaign_with, CampaignOptions,
    MutationConfig, TestConfig, TestHarness,
};

const USAGE: &str = "\
USAGE:
    tiga test <file.tg> [OPTIONS]

The file's system is the closed product (plant composed with its environment)
and its `control:` line is the test purpose.  A winning strategy is
synthesized, then executed against the conformant specification and a pool of
mutants under several output-timing policies.

OPTIONS:
    --spec <plant.tg>           plant-only model for tioco monitoring and
                                mutation (default: the product itself)
    --threads N                 worker threads (0 = all cores; results are
                                bit-identical for any thread count)
    --seed N                    campaign master seed
    --repetitions N             runs per implementation
    --max-mutants N             cap the generated mutant pool (0 = unlimited)
    --purpose '<control: ...>'  override the file's control: line
";

/// Parsed arguments of `tiga test`.
#[derive(Clone, Debug)]
pub struct TestArgs {
    /// Path to the closed product model.
    pub path: String,
    /// Optional plant-only specification.
    pub spec: Option<String>,
    /// Campaign scheduling and seeding.
    pub campaign: CampaignOptions,
    /// Mutant pool cap (0 = unlimited).
    pub max_mutants: usize,
    /// Objective override.
    pub purpose: Option<String>,
}

/// Parses `tiga test` arguments.
///
/// # Errors
///
/// Returns a usage message on unknown or malformed flags.
pub fn parse_args(args: &[String]) -> Result<TestArgs, String> {
    let mut args = args.to_vec();
    let mut campaign = CampaignOptions::default();
    if let Some(threads) = take_value(&mut args, "--threads")? {
        campaign.threads = parse_num(&threads, "--threads")?;
    }
    if let Some(seed) = take_value(&mut args, "--seed")? {
        campaign.master_seed = parse_num(&seed, "--seed")?;
    }
    if let Some(reps) = take_value(&mut args, "--repetitions")? {
        campaign.repetitions = parse_num(&reps, "--repetitions")?;
    }
    let max_mutants = match take_value(&mut args, "--max-mutants")? {
        None => 0,
        Some(n) => parse_num(&n, "--max-mutants")?,
    };
    let spec = take_value(&mut args, "--spec")?;
    let purpose = take_value(&mut args, "--purpose")?;
    let path = if args.is_empty() {
        return Err(format!("error: missing <file.tg>\n\n{USAGE}"));
    } else {
        args.remove(0)
    };
    reject_leftovers(&args, USAGE)?;
    Ok(TestArgs {
        path,
        spec,
        campaign,
        max_mutants,
        purpose,
    })
}

/// Runs `tiga test`, returning `(report, campaign_is_sound)`.
///
/// The boolean is `false` when a conformant implementation failed (a
/// soundness violation — this must never happen and fails the process).
///
/// # Errors
///
/// Returns a rendered diagnostic on parse, synthesis or execution failures.
pub fn run_test(args: &TestArgs) -> Result<(String, bool), String> {
    let model = load_model(&args.path)?;
    let purpose_text = match &args.purpose {
        Some(text) => text.clone(),
        None => model
            .purpose
            .as_ref()
            .map(tiga_lang::control_line)
            .ok_or_else(|| {
                format!(
                    "error: `{}` has no `control:` line; add one or pass --purpose",
                    model.system.name()
                )
            })?,
    };
    let spec = match &args.spec {
        None => model.system.clone(),
        Some(path) => load_model(path)?.system,
    };
    let mutation = MutationConfig {
        max_mutants: args.max_mutants,
        ..MutationConfig::default()
    };
    let mutants = generate_mutants(&spec, &mutation)
        .map_err(|e| format!("error: mutant generation failed: {e}"))?;
    let harness = TestHarness::synthesize(
        model.system.clone(),
        spec.clone(),
        &purpose_text,
        TestConfig::default(),
    )
    .map_err(|e| format!("error: cannot synthesize a test case: {e}"))?;
    let summary = run_mutation_campaign_with(
        &harness,
        &spec,
        &mutants,
        &default_policies(),
        &args.campaign,
    )
    .map_err(|e| format!("error: campaign failed: {e}"))?;
    let sound = summary.false_alarms() == 0;
    let mut report = format!(
        "model: {} ({})\npurpose: {purpose_text}\nstrategy_rules: {}\nmutants: {} (cap {})\n\n{summary}",
        model.system.name(),
        args.path,
        harness.strategy().rule_count(),
        mutants.len(),
        if args.max_mutants == 0 {
            "unlimited".to_string()
        } else {
            args.max_mutants.to_string()
        },
    );
    if !sound {
        report.push_str("\nSOUNDNESS VIOLATION: a conformant implementation failed\n");
    }
    Ok((report, sound))
}

/// Entry point used by [`crate::run`].
pub(crate) fn main(args: &[String]) -> i32 {
    if wants_help(args) {
        crate::emit(USAGE.trim_end());
        return 0;
    }
    match parse_args(args) {
        Err(usage) => {
            eprintln!("{usage}");
            EXIT_USAGE
        }
        Ok(parsed) => match run_test(&parsed) {
            Ok((report, sound)) => {
                crate::emit(&report);
                i32::from(!sound)
            }
            Err(report) => {
                eprintln!("{report}");
                EXIT_FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_campaign_flags() {
        let args = parse_args(&strings(&[
            "m.tg",
            "--threads",
            "2",
            "--seed",
            "7",
            "--repetitions",
            "3",
            "--max-mutants",
            "5",
        ]))
        .unwrap();
        assert_eq!(args.campaign.threads, 2);
        assert_eq!(args.campaign.master_seed, 7);
        assert_eq!(args.campaign.repetitions, 3);
        assert_eq!(args.max_mutants, 5);
        assert!(args.spec.is_none());
    }

    #[test]
    fn rejects_missing_file() {
        assert!(parse_args(&strings(&["--threads", "2"])).is_err());
    }
}
