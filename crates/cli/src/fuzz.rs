//! `tiga fuzz` — differential fuzzing of the whole stack.
//!
//! Generates seeded random timed games and runs the five oracles of
//! [`tiga_gen`] over each of them: engine agreement (Otfur vs Jacobi vs
//! Worklist, on reachability and safety objectives alike), printer/parser
//! roundtrip, the zone-algebra reference model, the `Pred_t` reference, and
//! — for every winning game — end-to-end test execution of the synthesized
//! strategy against conformant and mutant simulated implementations with
//! the tioco verdicts as the oracle.
//! `--jobs N` shards the cases over the deterministic work queue of
//! `tiga-testing` with bit-identical findings for any N.  Failing cases are
//! shrunk (unless `--no-shrink`) and written as self-contained `.tg`
//! reproducers.

use crate::{parse_num, reject_leftovers, take_flag, take_value, wants_help, EXIT_USAGE};
use std::path::PathBuf;
use tiga_gen::{fuzz_campaign, FuzzOptions, FuzzReport};

const USAGE: &str = "\
USAGE:
    tiga fuzz [OPTIONS]

OPTIONS:
    --seed N          master seed (default: 1); case i uses the i-th
                      SplitMix64 value derived from it
    --count N         number of generated systems (default: 100)
    --jobs N          shard the cases over N worker threads (0 = all
                      cores; default: 1); findings are bit-identical
                      for any value
    --shrink          shrink failing cases before writing reproducers
                      (default: on)
    --no-shrink       report unshrunk failing systems
    --out-dir DIR     directory for .tg reproducers (default: fuzz-failures;
                      --out is accepted as an alias)
    --bounded P       probability in [0, 1] that a generated objective
                      carries a time bound `<=T` (default: 0); bounded
                      cases also run the bound-monotonicity oracle
    --max-states N    per-engine exploration budget (default: 20000)
    --zone-rounds N   zone-algebra / pred-t rounds per case (default: 2)
    --zone-samples N  sampled valuations per zone round (default: 24)

EXIT STATUS:
    0  every oracle was clean on every case
    1  at least one divergence was found (reproducers in --out)
    2  usage error
";

/// Parsed arguments of `tiga fuzz`.
#[derive(Clone, Debug)]
pub struct FuzzArgs {
    /// Campaign options passed to [`fuzz_campaign`].
    pub options: FuzzOptions,
    /// Where reproducers are written.
    pub out_dir: PathBuf,
}

/// Parses `tiga fuzz` arguments.
///
/// # Errors
///
/// Returns a usage message on unknown or malformed flags.
pub fn parse_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut args = args.to_vec();
    let mut options = FuzzOptions::default();
    if let Some(seed) = take_value(&mut args, "--seed")? {
        options.seed = parse_num(&seed, "--seed")?;
    }
    if let Some(count) = take_value(&mut args, "--count")? {
        options.count = parse_num(&count, "--count")?;
    }
    if let Some(jobs) = take_value(&mut args, "--jobs")? {
        options.jobs = parse_num(&jobs, "--jobs")?;
    }
    // `--shrink` is the default; the flag is still accepted so invocations
    // can be explicit about it.
    let _ = take_flag(&mut args, "--shrink");
    if take_flag(&mut args, "--no-shrink") {
        options.shrink = false;
    }
    if let Some(p) = take_value(&mut args, "--bounded")? {
        let prob: f64 = p
            .parse()
            .map_err(|_| format!("error: `--bounded` expects a probability, got `{p}`"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!(
                "error: `--bounded` expects a probability in [0, 1], got `{p}`"
            ));
        }
        options.gen.bound_prob = prob;
    }
    if let Some(n) = take_value(&mut args, "--max-states")? {
        options.engines.max_states = parse_num(&n, "--max-states")?;
    }
    if let Some(n) = take_value(&mut args, "--zone-rounds")? {
        options.zone_rounds = parse_num(&n, "--zone-rounds")?;
    }
    if let Some(n) = take_value(&mut args, "--zone-samples")? {
        options.zone_samples = parse_num(&n, "--zone-samples")?;
    }
    let out_dir = match (
        take_value(&mut args, "--out-dir")?,
        take_value(&mut args, "--out")?,
    ) {
        (Some(dir), None) | (None, Some(dir)) => PathBuf::from(dir),
        (None, None) => PathBuf::from("fuzz-failures"),
        (Some(_), Some(_)) => {
            return Err("error: `--out-dir` and `--out` are aliases; pass only one".to_string())
        }
    };
    reject_leftovers(&args, USAGE)?;
    Ok(FuzzArgs { options, out_dir })
}

/// Runs `tiga fuzz`, returning the rendered report and whether it was clean.
///
/// Reproducers are written to `args.out_dir` (created on demand) only when
/// there are failures.
///
/// # Errors
///
/// Returns a rendered error if a reproducer cannot be written.
pub fn run_fuzz(args: &FuzzArgs) -> Result<(String, bool), String> {
    let report = fuzz_campaign(&args.options, &mut |done, failures| {
        if done % 100 == 0 {
            crate::emit(&format!(
                "fuzz: {done}/{} cases, {failures} failure(s)",
                args.options.count
            ));
        }
    });
    let mut written = Vec::new();
    for failure in &report.failures {
        if let Some(tg) = &failure.reproducer {
            std::fs::create_dir_all(&args.out_dir)
                .map_err(|e| format!("error: cannot create `{}`: {e}", args.out_dir.display()))?;
            let path = args.out_dir.join(format!(
                "case{}_{:#x}_{}.tg",
                failure.case_index, failure.case_seed, failure.oracle
            ));
            std::fs::write(&path, tg)
                .map_err(|e| format!("error: cannot write `{}`: {e}", path.display()))?;
            written.push(path);
        }
    }
    Ok((
        render_report(&args.options, &report, &written),
        report.is_clean(),
    ))
}

fn render_report(options: &FuzzOptions, report: &FuzzReport, written: &[PathBuf]) -> String {
    let mut out = format!(
        "fuzz campaign: seed {} / {} cases\n\
         engine oracle: {} agreed ({} winning, {} losing; {} safety, {} bounded purposes), {} skipped\n\
         exec oracle: {} strategies executed ({} winning games unobservable), {}/{} mutants detected\n\
         failures: {}",
        options.seed,
        report.cases,
        report.agreed,
        report.winning,
        report.agreed - report.winning,
        report.safety,
        report.bounded,
        report.skipped,
        report.executed,
        report.unobservable,
        report.detected,
        report.mutants,
        report.failures.len(),
    );
    for failure in &report.failures {
        out.push_str(&format!(
            "\n[{}] case {} (seed {:#x}): {}",
            failure.oracle, failure.case_index, failure.case_seed, failure.detail
        ));
    }
    for path in written {
        out.push_str(&format!("\nreproducer written to {}", path.display()));
    }
    out
}

/// Entry point used by [`crate::run`].
pub(crate) fn main(args: &[String]) -> i32 {
    if wants_help(args) {
        crate::emit(USAGE.trim_end());
        return 0;
    }
    match parse_args(args) {
        Err(usage) => {
            eprintln!("{usage}");
            EXIT_USAGE
        }
        Ok(parsed) => match run_fuzz(&parsed) {
            Ok((report, clean)) => {
                crate::emit(&report);
                i32::from(!clean)
            }
            Err(report) => {
                eprintln!("{report}");
                crate::EXIT_FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_flags() {
        let args = parse_args(&strings(&[
            "--seed",
            "7",
            "--count",
            "25",
            "--jobs",
            "4",
            "--no-shrink",
            "--out",
            "/tmp/repro",
            "--max-states",
            "5000",
        ]))
        .unwrap();
        assert_eq!(args.options.seed, 7);
        assert_eq!(args.options.count, 25);
        assert_eq!(args.options.jobs, 4);
        assert!(!args.options.shrink);
        assert_eq!(args.options.engines.max_states, 5000);
        assert_eq!(args.out_dir, PathBuf::from("/tmp/repro"));
    }

    #[test]
    fn out_dir_flag_and_alias() {
        let args = parse_args(&strings(&["--out-dir", "/tmp/r2"])).unwrap();
        assert_eq!(args.out_dir, PathBuf::from("/tmp/r2"));
        assert!(parse_args(&strings(&["--out-dir", "/a", "--out", "/b"])).is_err());
    }

    #[test]
    fn defaults_and_rejections() {
        let args = parse_args(&[]).unwrap();
        assert_eq!(args.options.seed, 1);
        assert_eq!(args.options.jobs, 1);
        assert!(args.options.shrink);
        assert!(parse_args(&strings(&["--seed"])).is_err());
        assert!(parse_args(&strings(&["--count", "x"])).is_err());
        assert!(parse_args(&strings(&["stray"])).is_err());
    }

    #[test]
    fn tiny_campaign_is_clean() {
        // Unique per-process out dir: a leftover directory from an earlier
        // (failing) run or another user must not poison this assertion.
        let out_dir =
            std::env::temp_dir().join(format!("tiga-fuzz-test-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&out_dir);
        let args = parse_args(&strings(&[
            "--count",
            "5",
            "--zone-rounds",
            "1",
            "--zone-samples",
            "8",
            "--out",
            out_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let (report, clean) = run_fuzz(&args).unwrap();
        assert!(clean, "{report}");
        assert!(report.contains("5 cases"), "{report}");
        // No failures → no reproducer directory.
        assert!(!args.out_dir.exists());
    }
}
