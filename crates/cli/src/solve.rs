//! `tiga solve` — solve the timed game of a `.tg` model.

use crate::{
    load_model, parse_num, reject_leftovers, take_flag, take_value, wants_help, EXIT_FAILURE,
    EXIT_USAGE,
};
use tiga_solver::{solve, GameSolution, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;

const USAGE: &str = "\
USAGE:
    tiga solve <file.tg> [OPTIONS]

OPTIONS:
    --engine otfur|jacobi|worklist   fixpoint engine (default: otfur)
    --exhaustive                     disable early termination (propagate the
                                     full winning sets even once the initial
                                     state is decided)
    --no-strategy                    skip strategy extraction
    --max-rounds N                   fixpoint round / reevaluation budget
    --jobs N                         worker threads for the intra-solve
                                     parallel phases; 0 = all cores, default 1
                                     (results are identical for any N)
    --purpose '<control: ...>'       override the file's control: line
    --expect winning|losing          exit non-zero unless the verdict matches
    --show-strategy                  print the synthesized strategy listing
    --no-intern                      disable the hash-consed zone store for the
                                     passed lists (results are identical; the
                                     clone counters then measure the
                                     pre-interning behavior)
    --stats-json                     emit the full solver statistics as one
                                     JSON object instead of the text report
    --emit-strategy <path>           write the verdict and synthesized
                                     strategy to <path> in the versioned
                                     `tiga-strategy v1` text format
    --emit-controller <path>         minimize the strategy, compile it, and
                                     write the result to <path> in the
                                     versioned `tiga-controller v1` format
";

/// Parsed arguments of `tiga solve`.
#[derive(Clone, Debug)]
pub struct SolveArgs {
    /// Path to the `.tg` model.
    pub path: String,
    /// Solver options assembled from the flags (including the engine).
    pub options: SolveOptions,
    /// Objective override (otherwise the file's `control:` line is used).
    pub purpose: Option<String>,
    /// Fail unless the verdict matches (`Some(true)` = expect winning).
    pub expect_winning: Option<bool>,
    /// Include the strategy listing in the report.
    pub show_strategy: bool,
    /// Emit the statistics as a JSON object instead of the text report.
    pub stats_json: bool,
    /// Write the verdict + strategy in the `tiga-strategy v1` format here.
    pub emit_strategy: Option<String>,
    /// Write the minimized, compiled controller in the `tiga-controller v1`
    /// format here.
    pub emit_controller: Option<String>,
}

/// Parses `tiga solve` arguments.
///
/// # Errors
///
/// Returns a usage message on unknown or malformed flags.
pub fn parse_args(args: &[String]) -> Result<SolveArgs, String> {
    let mut args = args.to_vec();
    let engine = match take_value(&mut args, "--engine")?.as_deref() {
        None | Some("otfur") => SolveEngine::Otfur,
        Some("jacobi") => SolveEngine::Jacobi,
        Some("worklist") => SolveEngine::Worklist,
        Some(other) => {
            return Err(format!(
                "error: unknown engine `{other}` (expected otfur, jacobi or worklist)"
            ))
        }
    };
    let mut options = SolveOptions {
        engine,
        ..SolveOptions::default()
    };
    if take_flag(&mut args, "--exhaustive") {
        options.early_termination = false;
    }
    if take_flag(&mut args, "--no-strategy") {
        options.extract_strategy = false;
    }
    if let Some(rounds) = take_value(&mut args, "--max-rounds")? {
        options.max_rounds = parse_num(&rounds, "--max-rounds")?;
    }
    if let Some(jobs) = take_value(&mut args, "--jobs")? {
        options.jobs = parse_num(&jobs, "--jobs")?;
    }
    let purpose = take_value(&mut args, "--purpose")?;
    let expect_winning = match take_value(&mut args, "--expect")?.as_deref() {
        None => None,
        Some("winning") => Some(true),
        Some("losing") => Some(false),
        Some(other) => {
            return Err(format!(
                "error: `--expect` takes `winning` or `losing`, got `{other}`"
            ))
        }
    };
    let show_strategy = take_flag(&mut args, "--show-strategy");
    if take_flag(&mut args, "--no-intern") {
        options.interning = false;
    }
    let stats_json = take_flag(&mut args, "--stats-json");
    let emit_strategy = take_value(&mut args, "--emit-strategy")?;
    let emit_controller = take_value(&mut args, "--emit-controller")?;
    let path = if args.is_empty() {
        return Err(format!("error: missing <file.tg>\n\n{USAGE}"));
    } else {
        args.remove(0)
    };
    reject_leftovers(&args, USAGE)?;
    Ok(SolveArgs {
        path,
        options,
        purpose,
        expect_winning,
        show_strategy,
        stats_json,
        emit_strategy,
        emit_controller,
    })
}

/// Runs `tiga solve`, returning the rendered report.
///
/// # Errors
///
/// Returns a rendered diagnostic (parse error with caret, solver error, or
/// verdict mismatch under `--expect`).
pub fn run_solve(args: &SolveArgs) -> Result<String, String> {
    let model = load_model(&args.path)?;
    let purpose = resolve_purpose(&model, args.purpose.as_deref())?;
    let solution = solve(&model.system, &purpose, &args.options)
        .map_err(|e| format!("error: solver failed: {e}"))?;
    if let Some(path) = &args.emit_strategy {
        let text = tiga_solver::print_strategy(
            model.system.name(),
            solution.winning_from_initial,
            solution.strategy.as_ref(),
        );
        std::fs::write(path, text)
            .map_err(|e| format!("error: cannot write strategy to `{path}`: {e}"))?;
    }
    // Minimize + compile once, shared by `--emit-controller` and the
    // controller fields of `--stats-json`.
    let controller = if args.emit_controller.is_some() || args.stats_json {
        solution
            .strategy
            .as_ref()
            .map(tiga_solver::CompiledController::compile)
    } else {
        None
    };
    if let Some(path) = &args.emit_controller {
        let text = tiga_solver::print_controller(
            model.system.name(),
            solution.winning_from_initial,
            controller.as_ref(),
        );
        std::fs::write(path, text)
            .map_err(|e| format!("error: cannot write controller to `{path}`: {e}"))?;
    }
    if args.stats_json {
        let report = render_stats_json(&model.system, args, &solution, controller.as_ref());
        if let Some(expected) = args.expect_winning {
            if solution.winning_from_initial != expected {
                return Err(format!(
                    "{report}\nerror: expected the initial state to be {}, but it is {}",
                    verdict_name(expected),
                    verdict_name(solution.winning_from_initial)
                ));
            }
        }
        return Ok(report);
    }
    let mut report = render_report(&args.path, &model.system, &purpose, args, &solution);
    if args.show_strategy {
        if let Some(strategy) = &solution.strategy {
            // A bounded strategy plays on the `#t`-augmented product; render
            // it against that system so the extra clock dimension has a name.
            let augmented = tiga_solver::bounded_system(&model.system, &purpose)
                .map_err(|e| format!("error: solver failed: {e}"))?;
            let display_system = augmented.as_ref().unwrap_or(&model.system);
            report.push('\n');
            report.push_str(&strategy.display(display_system).to_string());
        }
    }
    if let Some(expected) = args.expect_winning {
        if solution.winning_from_initial != expected {
            return Err(format!(
                "{report}\nerror: expected the initial state to be {}, but it is {}",
                verdict_name(expected),
                verdict_name(solution.winning_from_initial)
            ));
        }
    }
    Ok(report)
}

fn verdict_name(winning: bool) -> &'static str {
    if winning {
        "WINNING"
    } else {
        "LOSING"
    }
}

/// Resolves the objective: an explicit `control:` override wins, otherwise
/// the model file's own `control:` line.  Shared with `tiga serve`.
pub(crate) fn resolve_purpose(
    model: &tiga_lang::TgModel,
    override_text: Option<&str>,
) -> Result<TestPurpose, String> {
    match override_text {
        Some(text) => TestPurpose::parse(text, &model.system)
            .map_err(|e| format!("error: bad --purpose: {e}")),
        None => model.purpose.clone().ok_or_else(|| {
            format!(
                "error: `{}` has no `control:` line; add one or pass --purpose",
                model.system.name()
            )
        }),
    }
}

fn render_report(
    path: &str,
    system: &tiga_model::System,
    purpose: &TestPurpose,
    args: &SolveArgs,
    solution: &GameSolution,
) -> String {
    let stats = solution.stats();
    let timed = &solution.timed;
    let strategy_rules = solution
        .strategy
        .as_ref()
        .map_or("-".to_string(), |s| s.rule_count().to_string());
    format!(
        "model: {} ({path})\n\
         purpose: {}\n\
         engine: {}\n\
         verdict: {}\n\
         discrete_states: {}\n\
         graph_edges: {}\n\
         iterations: {}\n\
         winning_zones: {}\n\
         reach_zones: {}\n\
         subsumed_zones: {}\n\
         pruned_evaluations: {}\n\
         peak_federation_size: {}\n\
         early_terminated: {}\n\
         interned_zones: {}\n\
         intern_hits: {}\n\
         dbm_clones: {}\n\
         peak_live_zones: {}\n\
         minimized_bytes_saved: {}\n\
         strategy_rules: {strategy_rules}\n\
         time: exploration {}us + fixpoint {}us = {}us",
        system.name(),
        tiga_lang::control_line(purpose),
        args.options.engine.name(),
        verdict_name(solution.winning_from_initial),
        stats.discrete_states,
        stats.graph_edges,
        stats.iterations,
        stats.winning_zones,
        stats.reach_zones,
        stats.subsumed_zones,
        stats.pruned_evaluations,
        stats.peak_federation_size,
        stats.early_terminated,
        stats.interned_zones,
        stats.intern_hits,
        stats.dbm_clones,
        stats.peak_live_zones,
        stats.minimized_bytes_saved,
        timed.exploration_time.as_micros(),
        timed.fixpoint_time.as_micros(),
        timed.total_time().as_micros(),
    )
}

/// Renders the full [`tiga_solver::SolverStats`] (plus verdict, engine and
/// timing) as one flat JSON object, for scripted consumers of `--stats-json`.
fn render_stats_json(
    system: &tiga_model::System,
    args: &SolveArgs,
    solution: &GameSolution,
    controller: Option<&tiga_solver::CompiledController>,
) -> String {
    let stats = solution.stats();
    let timed = &solution.timed;
    let strategy_rules = solution
        .strategy
        .as_ref()
        .map_or("null".to_string(), |s| s.rule_count().to_string());
    format!(
        "{{\"model\":\"{}\",\"engine\":\"{}\",\"winning\":{},{},\
         \"strategy_rules\":{},{},\
         \"exploration_us\":{},\"fixpoint_us\":{},\"total_us\":{}}}",
        json_escape(system.name()),
        args.options.engine.name(),
        solution.winning_from_initial,
        stats_json_fields(stats),
        strategy_rules,
        controller_json_fields(controller),
        timed.exploration_time.as_micros(),
        timed.fixpoint_time.as_micros(),
        timed.total_time().as_micros(),
    )
}

/// The compiled-controller summary as JSON fields (no braces): the rule
/// count after minimization and the number of compiled discrete states, or
/// `null`s when no strategy was extracted.  Shared with the `tiga serve`
/// response payloads so both surfaces report the same block.
pub(crate) fn controller_json_fields(
    controller: Option<&tiga_solver::CompiledController>,
) -> String {
    match controller {
        Some(c) => format!(
            "\"minimized_rules\":{},\"controller_states\":{}",
            c.rule_count(),
            c.state_count()
        ),
        None => "\"minimized_rules\":null,\"controller_states\":null".to_string(),
    }
}

/// The full 14-field [`tiga_solver::SolverStats`] block as JSON fields (no
/// braces), in the order established by `--stats-json`.  Shared with the
/// `tiga serve` response payloads so both surfaces report the same block.
pub(crate) fn stats_json_fields(stats: &tiga_solver::SolverStats) -> String {
    format!(
        concat!(
            "\"discrete_states\":{},\"graph_edges\":{},\"iterations\":{},",
            "\"winning_zones\":{},\"peak_federation_size\":{},\"reach_zones\":{},",
            "\"subsumed_zones\":{},\"pruned_evaluations\":{},\"early_terminated\":{},",
            "\"interned_zones\":{},\"intern_hits\":{},\"dbm_clones\":{},",
            "\"peak_live_zones\":{},\"minimized_bytes_saved\":{}"
        ),
        stats.discrete_states,
        stats.graph_edges,
        stats.iterations,
        stats.winning_zones,
        stats.peak_federation_size,
        stats.reach_zones,
        stats.subsumed_zones,
        stats.pruned_evaluations,
        stats.early_terminated,
        stats.interned_zones,
        stats.intern_hits,
        stats.dbm_clones,
        stats.peak_live_zones,
        stats.minimized_bytes_saved,
    )
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Entry point used by [`crate::run`].
pub(crate) fn main(args: &[String]) -> i32 {
    if wants_help(args) {
        crate::emit(USAGE.trim_end());
        return 0;
    }
    match parse_args(args) {
        Err(usage) => {
            eprintln!("{usage}");
            EXIT_USAGE
        }
        Ok(parsed) => match run_solve(&parsed) {
            Ok(report) => {
                crate::emit(&report);
                0
            }
            Err(report) => {
                eprintln!("{report}");
                EXIT_FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_engine_and_flags() {
        let args = parse_args(&strings(&[
            "model.tg",
            "--engine",
            "jacobi",
            "--exhaustive",
            "--max-rounds",
            "42",
            "--expect",
            "winning",
        ]))
        .unwrap();
        assert_eq!(args.path, "model.tg");
        assert_eq!(args.options.engine, SolveEngine::Jacobi);
        assert!(!args.options.early_termination);
        assert_eq!(args.options.max_rounds, 42);
        assert_eq!(args.expect_winning, Some(true));
        assert_eq!(args.options.jobs, 1, "jobs defaults to sequential");
    }

    #[test]
    fn parses_jobs() {
        let args = parse_args(&strings(&["model.tg", "--jobs", "0"])).unwrap();
        assert_eq!(args.options.jobs, 0, "0 = all cores, as in `tiga fuzz`");
        let args = parse_args(&strings(&["model.tg", "--jobs", "4"])).unwrap();
        assert_eq!(args.options.jobs, 4);
        assert!(parse_args(&strings(&["model.tg", "--jobs", "many"])).is_err());
    }

    #[test]
    fn parses_interning_and_json_flags() {
        let args = parse_args(&strings(&["model.tg"])).unwrap();
        assert!(args.options.interning, "interning is on by default");
        assert!(!args.stats_json);
        let args = parse_args(&strings(&["model.tg", "--no-intern", "--stats-json"])).unwrap();
        assert!(!args.options.interning);
        assert!(args.stats_json);
    }

    #[test]
    fn stats_json_reports_the_full_stats_block() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/tg/smart_light.tg");
        let mut args = parse_args(&strings(&[path.to_str().unwrap(), "--stats-json"])).unwrap();
        let report = run_solve(&args).unwrap();
        assert!(report.starts_with('{') && report.ends_with('}'), "{report}");
        for key in [
            "\"model\":\"smart-light\"",
            "\"engine\":\"otfur\"",
            "\"winning\":",
            "\"discrete_states\":",
            "\"graph_edges\":",
            "\"iterations\":",
            "\"winning_zones\":",
            "\"peak_federation_size\":",
            "\"reach_zones\":",
            "\"subsumed_zones\":",
            "\"pruned_evaluations\":",
            "\"early_terminated\":",
            "\"interned_zones\":",
            "\"intern_hits\":",
            "\"dbm_clones\":",
            "\"peak_live_zones\":",
            "\"minimized_bytes_saved\":",
            "\"strategy_rules\":",
            "\"minimized_rules\":",
            "\"controller_states\":",
            "\"total_us\":",
        ] {
            assert!(report.contains(key), "missing {key} in {report}");
        }
        assert!(!report.contains("\"interned_zones\":0,"), "{report}");
        // Interning off: the interning counters report zero, clone pressure
        // is measured instead, and the verdict-bearing fields are unchanged.
        args.options.interning = false;
        let off = run_solve(&args).unwrap();
        assert!(off.contains("\"interned_zones\":0,"), "{off}");
        assert!(off.contains("\"minimized_bytes_saved\":0,"), "{off}");
        let field = |r: &str, key: &str| {
            let start = r.find(key).unwrap() + key.len();
            r[start..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        };
        for key in [
            "\"discrete_states\":",
            "\"reach_zones\":",
            "\"winning_zones\":",
        ] {
            assert_eq!(field(&report, key), field(&off, key), "{key} differs");
        }
    }

    #[test]
    fn emit_strategy_writes_a_roundtrippable_file() {
        let model = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/tg/smart_light.tg");
        let out = std::env::temp_dir().join(format!(
            "tiga-emit-strategy-test-{}.strategy",
            std::process::id()
        ));
        let args = parse_args(&strings(&[
            model.to_str().unwrap(),
            "--emit-strategy",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(args.emit_strategy.as_deref(), out.to_str());
        run_solve(&args).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let file = tiga_solver::parse_strategy(&text).unwrap();
        assert_eq!(file.model, "smart-light");
        assert!(file.winning);
        let strategy = file.strategy.expect("winning game has a strategy");
        assert!(strategy.rule_count() > 0);
        // The file is a serializer fixpoint.
        assert_eq!(
            tiga_solver::print_strategy(&file.model, file.winning, Some(&strategy)),
            text
        );
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn stats_json_minimized_rules_never_exceed_strategy_rules() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/tg/smart_light.tg");
        let args = parse_args(&strings(&[path.to_str().unwrap(), "--stats-json"])).unwrap();
        let report = run_solve(&args).unwrap();
        let field = |key: &str| {
            let start = report.find(key).unwrap() + key.len();
            report[start..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<usize>()
                .unwrap()
        };
        let strategy_rules = field("\"strategy_rules\":");
        let minimized = field("\"minimized_rules\":");
        let states = field("\"controller_states\":");
        assert!(minimized <= strategy_rules, "{report}");
        assert!(minimized >= 1 && states >= 1, "{report}");
        // Without strategy extraction both controller fields are null.
        let args = parse_args(&strings(&[
            path.to_str().unwrap(),
            "--stats-json",
            "--no-strategy",
        ]))
        .unwrap();
        let report = run_solve(&args).unwrap();
        assert!(
            report.contains("\"minimized_rules\":null,\"controller_states\":null"),
            "{report}"
        );
    }

    #[test]
    fn emit_controller_writes_a_roundtrippable_file() {
        let model = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/tg/smart_light.tg");
        let out = std::env::temp_dir().join(format!(
            "tiga-emit-controller-test-{}.controller",
            std::process::id()
        ));
        let args = parse_args(&strings(&[
            model.to_str().unwrap(),
            "--emit-controller",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(args.emit_controller.as_deref(), out.to_str());
        run_solve(&args).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with(tiga_solver::CONTROLLER_FORMAT_HEADER));
        let file = tiga_solver::parse_controller(&text).unwrap();
        assert_eq!(file.model, "smart-light");
        assert!(file.winning);
        let controller = file.controller.expect("winning game has a controller");
        assert!(controller.rule_count() > 0);
        // The file is a serializer fixpoint.
        assert_eq!(
            tiga_solver::print_controller(&file.model, file.winning, Some(&controller)),
            text
        );
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&strings(&["m.tg", "--engine", "magic"])).is_err());
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["m.tg", "--wat"])).is_err());
        assert!(parse_args(&strings(&["m.tg", "--expect", "maybe"])).is_err());
    }
}
