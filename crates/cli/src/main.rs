//! The `tiga` binary: a thin wrapper around [`tiga_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(tiga_cli::run(&args));
}
