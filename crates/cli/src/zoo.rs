//! `tiga zoo` — list and export the built-in benchmark model zoo.

use crate::{reject_leftovers, take_value, wants_help, EXIT_FAILURE, EXIT_USAGE};
use std::fmt::Write as _;
use std::path::Path;
use tiga_bench::model_zoo;
use tiga_lang::print_system;
use tiga_model::System;
use tiga_models::{coffee_machine, leader_election, smart_light};

const USAGE: &str = "\
USAGE:
    tiga zoo [--emit-tg <dir>]

Lists the benchmark model zoo (every case-study product with its test
purposes).  With `--emit-tg`, writes each model to `<dir>/<model>.tg` (with
its primary purpose as the `control:` line), each *safety* or *time-bounded*
purpose to `<dir>/<model>.<purpose>.tg`, and the corresponding plant to
`<dir>/<model>.plant.tg` — the files under `examples/tg/` in this repository
are generated exactly this way.
";

/// Parsed arguments of `tiga zoo`.
#[derive(Clone, Debug)]
pub struct ZooArgs {
    /// Directory to export `.tg` files into.
    pub emit_dir: Option<String>,
}

/// Parses `tiga zoo` arguments.
///
/// # Errors
///
/// Returns a usage message on unknown flags.
pub fn parse_args(args: &[String]) -> Result<ZooArgs, String> {
    let mut args = args.to_vec();
    let emit_dir = take_value(&mut args, "--emit-tg")?;
    reject_leftovers(&args, USAGE)?;
    Ok(ZooArgs { emit_dir })
}

/// The plant (specification-only) system behind a zoo model id.
///
/// `lepN` ids map to the leader-election plant for `N` nodes: the abstract
/// configuration for `lep3` (matching the historical zoo entry), the
/// detailed one for every larger `N` (the scaling family).
fn plant_for(model: &str) -> Option<System> {
    match model {
        "smart_light" => Some(smart_light::plant().expect("model builds")),
        "coffee_machine" => Some(coffee_machine::plant().expect("model builds")),
        other => {
            let n: usize = other.strip_prefix("lep")?.parse().ok()?;
            let config = if n <= 3 {
                leader_election::LepConfig::new(n)
            } else {
                leader_election::LepConfig::detailed(n)
            };
            Some(leader_election::plant(config).expect("model builds"))
        }
    }
}

/// Runs `tiga zoo`, returning the rendered listing.
///
/// # Errors
///
/// Returns a diagnostic when the export directory cannot be written.
pub fn run_zoo(args: &ZooArgs) -> Result<String, String> {
    let zoo = model_zoo();
    let mut out = String::new();
    let _ = writeln!(out, "{} zoo instances:", zoo.len());
    for instance in &zoo {
        let _ = writeln!(
            out,
            "  {:<16} {:<18} {} automata, {} clocks, {} channels — {}",
            instance.model,
            instance.purpose_name,
            instance.system.automata().len(),
            instance.system.clocks().len(),
            instance.system.channels().len(),
            instance.purpose.source,
        );
    }

    if let Some(dir) = &args.emit_dir {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("error: cannot create `{}`: {e}", dir.display()))?;
        let mut emitted_models = Vec::new();
        for instance in &zoo {
            // One file per model with its primary purpose, plus one file
            // per *safety* or *time-bounded* purpose (those zoo instances
            // are checked in alongside the products they constrain).
            if instance.purpose.quantifier == tiga_tctl::PathQuantifier::Safety
                || instance.purpose.bound.is_some()
            {
                let path = dir.join(format!("{}.{}.tg", instance.model, instance.purpose_name));
                write_tg(
                    &path,
                    &print_system(&instance.system, Some(&instance.purpose)),
                )?;
                let _ = writeln!(out, "wrote {}", path.display());
                continue;
            }
            if emitted_models.contains(&instance.model) {
                continue;
            }
            emitted_models.push(instance.model.clone());
            let path = dir.join(format!("{}.tg", instance.model));
            write_tg(
                &path,
                &print_system(&instance.system, Some(&instance.purpose)),
            )?;
            let _ = writeln!(out, "wrote {}", path.display());
            if let Some(plant) = plant_for(&instance.model) {
                let path = dir.join(format!("{}.plant.tg", instance.model));
                write_tg(&path, &print_system(&plant, None))?;
                let _ = writeln!(out, "wrote {}", path.display());
            }
        }
    }
    Ok(out)
}

fn write_tg(path: &Path, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents)
        .map_err(|e| format!("error: cannot write `{}`: {e}", path.display()))
}

/// Entry point used by [`crate::run`].
pub(crate) fn main(args: &[String]) -> i32 {
    if wants_help(args) {
        crate::emit(USAGE.trim_end());
        return 0;
    }
    match parse_args(args) {
        Err(usage) => {
            eprintln!("{usage}");
            EXIT_USAGE
        }
        Ok(parsed) => match run_zoo(&parsed) {
            Ok(listing) => {
                crate::emit(listing.trim_end());
                0
            }
            Err(report) => {
                eprintln!("{report}");
                EXIT_FAILURE
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_covers_the_zoo() {
        let listing = run_zoo(&ZooArgs { emit_dir: None }).unwrap();
        for model in ["coffee_machine", "smart_light", "lep3"] {
            assert!(listing.contains(model), "{listing}");
        }
    }

    #[test]
    fn every_zoo_model_has_a_plant() {
        let zoo = model_zoo();
        for instance in &zoo {
            assert!(
                plant_for(&instance.model).is_some(),
                "no plant mapping for zoo model `{}` — extend plant_for",
                instance.model
            );
        }
    }
}
