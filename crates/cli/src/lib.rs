//! # tiga-cli — drive the whole stack from `.tg` files
//!
//! This crate implements the `tiga` command line (the binary target is named
//! `tiga`); `main.rs` is a thin wrapper so the subcommands stay testable as
//! library functions:
//!
//! * `tiga solve <file.tg>` — parse, lower and solve the model's `control:`
//!   objective; engine and termination flags map onto
//!   [`tiga_solver::SolveOptions`];
//! * `tiga test <file.tg>` — synthesize the winning strategy and run a
//!   mutation campaign against simulated implementations, mapping flags onto
//!   [`tiga_testing::CampaignOptions`];
//! * `tiga zoo` — list the built-in benchmark model zoo, and with
//!   `--emit-tg <dir>` export every zoo model (and its plant) as `.tg` via
//!   the [`tiga_lang::print_system`] serializer;
//! * `tiga fuzz` — differential fuzzing: seeded random timed games through
//!   the [`tiga_gen`] oracles (engine agreement on reachability *and*
//!   safety objectives, printer/parser roundtrip, zone-algebra reference,
//!   `Pred_t` reference), sharded over worker threads with `--jobs`, with
//!   shrunk `.tg` reproducers on failure;
//! * `tiga serve` — strategy synthesis as a service: jsonl requests on
//!   stdin, jsonl responses (verdict, stats, `tiga-strategy v1` text) on
//!   stdout, deduplicated through a content-hash solve cache; `batch`
//!   requests are sharded over the deterministic work queue.
//!
//! All diagnostics are rendered with source spans ([`tiga_lang::LangError`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fuzz;
mod serve;
mod solve;
mod test;
mod zoo;

pub use fuzz::{run_fuzz, FuzzArgs};
pub use serve::{serve_session, ServeArgs};
pub use solve::{run_solve, SolveArgs};
pub use test::{run_test, TestArgs};
pub use zoo::{run_zoo, ZooArgs};

use tiga_lang::TgModel;

/// Exit code for usage errors (bad flags, missing files).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for model/solver failures (parse errors, unsolvable games).
pub const EXIT_FAILURE: i32 = 1;

const USAGE: &str = "\
tiga — game-theoretic testing of real-time systems (DATE 2008)

USAGE:
    tiga solve <file.tg> [--engine otfur|jacobi|worklist] [--exhaustive]
               [--no-strategy] [--max-rounds N] [--purpose '<control: ...>']
               [--show-strategy]
    tiga test  <file.tg> [--spec <plant.tg>] [--threads N] [--seed N]
               [--repetitions N] [--max-mutants N] [--purpose '<control: ...>']
    tiga zoo   [--emit-tg <dir>]
    tiga fuzz  [--seed N] [--count N] [--jobs N] [--shrink|--no-shrink]
               [--out-dir <dir>] [--max-states N] [--zone-rounds N]
               [--zone-samples N]
    tiga serve [--jobs N]

Run `tiga <command> --help` for details of one command.
";

/// Parses argv (without the program name) and runs the requested command.
///
/// Returns the process exit code instead of calling `exit`, so integration
/// tests can drive the CLI in-process.
#[must_use]
pub fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("solve") => solve::main(&args[1..]),
        Some("test") => test::main(&args[1..]),
        Some("zoo") => zoo::main(&args[1..]),
        Some("fuzz") => fuzz::main(&args[1..]),
        Some("serve") => serve::main(&args[1..]),
        Some("--help" | "-h" | "help") => {
            emit(USAGE.trim_end());
            0
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            EXIT_USAGE
        }
        None => {
            eprint!("{USAGE}");
            EXIT_USAGE
        }
    }
}

/// Reads and parses a `.tg` file, rendering span diagnostics (with the
/// source line and caret) on failure.
///
/// # Errors
///
/// Returns a ready-to-print error report.
pub fn load_model(path: &str) -> Result<TgModel, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("error: cannot read `{path}`: {e}"))?;
    tiga_lang::parse_model(&source).map_err(|err| err.render(&source, path))
}

/// Pops the value of a `--flag VALUE` option from `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            args.remove(i);
            if i < args.len() {
                Ok(Some(args.remove(i)))
            } else {
                Err(format!("error: `{flag}` expects a value"))
            }
        }
    }
}

/// Returns `true` when the args ask for help (`--help` / `-h`), so
/// subcommand mains can print usage to stdout and exit 0 instead of routing
/// help through the usage-error path (stderr, exit 2).
pub(crate) fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// Pops a boolean `--flag` from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        None => false,
        Some(i) => {
            args.remove(i);
            true
        }
    }
}

/// Parses a numeric flag value.
fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("error: `{flag}` expects a number, got `{value}`"))
}

/// Prints to stdout, ignoring broken pipes (so `tiga ... | head` does not
/// panic; Rust installs SIG_IGN for SIGPIPE and surfaces EPIPE here).
pub(crate) fn emit(text: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{text}");
}

/// Rejects leftover arguments after all known flags were consumed.
fn reject_leftovers(args: &[String], usage: &str) -> Result<(), String> {
    if let Some(stray) = args.first() {
        Err(format!("error: unexpected argument `{stray}`\n\n{usage}"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_value_and_flag() {
        let mut args: Vec<String> = ["--engine", "jacobi", "x.tg", "--exhaustive"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            take_value(&mut args, "--engine").unwrap().as_deref(),
            Some("jacobi")
        );
        assert!(take_flag(&mut args, "--exhaustive"));
        assert!(!take_flag(&mut args, "--exhaustive"));
        assert_eq!(args, vec!["x.tg".to_string()]);
        let mut args = vec!["--engine".to_string()];
        assert!(take_value(&mut args, "--engine").is_err());
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert_eq!(run(&["frobnicate".to_string()]), EXIT_USAGE);
        assert_eq!(run(&[]), EXIT_USAGE);
        assert_eq!(run(&["--help".to_string()]), 0);
    }
}
