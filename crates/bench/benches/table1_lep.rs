//! Regenerates **Table 1** of the paper (experiment E1 in DESIGN.md):
//! strategy-generation cost for the Leader Election Protocol under test
//! purposes TP1–TP3 as the number of nodes grows.
//!
//! Criterion reports the timing series; a summary row with the explored
//! state counts and estimated symbolic memory is printed to stderr so the
//! full table (time / memory / states, as in the paper) can be read off one
//! run.  The sweep range is controlled by `TIGA_LEP_MAX_N` (default 4,
//! paper goes to 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiga_bench::{lep_instance, lep_max_nodes, solve_lep};
use tiga_solver::{solve_jacobi, SolveOptions};

fn bench_table1(c: &mut Criterion) {
    let max_n = lep_max_nodes();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (idx, tp) in ["TP1", "TP2", "TP3"].iter().enumerate() {
        for n in 3..=max_n {
            // Print the paper's table row data once per configuration.
            let solution = solve_lep(n, idx);
            let stats = solution.stats();
            eprintln!(
                "table1 {tp} n={n}: {} discrete states, {} winning zones, ~{:.1} MB, winnable={}",
                stats.discrete_states,
                stats.winning_zones,
                stats.estimated_zone_bytes(5) as f64 / (1024.0 * 1024.0),
                solution.winning_from_initial
            );
            let (system, purpose) = lep_instance(n, idx);
            group.bench_with_input(BenchmarkId::new(*tp, n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        solve_jacobi(&system, &purpose, &SolveOptions::default())
                            .expect("solvable"),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
