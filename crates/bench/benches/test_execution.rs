//! Benchmarks of the test-execution machinery (experiment E4 in DESIGN.md):
//! the per-run cost of Algorithm 3.1 and of the online tioco monitor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiga_bench::smart_light_harness;
use tiga_models::{coffee_machine, smart_light};
use tiga_testing::{OutputPolicy, SimulatedIut, SpecMonitor, TestConfig, TestHarness};

fn bench_algorithm_31(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution");
    let light = smart_light_harness();
    let light_plant = smart_light::plant().expect("model builds");
    group.bench_function("smart_light_pass", |b| {
        b.iter(|| {
            let mut iut = SimulatedIut::new(
                "iut",
                light_plant.clone(),
                light.config().scale,
                OutputPolicy::Jittery { seed: 1 },
            );
            black_box(light.execute(&mut iut).expect("executes"));
        });
    });

    let coffee = TestHarness::synthesize(
        coffee_machine::product().expect("builds"),
        coffee_machine::plant().expect("builds"),
        coffee_machine::PURPOSE_COFFEE,
        TestConfig::default(),
    )
    .expect("enforceable");
    let coffee_plant = coffee_machine::plant().expect("builds");
    group.bench_function("coffee_machine_pass", |b| {
        b.iter(|| {
            let mut iut = SimulatedIut::new(
                "iut",
                coffee_plant.clone(),
                coffee.config().scale,
                OutputPolicy::Lazy,
            );
            black_box(coffee.execute(&mut iut).expect("executes"));
        });
    });
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let spec = smart_light::plant().expect("model builds");
    c.bench_function("monitor/observe_trace", |b| {
        b.iter(|| {
            let mut monitor = SpecMonitor::new(&spec, 4).expect("monitor");
            // A representative conformant trace: touch, dim, touch, bright.
            monitor.observe_delay(8).unwrap();
            monitor.observe_input("touch").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_output("dim").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_input("touch").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_output("bright").unwrap();
            black_box(monitor.elapsed_ticks());
        });
    });
}

criterion_group!(benches, bench_algorithm_31, bench_monitor);
criterion_main!(benches);
