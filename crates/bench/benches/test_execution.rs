//! Benchmarks of the test-execution machinery (experiment E4 in DESIGN.md):
//! the per-run cost of Algorithm 3.1, the online tioco monitor, and the
//! decision throughput of interpreted strategies vs compiled controllers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiga_bench::{lep_instance, smart_light_harness};
use tiga_models::{coffee_machine, smart_light};
use tiga_solver::{solve, CompiledController, Controller, SolveEngine, SolveOptions};
use tiga_testing::{OutputPolicy, SimulatedIut, SpecMonitor, TestConfig, TestHarness};

fn bench_algorithm_31(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution");
    let light = smart_light_harness();
    let light_plant = smart_light::plant().expect("model builds");
    group.bench_function("smart_light_pass", |b| {
        b.iter(|| {
            let mut iut = SimulatedIut::new(
                "iut",
                light_plant.clone(),
                light.config().scale,
                OutputPolicy::Jittery { seed: 1 },
            );
            black_box(light.execute(&mut iut).expect("executes"));
        });
    });

    let coffee = TestHarness::synthesize(
        coffee_machine::product().expect("builds"),
        coffee_machine::plant().expect("builds"),
        coffee_machine::PURPOSE_COFFEE,
        TestConfig::default(),
    )
    .expect("enforceable");
    let coffee_plant = coffee_machine::plant().expect("builds");
    group.bench_function("coffee_machine_pass", |b| {
        b.iter(|| {
            let mut iut = SimulatedIut::new(
                "iut",
                coffee_plant.clone(),
                coffee.config().scale,
                OutputPolicy::Lazy,
            );
            black_box(coffee.execute(&mut iut).expect("executes"));
        });
    });
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let spec = smart_light::plant().expect("model builds");
    c.bench_function("monitor/observe_trace", |b| {
        b.iter(|| {
            let mut monitor = SpecMonitor::new(&spec, 4).expect("monitor");
            // A representative conformant trace: touch, dim, touch, bright.
            monitor.observe_delay(8).unwrap();
            monitor.observe_input("touch").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_output("dim").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_input("touch").unwrap();
            monitor.observe_delay(4).unwrap();
            monitor.observe_output("bright").unwrap();
            black_box(monitor.elapsed_ticks());
        });
    });
}

/// Decision throughput on the lep4 avoid-purpose strategy (the Table 1
/// safety workload): the executor's per-step query —
/// [`Controller::decide_with_wakeup`], i.e. `decide` plus the wake-up hint
/// on a wait — over every strategy state at a spread of clock valuations.
///
/// `interpreted` drives the extracted [`tiga_solver::Strategy`] (the
/// pre-compilation decide path: full-matrix rule scans per query);
/// `compiled` drives the minimized, compiled controller.  The compiled
/// path answers the same queries identically (pinned by
/// `tests/controller_differential.rs`) at ≥5× the throughput.
fn bench_decision_throughput(c: &mut Criterion) {
    let (system, purpose) = lep_instance(4, 3);
    let options = SolveOptions {
        engine: SolveEngine::Otfur,
        ..SolveOptions::default()
    };
    let solution = solve(&system, &purpose, &options).expect("lep4 tp4 solves");
    let strategy = solution.strategy.as_ref().expect("tp4 is enforceable");
    let compiled = CompiledController::compile(strategy);
    let scale = 4;
    let clocks = strategy.dim() - 1;
    let queries: Vec<(tiga_model::DiscreteState, Vec<i64>)> = strategy
        .iter()
        .flat_map(|(d, _)| (0..6i64).map(move |u| (d.clone(), vec![u * 7 + 1; clocks])))
        .collect();

    let mut group = c.benchmark_group("decision_throughput");
    group.bench_function("interpreted", |b| {
        b.iter(|| {
            for (d, ticks) in &queries {
                black_box(strategy.decide_with_wakeup(d, ticks, scale));
            }
        });
    });
    group.bench_function("compiled", |b| {
        b.iter(|| {
            for (d, ticks) in &queries {
                black_box(compiled.decide_with_wakeup(d, ticks, scale));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm_31,
    bench_monitor,
    bench_decision_throughput
);
criterion_main!(benches);
