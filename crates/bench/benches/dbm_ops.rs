//! Micro-benchmarks of the DBM/federation substrate (ablation E8 in
//! DESIGN.md): the cost of the zone operations that dominate timed-game
//! solving, across dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiga_bench::{bench_rng, random_federation, random_zone};

fn bench_zone_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbm");
    for dim in [4usize, 8, 12] {
        let mut rng = bench_rng();
        let zones: Vec<_> = (0..64).map(|_| random_zone(&mut rng, dim, 20)).collect();
        group.bench_with_input(BenchmarkId::new("up_down", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let mut z = zones[idx % zones.len()].clone();
                idx += 1;
                z.up();
                z.down();
                black_box(z);
            });
        });
        group.bench_with_input(BenchmarkId::new("intersection", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &zones[idx % zones.len()];
                let bz = &zones[(idx + 7) % zones.len()];
                idx += 1;
                black_box(a.intersection(bz));
            });
        });
        group.bench_with_input(BenchmarkId::new("relation", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &zones[idx % zones.len()];
                let bz = &zones[(idx + 3) % zones.len()];
                idx += 1;
                black_box(a.relation(bz));
            });
        });
    }
    group.finish();
}

fn bench_federation_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation");
    for dim in [4usize, 8] {
        let mut rng = bench_rng();
        let feds: Vec<_> = (0..32)
            .map(|_| random_federation(&mut rng, dim, 4, 20))
            .collect();
        group.bench_with_input(BenchmarkId::new("subtract", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = feds[idx % feds.len()].clone();
                let bz = &feds[(idx + 5) % feds.len()];
                idx += 1;
                black_box(a.difference(bz));
            });
        });
        group.bench_with_input(BenchmarkId::new("pred_t", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let good = &feds[idx % feds.len()];
                let bad = &feds[(idx + 11) % feds.len()];
                idx += 1;
                black_box(good.pred_t(bad));
            });
        });
        group.bench_with_input(BenchmarkId::new("includes", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &feds[idx % feds.len()];
                let bz = &feds[(idx + 9) % feds.len()];
                idx += 1;
                black_box(a.includes(bz));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zone_ops, bench_federation_ops);
criterion_main!(benches);
