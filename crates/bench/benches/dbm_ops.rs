//! Micro-benchmarks of the DBM/federation substrate (ablation E8 in
//! DESIGN.md): the cost of the zone operations that dominate timed-game
//! solving, across dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiga_bench::{bench_rng, random_federation, random_zone};
use tiga_dbm::ZoneStore;

fn bench_zone_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbm");
    for dim in [4usize, 8, 12] {
        let mut rng = bench_rng();
        let zones: Vec<_> = (0..64).map(|_| random_zone(&mut rng, dim, 20)).collect();
        group.bench_with_input(BenchmarkId::new("up_down", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let mut z = zones[idx % zones.len()].clone();
                idx += 1;
                z.up();
                z.down();
                black_box(z);
            });
        });
        group.bench_with_input(BenchmarkId::new("intersection", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &zones[idx % zones.len()];
                let bz = &zones[(idx + 7) % zones.len()];
                idx += 1;
                black_box(a.intersection(bz));
            });
        });
        group.bench_with_input(BenchmarkId::new("relation", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &zones[idx % zones.len()];
                let bz = &zones[(idx + 3) % zones.len()];
                idx += 1;
                black_box(a.relation(bz));
            });
        });
    }
    group.finish();
}

fn bench_federation_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation");
    for dim in [4usize, 8] {
        let mut rng = bench_rng();
        let feds: Vec<_> = (0..32)
            .map(|_| random_federation(&mut rng, dim, 4, 20))
            .collect();
        group.bench_with_input(BenchmarkId::new("subtract", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = feds[idx % feds.len()].clone();
                let bz = &feds[(idx + 5) % feds.len()];
                idx += 1;
                black_box(a.difference(bz));
            });
        });
        group.bench_with_input(BenchmarkId::new("pred_t", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let good = &feds[idx % feds.len()];
                let bad = &feds[(idx + 11) % feds.len()];
                idx += 1;
                black_box(good.pred_t(bad));
            });
        });
        group.bench_with_input(BenchmarkId::new("includes", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let a = &feds[idx % feds.len()];
                let bz = &feds[(idx + 9) % feds.len()];
                idx += 1;
                black_box(a.includes(bz));
            });
        });
    }
    group.finish();
}

fn bench_interning_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern");
    for dim in [4usize, 8] {
        let mut rng = bench_rng();
        let zones: Vec<_> = (0..64).map(|_| random_zone(&mut rng, dim, 20)).collect();
        // Re-interning a warm store is the solver's hot path: most offered
        // zones were derived before, so a lookup is a hash probe, not a copy.
        group.bench_with_input(BenchmarkId::new("intern_hit", dim), &dim, |b, _| {
            let mut store = ZoneStore::new(dim);
            for z in &zones {
                store.intern(z);
            }
            let mut idx = 0;
            b.iter(|| {
                let z = &zones[idx % zones.len()];
                idx += 1;
                black_box(store.intern(z));
            });
        });
        group.bench_with_input(BenchmarkId::new("minimize", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let z = &zones[idx % zones.len()];
                idx += 1;
                black_box(z.minimize());
            });
        });
        let minimal: Vec<_> = zones.iter().map(|z| z.minimize()).collect();
        group.bench_with_input(BenchmarkId::new("rehydrate", dim), &dim, |b, _| {
            let mut idx = 0;
            b.iter(|| {
                let m = &minimal[idx % minimal.len()];
                idx += 1;
                black_box(m.rehydrate());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_zone_ops,
    bench_federation_ops,
    bench_interning_ops
);
criterion_main!(benches);
