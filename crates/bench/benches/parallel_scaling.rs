//! Thread-count scaling of the intra-solve parallel phases on the LEP-N
//! family (experiment for ROADMAP item 1: deterministic intra-solve
//! parallelism).
//!
//! Sweeps `SolveOptions::jobs` over {1, 2, 4, 8} for every LEP-N scaling
//! instance (detailed configuration, reach TP2 and avoid TP4, `n` up to
//! `TIGA_LEP_MAX_N`) under both the Jacobi and the on-the-fly engine.  The
//! parallel phases — successor-candidate computation during forward
//! exploration and the per-round π-updates of the fixpoint — are computed
//! against immutable snapshots and merged in canonical state order, so every
//! job count must produce bit-identical results; this bench asserts that on
//! every measured solve while Criterion records the wall-clock series.
//!
//! Meaningful speedups require real cores: on a single-CPU container the
//! series only shows the (small) sharding overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiga_bench::lep_scaling_instances;
use tiga_solver::{solve, SolveEngine, SolveOptions};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_scaling(c: &mut Criterion) {
    let instances = lep_scaling_instances();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for engine in [SolveEngine::Jacobi, SolveEngine::Otfur] {
        for instance in &instances {
            let reference = solve(
                &instance.system,
                &instance.purpose,
                &SolveOptions {
                    engine,
                    ..SolveOptions::default()
                },
            )
            .expect("solvable");
            for jobs in JOB_COUNTS {
                let options = SolveOptions {
                    engine,
                    jobs,
                    ..SolveOptions::default()
                };
                let id = BenchmarkId::new(
                    format!(
                        "{}/{}/{}",
                        engine.name(),
                        instance.model,
                        instance.purpose_name
                    ),
                    jobs,
                );
                group.bench_with_input(id, &jobs, |b, _| {
                    b.iter(|| {
                        let solution =
                            solve(&instance.system, &instance.purpose, &options).expect("solvable");
                        assert_eq!(
                            solution.stats(),
                            reference.stats(),
                            "jobs={jobs} drifted from the sequential stats"
                        );
                        black_box(solution)
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_scaling
}
criterion_main!(benches);
