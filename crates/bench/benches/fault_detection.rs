//! Fault-detection experiment (experiment E6 in DESIGN.md, the paper's
//! future-work item on test effectiveness): time and detection score of a
//! full mutation campaign with strategy-based testing versus the random
//! baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiga_bench::smart_light_harness;
use tiga_models::smart_light;
use tiga_testing::{
    default_policies, generate_mutants, run_mutation_campaign, run_random_campaign, MutationConfig,
    Verdict,
};

fn bench_campaigns(c: &mut Criterion) {
    let harness = smart_light_harness();
    let plant = smart_light::plant().expect("model builds");
    let mutants = generate_mutants(&plant, &MutationConfig::default()).expect("mutants");
    let policies = default_policies();

    // Report the scores once (the figure-style payload of this experiment).
    let strategic =
        run_mutation_campaign(&harness, &plant, &mutants, &policies, 1).expect("campaign");
    let random = run_random_campaign(
        harness.spec(),
        &plant,
        &mutants,
        &policies,
        harness.config(),
        0xD47E_2008,
    )
    .expect("campaign");
    eprintln!(
        "fault_detection: {} mutants | strategy-based score {:.2} ({} false alarms) | random score {:.2} ({} false alarms)",
        mutants.len(),
        strategic.mutation_score(),
        strategic.false_alarms(),
        random.mutation_score(),
        random.false_alarms()
    );
    assert_eq!(
        strategic.false_alarms(),
        0,
        "soundness: conformant runs never fail"
    );
    assert!(strategic
        .runs
        .iter()
        .filter(|r| r.expected_conformant)
        .all(|r| matches!(r.report.verdict, Verdict::Pass)));

    let mut group = c.benchmark_group("fault_detection");
    group.sample_size(10);
    group.bench_function("strategy_campaign", |b| {
        b.iter(|| {
            black_box(
                run_mutation_campaign(&harness, &plant, &mutants, &policies, 1).expect("campaign"),
            )
        });
    });
    group.bench_function("random_campaign", |b| {
        b.iter(|| {
            black_box(
                run_random_campaign(
                    harness.spec(),
                    &plant,
                    &mutants,
                    &policies,
                    harness.config(),
                    0xD47E_2008,
                )
                .expect("campaign"),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaigns
}
criterion_main!(benches);
