//! Solver ablations (experiment E7 in DESIGN.md):
//!
//! * on-the-fly (OTFUR) solving vs. the eager Jacobi and worklist engines,
//!   with and without early termination;
//! * goal pruning on vs. off during forward exploration;
//! * strategy extraction on vs. off.
//!
//! The machine-readable engine × model matrix (states, subsumption, pruning
//! and early-termination counters) is produced separately by the
//! `solver_matrix` binary; this bench measures wall-clock only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tiga_bench::lep_instance;
use tiga_models::smart_light;
use tiga_solver::{solve, solve_jacobi, solve_worklist, ExploreOptions, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;

fn options(stop_at_goal: bool, extract_strategy: bool) -> SolveOptions {
    SolveOptions {
        explore: ExploreOptions {
            stop_at_goal,
            ..ExploreOptions::default()
        },
        extract_strategy,
        ..SolveOptions::default()
    }
}

fn otfur_options(early_termination: bool) -> SolveOptions {
    SolveOptions {
        engine: SolveEngine::Otfur,
        early_termination,
        ..SolveOptions::default()
    }
}

fn bench_engines(c: &mut Criterion) {
    let smart = smart_light::product().expect("model builds");
    let smart_purpose = TestPurpose::parse(smart_light::PURPOSE_BRIGHT, &smart).expect("parses");
    let (lep, lep_purpose) = lep_instance(3, 1); // TP2, n = 3

    let cases: Vec<(&str, &tiga_model::System, &tiga_tctl::TestPurpose)> = vec![
        ("smart_light_bright", &smart, &smart_purpose),
        ("lep3_tp2", &lep, &lep_purpose),
    ];

    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    for (name, system, purpose) in &cases {
        group.bench_with_input(BenchmarkId::new("otfur", name), name, |b, _| {
            b.iter(|| black_box(solve(system, purpose, &otfur_options(true)).expect("solves")));
        });
        group.bench_with_input(BenchmarkId::new("otfur_exhaustive", name), name, |b, _| {
            b.iter(|| black_box(solve(system, purpose, &otfur_options(false)).expect("solves")));
        });
        group.bench_with_input(BenchmarkId::new("jacobi", name), name, |b, _| {
            b.iter(|| {
                black_box(solve_jacobi(system, purpose, &options(true, true)).expect("solves"))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("jacobi_no_strategy", name),
            name,
            |b, _| {
                b.iter(|| {
                    black_box(solve_jacobi(system, purpose, &options(true, false)).expect("solves"))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("worklist", name), name, |b, _| {
            b.iter(|| {
                black_box(solve_worklist(system, purpose, &options(true, false)).expect("solves"))
            });
        });
        group.bench_with_input(BenchmarkId::new("no_goal_pruning", name), name, |b, _| {
            b.iter(|| {
                black_box(solve_jacobi(system, purpose, &options(false, true)).expect("solves"))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
