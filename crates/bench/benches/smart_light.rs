//! Benchmarks of the Smart Light running example (experiments E2/E3 in
//! DESIGN.md): strategy synthesis for the Fig. 5 purpose and the cost of one
//! complete strategy-driven test execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tiga_bench::smart_light_harness;
use tiga_models::smart_light;
use tiga_solver::{solve_jacobi, SolveOptions};
use tiga_tctl::TestPurpose;
use tiga_testing::{OutputPolicy, SimulatedIut};

fn bench_strategy_synthesis(c: &mut Criterion) {
    let product = smart_light::product().expect("model builds");
    let mut group = c.benchmark_group("smart_light/synthesis");
    for (name, text) in [
        ("bright", smart_light::PURPOSE_BRIGHT),
        ("dim", smart_light::PURPOSE_DIM),
        (
            "bright_and_user_ready",
            smart_light::PURPOSE_BRIGHT_AND_USER_READY,
        ),
    ] {
        let purpose = TestPurpose::parse(text, &product).expect("parses");
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    solve_jacobi(&product, &purpose, &SolveOptions::default()).expect("solvable"),
                )
            });
        });
    }
    group.finish();
}

fn bench_test_execution(c: &mut Criterion) {
    let harness = smart_light_harness();
    let plant = smart_light::plant().expect("model builds");
    let mut group = c.benchmark_group("smart_light/execution");
    for policy in [
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Jittery { seed: 7 },
    ] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                let mut iut =
                    SimulatedIut::new("bench-iut", plant.clone(), harness.config().scale, policy);
                let report = harness.execute(&mut iut).expect("executes");
                assert!(report.verdict.is_pass());
                black_box(report);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategy_synthesis, bench_test_execution);
criterion_main!(benches);
