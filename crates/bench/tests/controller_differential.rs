//! Differential pins for strategy minimization and compiled controllers.
//!
//! The whole decide path now runs behind the [`Controller`] abstraction,
//! with the interpreted [`Strategy`] kept as the reference implementation.
//! These tests pin the refactor's core claim against fresh solves of the
//! model zoo rather than against unit fixtures:
//!
//! * **query equivalence** — for every zoo instance with a winning
//!   strategy, under both extraction engines, the minimized strategy and
//!   the compiled controller answer `decide` / `rank_of` /
//!   `next_take_delay` exactly like the original, on solver-derived corner
//!   points and on random on-/off-grid valuations;
//! * **execution equivalence** — running the synthesized test harness with
//!   the compiled controller (the default path) produces reports — verdict
//!   *and* full timed trace — identical to runs driven by the interpreted
//!   strategy, on conformant plants and seeded mutants under both output
//!   policies;
//! * **compression** — the OTFUR-extracted lep4 avoid-purpose strategy
//!   (the Table 1 safety workload) minimizes to at most half its rule
//!   count, the reduction the compiled-controller pipeline is sized by.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_bench::{lep_instance, model_zoo};
use tiga_models::{coffee_machine, smart_light};
use tiga_solver::{
    minimize_strategy, minimize_strategy_with_report, solve, CompiledController, Controller,
    SolveEngine, SolveOptions, Strategy,
};
use tiga_testing::{
    generate_mutants, MutationConfig, OutputPolicy, SimulatedIut, TestConfig, TestHarness,
};

const SCALE: i64 = 4;

fn engine_options(engine: SolveEngine) -> SolveOptions {
    SolveOptions {
        engine,
        ..SolveOptions::default()
    }
}

/// Query points for one discrete state: the corners of every rule zone
/// (each clock pinned to its unary lower/upper bound constant, the
/// solver-derived skeleton of the region) plus seeded random on-grid and
/// off-grid valuations.
fn sample_points(
    rules: &[tiga_solver::StrategyRule],
    clocks: usize,
    rng: &mut StdRng,
) -> Vec<Vec<i64>> {
    let mut points = vec![vec![0i64; clocks]];
    for rule in rules {
        let mut lower = vec![0i64; clocks];
        let mut upper = vec![0i64; clocks];
        for i in 0..clocks {
            // 0 - x_i <= m encodes x_i >= -m; x_i - 0 <= m encodes x_i <= m.
            let lo = rule.zone.at(0, i + 1).constant().map_or(0, |m| -m) as i64;
            let hi = rule.zone.at(i + 1, 0).constant().map_or(lo + 3, i64::from);
            lower[i] = lo * SCALE;
            upper[i] = hi * SCALE;
        }
        points.push(lower.clone());
        points.push(upper);
        // An off-grid nudge just inside the lower corner.
        for t in lower.iter_mut() {
            *t += 1;
        }
        points.push(lower);
    }
    for round in 0..24 {
        let mut ticks = vec![0i64; clocks];
        for t in ticks.iter_mut() {
            let units = rng.gen_range(0..=16i64);
            *t = if round % 2 == 0 {
                units * SCALE
            } else {
                units * SCALE + rng.gen_range(0..SCALE)
            };
        }
        points.push(ticks);
    }
    points
}

/// Asserts that `candidate` answers every controller query exactly like
/// the interpreted original at one point.
fn assert_same_answers(
    original: &Strategy,
    candidate: &dyn Controller,
    discrete: &tiga_model::DiscreteState,
    ticks: &[i64],
    what: &str,
) {
    assert_eq!(
        candidate.decide(discrete, ticks, SCALE),
        original.decide(discrete, ticks, SCALE),
        "{what}: decide diverged at {ticks:?}"
    );
    assert_eq!(
        candidate.rank_of(discrete, ticks, SCALE),
        original.rank_of(discrete, ticks, SCALE),
        "{what}: rank_of diverged at {ticks:?}"
    );
    assert_eq!(
        candidate.next_take_delay(discrete, ticks, SCALE),
        original.next_take_delay(discrete, ticks, SCALE),
        "{what}: next_take_delay diverged at {ticks:?}"
    );
    // The fused per-step query must be exactly the two-call composition —
    // for the candidate (which may override it) and for the original
    // (which uses the provided default).
    let composed = original.decide(discrete, ticks, SCALE).map(|decision| {
        let wakeup = match decision {
            tiga_solver::StrategyDecision::Wait { .. } => {
                original.next_take_delay(discrete, ticks, SCALE)
            }
            tiga_solver::StrategyDecision::Take(_) => None,
        };
        (decision, wakeup)
    });
    assert_eq!(
        candidate.decide_with_wakeup(discrete, ticks, SCALE),
        composed,
        "{what}: decide_with_wakeup diverged at {ticks:?}"
    );
}

fn assert_strategy_compiles_equivalently(strategy: &Strategy, what: &str, rng: &mut StdRng) {
    let minimized = minimize_strategy(strategy);
    assert!(
        minimized.rule_count() <= strategy.rule_count(),
        "{what}: minimization grew the strategy"
    );
    let compiled = CompiledController::compile(strategy);
    let clocks = strategy.dim() - 1;
    for (discrete, rules) in strategy.iter() {
        for ticks in sample_points(rules, clocks, rng) {
            assert_same_answers(strategy, &minimized, discrete, &ticks, what);
            assert_same_answers(strategy, &compiled, discrete, &ticks, what);
        }
    }
}

#[test]
fn minimized_and_compiled_controllers_answer_identically_across_the_zoo() {
    let mut rng = StdRng::seed_from_u64(0x00C0_4711);
    // The small zoo models under both extraction engines; the detailed
    // lep4 workload is covered (OTFUR-extracted) by the compression pin.
    for instance in model_zoo().iter().filter(|i| i.model != "lep4") {
        for engine in [SolveEngine::Otfur, SolveEngine::Jacobi] {
            let solution = solve(&instance.system, &instance.purpose, &engine_options(engine))
                .expect("zoo instances solve");
            let Some(strategy) = solution.strategy.as_ref() else {
                continue;
            };
            let what = format!("{}/{} ({engine:?})", instance.model, instance.purpose_name);
            assert_strategy_compiles_equivalently(strategy, &what, &mut rng);
        }
    }
}

#[test]
fn executor_runs_are_identical_under_interpreted_and_compiled_control() {
    let config = TestConfig {
        max_steps: 300,
        max_ticks: 4_000,
        ..TestConfig::default()
    };
    let cases = [
        (
            smart_light::product().expect("model builds"),
            smart_light::plant().expect("model builds"),
            smart_light::PURPOSE_BRIGHT,
        ),
        (
            smart_light::product().expect("model builds"),
            smart_light::plant().expect("model builds"),
            smart_light::PURPOSE_NEVER_BRIGHT,
        ),
        (
            coffee_machine::product().expect("model builds"),
            coffee_machine::plant().expect("model builds"),
            coffee_machine::PURPOSE_COFFEE,
        ),
        (
            coffee_machine::product().expect("model builds"),
            coffee_machine::plant().expect("model builds"),
            coffee_machine::PURPOSE_NO_REFUND,
        ),
    ];
    for (product, spec, purpose) in cases {
        let harness = TestHarness::synthesize(product.clone(), spec, purpose, config.clone())
            .unwrap_or_else(|e| panic!("synthesis failed for {purpose}: {e}"));
        let mut implementations = vec![("conformant".to_string(), product.clone())];
        let mutants = generate_mutants(&product, &MutationConfig::default()).expect("mutants");
        implementations.extend(
            mutants
                .into_iter()
                .take(6)
                .map(|m| (m.name.clone(), m.system)),
        );
        for (name, system) in implementations {
            for policy in [OutputPolicy::Eager, OutputPolicy::Lazy] {
                // `execute` drives the compiled controller; the second run
                // re-executes the very same plant under the interpreted
                // strategy.  The full report must match — verdict, timed
                // trace, step count.
                let mut a = SimulatedIut::new(&name, system.clone(), 4, policy);
                let compiled = harness.execute(&mut a).expect("executes");
                let mut b = SimulatedIut::new(&name, system.clone(), 4, policy);
                let interpreted = harness
                    .execute_controlled(&mut b, harness.strategy())
                    .expect("executes");
                assert_eq!(
                    compiled, interpreted,
                    "compiled and interpreted runs differ on {name} ({purpose}, {policy:?})"
                );
            }
        }
    }
}

#[test]
fn lep4_avoid_strategy_minimizes_at_least_two_fold() {
    let mut rng = StdRng::seed_from_u64(0x001E_9404);
    let (system, purpose) = lep_instance(4, 3);
    let solution =
        solve(&system, &purpose, &engine_options(SolveEngine::Otfur)).expect("lep4 tp4 solves");
    let strategy = solution.strategy.as_ref().expect("tp4 is enforceable");
    let (minimized, report) = minimize_strategy_with_report(strategy);
    assert_eq!(report.rules_before, strategy.rule_count());
    assert_eq!(report.rules_after, minimized.rule_count());
    assert!(
        report.rules_after * 2 <= report.rules_before,
        "lep4 tp4 must minimize at least 2x: {} -> {}",
        report.rules_before,
        report.rules_after
    );
    // The compressed strategy still answers exactly like the original.
    assert_strategy_compiles_equivalently(strategy, "lep4/tp4 (Otfur)", &mut rng);
}
