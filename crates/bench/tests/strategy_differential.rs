//! Strategy-level differential oracle: the OTFUR-extracted and the
//! Jacobi-extracted strategies must be *behaviourally* equivalent, not just
//! come from equal winning sets — executing both against the same plants
//! (conformant simulations and seeded mutants, under several output
//! policies) must yield identical verdicts, for reachability and for the
//! new safety purposes alike.
//!
//! This closes the gap left by the winning-set comparisons of
//! `engine_agreement.rs`: two strategies over the same winning sets could
//! still prescribe different moves, and a move difference that changes a
//! verdict on any plant is a strategy-extraction bug in one of the engines.

use tiga_models::{coffee_machine, smart_light};
use tiga_solver::{SolveEngine, SolveOptions};
use tiga_testing::{
    generate_mutants, MutationConfig, OutputPolicy, SimulatedIut, TestConfig, TestHarness, Verdict,
};

fn engine_options(engine: SolveEngine) -> SolveOptions {
    SolveOptions {
        engine,
        ..SolveOptions::default()
    }
}

/// Budgets small enough that non-terminating safety controllers finish in
/// milliseconds while still driving many interaction rounds.
fn config() -> TestConfig {
    TestConfig {
        max_steps: 300,
        max_ticks: 4_000,
        ..TestConfig::default()
    }
}

/// Synthesizes the same purpose with the on-the-fly and the Jacobi engine
/// and executes both strategies against the same implementations.
fn assert_strategies_agree(product: &tiga_model::System, spec: &tiga_model::System, purpose: &str) {
    let otfur = TestHarness::synthesize_with(
        product.clone(),
        spec.clone(),
        purpose,
        config(),
        &engine_options(SolveEngine::Otfur),
    )
    .unwrap_or_else(|e| panic!("otfur synthesis failed for {purpose}: {e}"));
    let jacobi = TestHarness::synthesize_with(
        product.clone(),
        spec.clone(),
        purpose,
        config(),
        &engine_options(SolveEngine::Jacobi),
    )
    .unwrap_or_else(|e| panic!("jacobi synthesis failed for {purpose}: {e}"));

    let policies = [OutputPolicy::Eager, OutputPolicy::Lazy];

    // Conformant implementation: both strategies must pass.
    for policy in policies {
        let mut a = SimulatedIut::new("conformant", product.clone(), 4, policy);
        let mut b = SimulatedIut::new("conformant", product.clone(), 4, policy);
        let va = otfur.execute(&mut a).expect("executes").verdict;
        let vb = jacobi.execute(&mut b).expect("executes").verdict;
        assert_eq!(
            va, vb,
            "strategies diverge on the conformant plant ({purpose}, {policy:?})"
        );
        assert_eq!(
            va,
            Verdict::Pass,
            "a winning strategy must pass on the conformant plant ({purpose}, {policy:?})"
        );
    }

    // Mutated implementations: whatever the verdict is, it must be the
    // same for both extractions.
    let mutants = generate_mutants(product, &MutationConfig::default()).expect("mutants build");
    let mut compared = 0;
    for mutant in mutants.iter().take(10) {
        for policy in policies {
            let mut a = SimulatedIut::new(&mutant.name, mutant.system.clone(), 4, policy);
            let mut b = SimulatedIut::new(&mutant.name, mutant.system.clone(), 4, policy);
            let va = otfur.execute(&mut a).expect("executes").verdict;
            let vb = jacobi.execute(&mut b).expect("executes").verdict;
            assert_eq!(
                va, vb,
                "strategies diverge on mutant {} ({purpose}, {policy:?})",
                mutant.name
            );
            compared += 1;
        }
    }
    assert!(compared >= 10, "too few mutants compared: {compared}");
}

#[test]
fn reachability_strategies_agree_on_smart_light() {
    let product = smart_light::product().expect("model builds");
    let spec = smart_light::plant().expect("model builds");
    assert_strategies_agree(&product, &spec, smart_light::PURPOSE_BRIGHT);
}

#[test]
fn reachability_strategies_agree_on_coffee_machine() {
    let product = coffee_machine::product().expect("model builds");
    let spec = coffee_machine::plant().expect("model builds");
    assert_strategies_agree(&product, &spec, coffee_machine::PURPOSE_COFFEE);
    assert_strategies_agree(&product, &spec, coffee_machine::PURPOSE_REFUND);
}

#[test]
fn safety_strategies_agree_on_coffee_machine() {
    let product = coffee_machine::product().expect("model builds");
    let spec = coffee_machine::plant().expect("model builds");
    assert_strategies_agree(&product, &spec, coffee_machine::PURPOSE_NO_REFUND);
}

#[test]
fn safety_strategies_agree_on_smart_light() {
    let product = smart_light::product().expect("model builds");
    let spec = smart_light::plant().expect("model builds");
    assert_strategies_agree(&product, &spec, smart_light::PURPOSE_NEVER_BRIGHT);
}
