//! Exit-code contract of `solver_matrix --check`:
//!
//! * `0` — matrix matches the baseline;
//! * `1` — matrix drifted (regressions/improvements listed on stderr);
//! * `2` — the baseline itself is unusable (missing, truncated, malformed),
//!   reported *before* the matrix is recomputed and never as a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn solver_matrix(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_solver_matrix"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("solver_matrix runs")
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

#[test]
fn missing_baseline_is_exit_2_with_hint() {
    let out = solver_matrix(&["--smoke", "--check", "does_not_exist.baseline.json"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
    assert!(stderr.contains("hint:"), "{stderr}");
}

#[test]
fn truncated_baseline_is_exit_2_not_a_panic() {
    let path = tmp("truncated.baseline.json");
    std::fs::write(
        &path,
        "[\n  {\"model\": \"coffee_machine\", \"purpose\": \"cof",
    )
    .unwrap();
    let out = solver_matrix(&["--smoke", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed baseline"), "{stderr}");
    // Fail-fast: the matrix must not have been computed first.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("wrote"), "{stdout}");
}

#[test]
fn garbage_baseline_is_exit_2() {
    let path = tmp("garbage.baseline.json");
    std::fs::write(&path, "not json at all {{{ \u{fffd}\u{fffd}").unwrap();
    let out = solver_matrix(&["--smoke", "--check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("malformed baseline"),
        "{out:?}"
    );
}

#[test]
fn check_flag_without_value_is_exit_2() {
    let out = solver_matrix(&["--smoke", "--check"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("expects a value"),
        "{out:?}"
    );
}

#[test]
fn self_check_roundtrip_passes_and_tampering_fails() {
    // A freshly written smoke matrix must gate cleanly against itself...
    let base = tmp("self.baseline.json");
    let out = solver_matrix(&["--smoke", "--out", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = solver_matrix(&[
        "--smoke",
        "--out",
        tmp("self.current.json").to_str().unwrap(),
        "--check",
        base.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // ... and a tampered counter must fail the gate with exit 1.
    let text = std::fs::read_to_string(&base).unwrap();
    let tampered_text = text.replacen("\"discrete_states\": ", "\"discrete_states\": 9", 1);
    assert_ne!(text, tampered_text, "tampering had no effect");
    let tampered = tmp("tampered.baseline.json");
    std::fs::write(&tampered, tampered_text).unwrap();
    let out = solver_matrix(&[
        "--smoke",
        "--out",
        tmp("self.current2.json").to_str().unwrap(),
        "--check",
        tampered.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("baseline check FAILED"),
        "{out:?}"
    );
}
