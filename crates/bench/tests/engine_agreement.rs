//! Differential tests: the three solver engines must agree.
//!
//! The Jacobi fixpoint is the oracle.  The on-the-fly (OTFUR) and worklist
//! engines must return the same `winning_from_initial` on every model-zoo
//! purpose and on seeded Smart Light mutants, and an exhaustive (no early
//! termination) on-the-fly run must compute semantically identical winning
//! federations on every discrete state the oracle explored.

use tiga_bench::{engine_matrix_rows, model_zoo};
use tiga_models::smart_light;
use tiga_solver::{solve, solve_jacobi, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;
use tiga_testing::{generate_mutants, MutationConfig};

fn otfur_options(early_termination: bool) -> SolveOptions {
    SolveOptions {
        engine: SolveEngine::Otfur,
        early_termination,
        ..SolveOptions::default()
    }
}

#[test]
fn engines_agree_across_the_model_zoo() {
    for instance in model_zoo() {
        let rows = engine_matrix_rows(&instance);
        assert_eq!(rows.len(), 3);
        let verdicts: Vec<bool> = rows
            .iter()
            .map(|r| r.solution.winning_from_initial)
            .collect();
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "engines disagree on {}/{}: {:?}",
            instance.model,
            instance.purpose_name,
            rows.iter()
                .map(|r| (r.engine.as_str(), r.solution.winning_from_initial))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn exhaustive_otfur_matches_jacobi_federations_on_zoo() {
    for instance in model_zoo() {
        let jacobi = solve_jacobi(
            &instance.system,
            &instance.purpose,
            &SolveOptions::default(),
        )
        .expect("jacobi solves");
        let otfur = solve(&instance.system, &instance.purpose, &otfur_options(false))
            .expect("otfur solves");
        assert!(!otfur.stats().early_terminated);
        assert_eq!(
            jacobi.graph.len(),
            otfur.graph.len(),
            "exhaustive runs must explore the same discrete states ({}/{})",
            instance.model,
            instance.purpose_name
        );
        for (id, node) in jacobi.graph.nodes().iter().enumerate() {
            let other = otfur
                .graph
                .node_of(&node.discrete)
                .expect("state explored by both");
            // The on-the-fly engine confines winning sets to the explored
            // reach zones; within them it must match the oracle exactly.
            let expected = jacobi.winning[id].intersection(&node.reach);
            assert!(
                expected.set_equals(&otfur.winning[other]),
                "winning sets differ on {}/{} in {}",
                instance.model,
                instance.purpose_name,
                node.discrete.display(&instance.system)
            );
        }
    }
}

#[test]
fn engines_agree_on_seeded_smart_light_mutants() {
    // Mutating the closed product yields perturbed games (shifted guards,
    // widened invariants, swapped/removed outputs, dropped resets); whether
    // each is still winnable is irrelevant — the engines must agree on it.
    let product = smart_light::product().expect("model builds");
    let mutants = generate_mutants(&product, &MutationConfig::default()).expect("mutants build");
    assert!(mutants.len() >= 8, "expected a meaningful mutant pool");
    let purpose_text = smart_light::PURPOSE_BRIGHT;
    let mut checked = 0;
    for mutant in mutants.iter().take(12) {
        let purpose = match TestPurpose::parse(purpose_text, &mutant.system) {
            Ok(p) => p,
            // A mutation may remove the goal location's automaton context;
            // those mutants are not games for this purpose.
            Err(_) => continue,
        };
        let jacobi = solve_jacobi(&mutant.system, &purpose, &SolveOptions::default())
            .expect("jacobi solves mutant");
        let otfur =
            solve(&mutant.system, &purpose, &otfur_options(true)).expect("otfur solves mutant");
        let worklist = solve(
            &mutant.system,
            &purpose,
            &SolveOptions {
                engine: SolveEngine::Worklist,
                ..SolveOptions::default()
            },
        )
        .expect("worklist solves mutant");
        assert_eq!(
            jacobi.winning_from_initial, otfur.winning_from_initial,
            "otfur disagrees with jacobi on mutant {}",
            mutant.name
        );
        assert_eq!(
            jacobi.winning_from_initial, worklist.winning_from_initial,
            "worklist disagrees with jacobi on mutant {}",
            mutant.name
        );
        checked += 1;
    }
    assert!(checked >= 8, "too few mutants were solvable: {checked}");
}

#[test]
fn otfur_explores_strictly_fewer_states_on_a_winning_instance() {
    let mut witnessed = false;
    for instance in model_zoo() {
        let rows = engine_matrix_rows(&instance);
        let otfur = rows.iter().find(|r| r.engine == "otfur").unwrap();
        let jacobi = rows.iter().find(|r| r.engine == "jacobi").unwrap();
        let otfur_winning = otfur.solution.winning_from_initial;
        let reachability = instance.purpose.quantifier == tiga_tctl::PathQuantifier::Reachability;
        if otfur_winning && reachability {
            // Winning *reachability* games are decided as soon as the
            // initial state's winning federation covers the origin; a
            // winning safety game is a greatest fixpoint and can only be
            // certified by draining the waiting list (early termination
            // there fires on *losing* verdicts instead).
            assert!(
                otfur.solution.stats().early_terminated,
                "winning instance {}/{} should be decided early",
                instance.model,
                instance.purpose_name
            );
        }
        if otfur_winning && !reachability {
            assert!(
                !otfur.solution.stats().early_terminated,
                "a winning safety instance {}/{} cannot terminate early",
                instance.model,
                instance.purpose_name
            );
        }
        assert!(
            otfur.solution.stats().discrete_states <= jacobi.solution.stats().discrete_states,
            "on-the-fly must never explore more states than the eager engine"
        );
        if otfur_winning
            && otfur.solution.stats().discrete_states < jacobi.solution.stats().discrete_states
        {
            witnessed = true;
        }
    }
    assert!(
        witnessed,
        "no winning zoo instance with strictly fewer on-the-fly states"
    );
}
