//! Roundtrip and determinism pins for the `tiga-strategy v1` serializer.
//!
//! Three invariants, over the whole model zoo (reachability *and* safety
//! purposes), fuzz-generated games, and the checked-in goldens:
//!
//! * `parse(print(s)) ≡ s` exactly — the text format is a lossless encoding
//!   of the synthesized strategy (zones compared cell-by-cell);
//! * the printer is a fixpoint: `print(parse(text)) == text` byte-for-byte,
//!   which is what lets CI regenerate `examples/strategies/` and `diff -ru`
//!   against the checked-in files;
//! * the serialized strategy is byte-identical for `--jobs ∈ {1, 4}` ×
//!   interning on/off — the strategy (not just the verdict) is part of the
//!   solver's determinism contract, so a cache populated at one parallelism
//!   level answers requests made at another bit-identically.

use std::path::{Path, PathBuf};
use tiga_bench::{fuzz_matrix_instances, model_zoo, ZooInstance};
use tiga_solver::{parse_strategy, print_strategy, solve, SolveEngine, SolveOptions};

fn options(engine: SolveEngine, jobs: usize, interning: bool) -> SolveOptions {
    SolveOptions {
        engine,
        jobs,
        interning,
        ..SolveOptions::default()
    }
}

/// Solves `instance` and returns the serialized strategy file.
fn serialized(instance: &ZooInstance, opts: &SolveOptions) -> String {
    let solution = solve(&instance.system, &instance.purpose, opts).unwrap_or_else(|e| {
        panic!(
            "{}/{} fails to solve: {e}",
            instance.model, instance.purpose_name
        )
    });
    print_strategy(
        instance.system.name(),
        solution.winning_from_initial,
        solution.strategy.as_ref(),
    )
}

/// The full determinism × roundtrip sweep for one instance and engine.
fn check_instance(instance: &ZooInstance, engine: SolveEngine) {
    let label = format!(
        "{}/{} ({})",
        instance.model,
        instance.purpose_name,
        engine.name()
    );
    let baseline = serialized(instance, &options(engine, 1, true));

    // Exact roundtrip and printer fixpoint.
    let parsed = parse_strategy(&baseline).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(parsed.model, instance.system.name(), "{label}");
    let reprinted = print_strategy(&parsed.model, parsed.winning, parsed.strategy.as_ref());
    assert_eq!(reprinted, baseline, "{label}: printer must be a fixpoint");

    // Serialization is invariant under parallelism and interning.
    for jobs in [1usize, 4] {
        for interning in [true, false] {
            let text = serialized(instance, &options(engine, jobs, interning));
            assert_eq!(
                text, baseline,
                "{label}: jobs={jobs} interning={interning} must serialize bit-identically"
            );
        }
    }
}

#[test]
fn zoo_strategies_roundtrip_and_are_jobs_invariant() {
    for instance in model_zoo() {
        // The detailed lep4 instances are the zoo's non-toy workload; their
        // eager-engine sweep is minutes of work, so they run otfur only —
        // the engine that actually feeds `tiga serve` and the goldens.
        let engines: &[SolveEngine] = if instance.model == "lep4" {
            &[SolveEngine::Otfur]
        } else {
            &[SolveEngine::Otfur, SolveEngine::Jacobi]
        };
        for &engine in engines {
            check_instance(&instance, engine);
        }
    }
}

#[test]
fn fuzz_generated_strategies_roundtrip_and_are_jobs_invariant() {
    let instances = fuzz_matrix_instances();
    assert!(!instances.is_empty());
    let mut winning = 0;
    for instance in &instances {
        check_instance(instance, SolveEngine::Otfur);
        let solution = solve(
            &instance.system,
            &instance.purpose,
            &SolveOptions::default(),
        )
        .expect("solves");
        winning += usize::from(solution.winning_from_initial);
    }
    assert!(
        winning > 0,
        "the pinned fuzz set must exercise at least one winning strategy"
    );
}

fn strategies_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/strategies")
}

#[test]
fn checked_in_goldens_are_serializer_fixpoints() {
    let mut count = 0;
    for entry in std::fs::read_dir(strategies_dir()).expect("examples/strategies exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "strategy") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("golden is readable");
        let parsed = parse_strategy(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reprinted = print_strategy(&parsed.model, parsed.winning, parsed.strategy.as_ref());
        assert_eq!(
            reprinted, text,
            "{name}: the checked-in golden must be an exact serializer fixpoint"
        );
        count += 1;
    }
    assert!(
        count >= 8,
        "expected ≥ 8 golden strategy files, found {count}"
    );
}
