//! Differential pins for the content-hash solve cache behind `tiga serve`.
//!
//! The cache's correctness rests on two properties, checked here against
//! fresh solves rather than against itself:
//!
//! * a cache *hit* is bit-identical to the *miss* that populated it — and,
//!   because the solver is deterministic across parallelism levels, also to
//!   a fresh solve at any other `jobs` value.  A serve session may therefore
//!   answer a `--jobs 4` request from an entry computed at `--jobs 1`;
//! * the key contains exactly the semantics-relevant inputs: the canonical
//!   serialized system (with its `control:` objective) and the options that
//!   change the answer (engine, strategy extraction, early termination,
//!   round/state budgets) — and *not* `jobs` or `interning`, which the
//!   determinism contract proves irrelevant.

use tiga_bench::model_zoo;
use tiga_lang::print_system;
use tiga_solver::{print_strategy, solve, CacheEntry, SolveCache, SolveEngine, SolveOptions};

fn entry_for(instance: &tiga_bench::ZooInstance, opts: &SolveOptions) -> CacheEntry {
    let solution = solve(&instance.system, &instance.purpose, opts).expect("solves");
    let controller = solution
        .strategy
        .as_ref()
        .map(tiga_solver::CompiledController::compile);
    CacheEntry {
        winning: solution.winning_from_initial,
        stats: solution.stats().clone(),
        strategy: solution.strategy,
        controller,
    }
}

#[test]
fn cache_hits_are_bit_identical_to_fresh_solves_at_any_jobs() {
    let zoo = model_zoo();
    let mut cache = SolveCache::new();
    // Populate the cache from sequential solves of the small zoo models
    // (skipping the detailed lep4 workload keeps the jobs sweep fast).
    let instances: Vec<_> = zoo.iter().filter(|i| i.model != "lep4").collect();
    for instance in &instances {
        let canonical = print_system(&instance.system, Some(&instance.purpose));
        let key = SolveCache::key(&canonical, &SolveOptions::default());
        assert!(cache.lookup(&key).is_none(), "fresh cache");
        cache.store(key, entry_for(instance, &SolveOptions::default()));
    }
    assert_eq!(cache.stats().misses, instances.len() as u64);

    // Every instance re-solved at other parallelism levels must match the
    // cached entry exactly — verdict, all 14 stats counters, and the
    // serialized strategy text byte-for-byte.
    for instance in &instances {
        let canonical = print_system(&instance.system, Some(&instance.purpose));
        let key = SolveCache::key(&canonical, &SolveOptions::default());
        let cached = cache.lookup(&key).expect("populated above");
        for jobs in [2usize, 4] {
            let opts = SolveOptions {
                jobs,
                ..SolveOptions::default()
            };
            let fresh = entry_for(instance, &opts);
            assert_eq!(
                cached, fresh,
                "{}/{}: jobs={jobs} fresh solve differs from the cached entry",
                instance.model, instance.purpose_name
            );
            let name = instance.system.name();
            assert_eq!(
                print_strategy(name, cached.winning, cached.strategy.as_ref()),
                print_strategy(name, fresh.winning, fresh.strategy.as_ref()),
                "{}/{}: serialized strategies must be byte-identical",
                instance.model,
                instance.purpose_name
            );
        }
    }
    assert_eq!(cache.stats().hits, instances.len() as u64);
    assert_eq!(cache.len(), instances.len());
}

#[test]
fn cache_keys_cover_semantics_and_ignore_parallelism() {
    let zoo = model_zoo();
    let a = &zoo[0];
    let b = zoo
        .iter()
        .find(|i| i.model == a.model && i.purpose_name != a.purpose_name)
        .expect("the zoo has several purposes per model");

    let canonical_a = print_system(&a.system, Some(&a.purpose));
    let canonical_b = print_system(&b.system, Some(&b.purpose));
    assert_ne!(
        canonical_a, canonical_b,
        "the canonical text embeds the control: objective"
    );

    let defaults = SolveOptions::default();
    let base_key = SolveCache::key(&canonical_a, &defaults);

    // jobs and interning are NOT part of the key...
    for jobs in [0usize, 1, 4] {
        for interning in [true, false] {
            let opts = SolveOptions {
                jobs,
                interning,
                ..SolveOptions::default()
            };
            assert_eq!(
                SolveCache::key(&canonical_a, &opts),
                base_key,
                "jobs={jobs} interning={interning} must share the key"
            );
        }
    }

    // ...while every semantics-relevant input is.
    assert_ne!(
        SolveCache::key(&canonical_b, &defaults),
        base_key,
        "objective"
    );
    let variations = [
        SolveOptions {
            engine: SolveEngine::Jacobi,
            ..SolveOptions::default()
        },
        SolveOptions {
            extract_strategy: false,
            ..SolveOptions::default()
        },
        SolveOptions {
            early_termination: false,
            ..SolveOptions::default()
        },
        SolveOptions {
            max_rounds: 7,
            ..SolveOptions::default()
        },
    ];
    for (i, opts) in variations.iter().enumerate() {
        assert_ne!(
            SolveCache::key(&canonical_a, opts),
            base_key,
            "variation {i} must change the key"
        );
    }

    // Fingerprints are stable hex and distinct keys (almost surely) get
    // distinct fingerprints; equal keys always do.
    let fp = SolveCache::fingerprint(&base_key);
    assert_eq!(fp.len(), 16, "64-bit FNV-1a in hex");
    assert_eq!(
        fp,
        SolveCache::fingerprint(&SolveCache::key(&canonical_a, &defaults))
    );
    assert_ne!(
        fp,
        SolveCache::fingerprint(&SolveCache::key(&canonical_b, &defaults))
    );
}
