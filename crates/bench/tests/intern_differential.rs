//! Interning equivalence suite: hash-consed zone interning is a pure
//! representation change.
//!
//! For every engine × benchmark-zoo/fuzz instance × `jobs ∈ {1, 4}`, solving
//! with [`SolveOptions::interning`] on and off must produce **bit-identical**
//! results:
//!
//! * the verdict (`winning_from_initial`),
//! * the full per-node winning federations (structural equality, so even
//!   zone *order* inside each federation must match),
//! * every [`SolverStats`] counter except the five interning/memory counters
//!   themselves (`interned_zones`, `intern_hits`, `dbm_clones`,
//!   `peak_live_zones`, `minimized_bytes_saved`), which describe the
//!   representation and legitimately differ between the two modes,
//! * the extracted strategy decisions, state by state.
//!
//! This holds by construction — [`tiga_dbm::ZoneSet::insert`] mirrors
//! [`tiga_dbm::Federation::insert_subsumed`] verdict-for-verdict and
//! member-for-member — and this suite pins the construction.  A second test
//! pins that interning actually pays off on the largest zoo instances.
//!
//! Mirrors `crates/solver/tests/parallel_determinism.rs`, which pins the
//! same contract for the thread count.

use tiga_bench::{fuzz_matrix_instances, model_zoo, ZooInstance};
use tiga_solver::{solve, GameSolution, SolveEngine, SolveOptions, SolverStats, StrategyRule};

const ENGINES: [SolveEngine; 3] = [
    SolveEngine::Otfur,
    SolveEngine::Jacobi,
    SolveEngine::Worklist,
];

/// The stats with the five representation counters masked out — everything
/// left must be bit-identical with interning on or off.
fn normalized(stats: &SolverStats) -> SolverStats {
    SolverStats {
        interned_zones: 0,
        intern_hits: 0,
        dbm_clones: 0,
        peak_live_zones: 0,
        minimized_bytes_saved: 0,
        ..stats.clone()
    }
}

/// The strategy flattened into graph-node order so two runs can be compared
/// decision by decision (the `Strategy` map itself is hash-ordered).
fn strategy_decisions(solution: &GameSolution) -> Option<Vec<Vec<StrategyRule>>> {
    let strategy = solution.strategy.as_ref()?;
    Some(
        (0..solution.graph.len())
            .map(|node| {
                strategy
                    .rules_for(&solution.graph.node(node).discrete)
                    .map(<[StrategyRule]>::to_vec)
                    .unwrap_or_default()
            })
            .collect(),
    )
}

fn assert_interning_equivalent(instance: &ZooInstance, engine: SolveEngine) {
    for jobs in [1usize, 4] {
        let options = |interning| SolveOptions {
            engine,
            jobs,
            interning,
            ..SolveOptions::default()
        };
        let context = format!(
            "{}/{} [{} jobs={jobs}]",
            instance.model,
            instance.purpose_name,
            engine.name()
        );
        let on = solve(&instance.system, &instance.purpose, &options(true)).expect("interned");
        let off = solve(&instance.system, &instance.purpose, &options(false)).expect("plain");
        assert_eq!(
            on.winning_from_initial, off.winning_from_initial,
            "{context}: verdict differs"
        );
        assert_eq!(
            normalized(on.stats()),
            normalized(off.stats()),
            "{context}: SolverStats differ beyond the interning counters"
        );
        assert_eq!(
            on.winning, off.winning,
            "{context}: winning federations differ"
        );
        assert_eq!(
            strategy_decisions(&on),
            strategy_decisions(&off),
            "{context}: strategy decisions differ"
        );
        // Mode sanity: the interning counters only tick in their own mode.
        assert_eq!(off.stats().interned_zones, 0, "{context}");
        assert_eq!(off.stats().intern_hits, 0, "{context}");
        assert_eq!(off.stats().minimized_bytes_saved, 0, "{context}");
        assert!(on.stats().interned_zones > 0, "{context}: store never used");
    }
}

fn sweep(engine: SolveEngine) {
    for instance in model_zoo() {
        assert_interning_equivalent(&instance, engine);
    }
    for instance in fuzz_matrix_instances() {
        assert_interning_equivalent(&instance, engine);
    }
}

#[test]
fn otfur_is_bit_identical_with_and_without_interning() {
    sweep(SolveEngine::Otfur);
}

#[test]
fn jacobi_is_bit_identical_with_and_without_interning() {
    sweep(SolveEngine::Jacobi);
}

#[test]
fn worklist_is_bit_identical_with_and_without_interning() {
    sweep(SolveEngine::Worklist);
}

/// Interning must actually pay on the largest zoo model: most zone offers
/// re-derive an already-interned zone (hit rate above 50%), and the deep-copy
/// pressure drops at least 2× against the counted pre-interning behavior.
#[test]
fn interning_pays_off_on_lep4() {
    let zoo = model_zoo();
    for purpose in ["tp2", "tp4"] {
        let instance = zoo
            .iter()
            .find(|i| i.model == "lep4" && i.purpose_name == purpose)
            .expect("zoo has lep4");
        for engine in ENGINES {
            let options = |interning| SolveOptions {
                engine,
                interning,
                ..SolveOptions::default()
            };
            let context = format!("lep4/{purpose} [{}]", engine.name());
            let on = solve(&instance.system, &instance.purpose, &options(true)).expect("solves");
            let off = solve(&instance.system, &instance.purpose, &options(false)).expect("solves");
            let stats = on.stats();
            let lookups = stats.intern_hits + stats.interned_zones;
            assert!(
                stats.intern_hits * 2 > lookups,
                "{context}: hit rate {}/{lookups} not above 50%",
                stats.intern_hits
            );
            assert!(
                off.stats().dbm_clones >= 2 * stats.dbm_clones,
                "{context}: clones only dropped from {} to {}",
                off.stats().dbm_clones,
                stats.dbm_clones
            );
            assert!(
                stats.minimized_bytes_saved > 0,
                "{context}: minimal-constraint storage saved nothing"
            );
        }
    }
}
