//! Differential tests for time-bounded objectives (`A<><=T` / `A[]<=T`).
//!
//! The bounded solver is validated against the unbounded one:
//!
//! * for a bound far beyond every clock ceiling, the bounded verdict must
//!   equal the unbounded verdict on every zoo instance (the `#t` clip is
//!   vacuous), across all three engines;
//! * verdicts are monotone in the bound: `Win(T1) ⊆ Win(T2)` for
//!   `T1 <= T2` on reachability, and dually `Win(T2) ⊆ Win(T1)` on
//!   safety — pinned on a ladder of bounds over the zoo;
//! * shrinking the bound below the enforceability threshold flips the
//!   Smart Light `A<> IUT.Bright` instance from winning to losing at
//!   exactly `T = 5` (the bound the zoo's checked-in instance uses).

use tiga_bench::model_zoo;
use tiga_solver::{solve, solve_jacobi, SolveEngine, SolveOptions};
use tiga_tctl::{PathQuantifier, TestPurpose};

/// A bound that no run can exhaust on the zoo models: larger than any
/// clock ceiling a zoo product mentions, so clipping `#t <= HUGE` never
/// removes a reachable valuation.
const HUGE_BOUND: i64 = 10_000;

fn engines() -> [SolveOptions; 3] {
    [
        SolveOptions::default(),
        SolveOptions {
            engine: SolveEngine::Jacobi,
            ..SolveOptions::default()
        },
        SolveOptions {
            engine: SolveEngine::Worklist,
            ..SolveOptions::default()
        },
    ]
}

#[test]
fn a_vacuously_large_bound_matches_the_unbounded_verdict_across_the_zoo() {
    for instance in model_zoo() {
        if instance.purpose.bound.is_some() {
            continue; // already bounded; covered by the monotonicity sweep
        }
        if instance.model == "lep4" {
            // The detailed lep4 workloads take seconds per bounded solve
            // (the `#t` clock multiplies the zone count); the clip
            // semantics are fully exercised by the smaller models.
            continue;
        }
        let bounded = instance.purpose.clone().with_bound(HUGE_BOUND);
        for options in engines() {
            let unbounded =
                solve(&instance.system, &instance.purpose, &options).expect("unbounded solves");
            let clipped = solve(&instance.system, &bounded, &options).expect("bounded solves");
            assert_eq!(
                unbounded.winning_from_initial, clipped.winning_from_initial,
                "{}/{} [{:?}]: a vacuous bound of {HUGE_BOUND} changed the verdict",
                instance.model, instance.purpose_name, options.engine,
            );
            assert_eq!(clipped.bound, Some(HUGE_BOUND));
            assert_eq!(unbounded.bound, None);
        }
    }
}

#[test]
fn verdicts_are_monotone_in_the_bound() {
    // Reachability: winning under a tight deadline implies winning under a
    // looser one.  Safety: dually, safe up to a loose deadline implies
    // safe up to a tighter one.
    let ladder = [0, 1, 2, 4, 5, 8, 30, HUGE_BOUND];
    for instance in model_zoo() {
        if instance.purpose.bound.is_some() || instance.model == "lep4" {
            continue; // lep4: seconds per bounded solve, nothing new semantically
        }
        let verdicts: Vec<bool> = ladder
            .iter()
            .map(|&t| {
                let purpose = instance.purpose.clone().with_bound(t);
                solve_jacobi(&instance.system, &purpose, &SolveOptions::default())
                    .expect("solves")
                    .winning_from_initial
            })
            .collect();
        let monotone = match instance.purpose.quantifier {
            PathQuantifier::Reachability => verdicts.windows(2).all(|w| w[0] <= w[1]),
            PathQuantifier::Safety => verdicts.windows(2).all(|w| w[0] >= w[1]),
        };
        assert!(
            monotone,
            "{}/{}: verdicts not monotone over bounds {ladder:?}: {verdicts:?}",
            instance.model, instance.purpose_name,
        );
    }
}

#[test]
fn shrinking_the_bound_flips_smart_light_bright_to_losing() {
    let zoo = model_zoo();
    let bright = zoo
        .iter()
        .find(|i| i.model == "smart_light" && i.purpose_name == "bright")
        .expect("zoo has smart_light/bright");
    // The unbounded objective is enforceable...
    let unbounded =
        solve(&bright.system, &bright.purpose, &SolveOptions::default()).expect("unbounded solves");
    assert!(unbounded.winning_from_initial);
    for options in engines() {
        // ...and so is the zoo's checked-in bound of 5 (the threshold)...
        let at_threshold = bright.purpose.clone().with_bound(5);
        let won = solve(&bright.system, &at_threshold, &options).expect("solves");
        assert!(
            won.winning_from_initial,
            "[{:?}] A<><=5 IUT.Bright must stay winning",
            options.engine
        );
        // ...but one time unit tighter the controller can no longer force
        // Bright in time, on every engine.
        let too_tight = bright.purpose.clone().with_bound(4);
        let lost = solve(&bright.system, &too_tight, &options).expect("solves");
        assert!(
            !lost.winning_from_initial,
            "[{:?}] A<><=4 IUT.Bright must be losing",
            options.engine
        );
    }
}

#[test]
fn bounded_strategies_range_over_the_augmented_product() {
    // Every bounded zoo instance extracts a strategy one clock wider than
    // its product (the `#t` column), and re-solving is deterministic.
    for instance in model_zoo() {
        let Some(bound) = instance.purpose.bound else {
            continue;
        };
        let first = solve(
            &instance.system,
            &instance.purpose,
            &SolveOptions::default(),
        )
        .expect("solves");
        let second = solve(
            &instance.system,
            &instance.purpose,
            &SolveOptions::default(),
        )
        .expect("solves");
        assert!(first.winning_from_initial, "bounded zoo rows are winning");
        assert_eq!(first.bound, Some(bound));
        let strategy = first.strategy.as_ref().expect("strategy extracted");
        assert_eq!(
            strategy.dim(),
            instance.system.dim() + 1,
            "{}/{}: bounded strategies carry the #t clock",
            instance.model,
            instance.purpose_name
        );
        assert_eq!(
            strategy,
            second.strategy.as_ref().expect("strategy extracted"),
            "{}/{}: bounded synthesis must be deterministic",
            instance.model,
            instance.purpose_name
        );
    }
}

#[test]
fn with_bound_is_usable_on_parsed_purposes() {
    // `with_bound` on an already-parsed purpose must clear the stale
    // source text so caching keys cannot alias a differently-bounded
    // purpose (the canonical display is regenerated instead).
    let zoo = model_zoo();
    let bright = zoo
        .iter()
        .find(|i| i.model == "smart_light" && i.purpose_name == "bright")
        .expect("zoo has smart_light/bright");
    let bounded = bright.purpose.clone().with_bound(7);
    assert_eq!(bounded.bound, Some(7));
    let rendered = bounded.display(&bright.system).to_string();
    assert!(
        rendered.contains("<=7"),
        "canonical rendering must carry the bound: {rendered}"
    );
    let reparsed = TestPurpose::parse(&rendered, &bright.system).expect("canonical form parses");
    assert_eq!(reparsed.bound, Some(7));
    assert_eq!(reparsed.quantifier, bounded.quantifier);
    assert_eq!(reparsed.predicate, bounded.predicate);
}
