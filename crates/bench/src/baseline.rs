//! Solver-stat regression gating against a checked-in baseline.
//!
//! The solver engines are fully deterministic: for a fixed model, purpose
//! and engine, the explored-state / zone counters in [`SolverStats`] are
//! bit-identical across runs and machines (hash maps are used for interning
//! only, never iterated).  That makes the counters — unlike wall time — a
//! sound CI gate: `solver_matrix --smoke --check BENCH_solver.baseline.json`
//! recomputes the smoke matrix and fails on any drift from the checked-in
//! baseline.
//!
//! The gate is a *snapshot*: improvements fail too (with a message telling
//! the author to refresh), so the baseline always documents the current
//! engine behaviour.  Refreshing is one command:
//!
//! ```text
//! cargo run --release -p tiga-bench --bin solver_matrix -- --smoke --out BENCH_solver.baseline.json
//! ```
//!
//! The baseline file is ordinary `solver_matrix` output; timing fields are
//! present but ignored by the comparison.  Parsing is hand-rolled (the
//! offline build has no serde) and tolerant of whitespace, but expects the
//! field set `matrix_rows_to_json` emits.

use crate::MatrixRow;
use std::fmt;
use tiga_solver::SolverStats;

/// The deterministic slice of one matrix row: everything that is compared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineRow {
    /// Model identifier.
    pub model: String,
    /// Purpose identifier.
    pub purpose: String,
    /// Engine name.
    pub engine: String,
    /// Whether the initial state is winning.
    pub winning: bool,
    /// Explored discrete states.
    pub discrete_states: u64,
    /// Explored game-graph edges.
    pub graph_edges: u64,
    /// Fixpoint iterations / reevaluations.
    pub iterations: u64,
    /// Zones in the winning federations.
    pub winning_zones: u64,
    /// Largest federation seen.
    pub peak_federation_size: u64,
    /// Zones in the reach federations.
    pub reach_zones: u64,
    /// Zones subsumed by the passed list.
    pub subsumed_zones: u64,
    /// Reevaluations skipped by losing-subtree pruning.
    pub pruned_evaluations: u64,
    /// Whether the search stopped early.
    pub early_terminated: bool,
}

impl BaselineRow {
    /// Stable row key within a matrix.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/{} [{}]", self.model, self.purpose, self.engine)
    }

    fn from_stats(
        model: &str,
        purpose: &str,
        engine: &str,
        winning: bool,
        s: &SolverStats,
    ) -> Self {
        BaselineRow {
            model: model.to_string(),
            purpose: purpose.to_string(),
            engine: engine.to_string(),
            winning,
            discrete_states: s.discrete_states as u64,
            graph_edges: s.graph_edges as u64,
            iterations: s.iterations as u64,
            winning_zones: s.winning_zones as u64,
            peak_federation_size: s.peak_federation_size as u64,
            reach_zones: s.reach_zones as u64,
            subsumed_zones: s.subsumed_zones as u64,
            pruned_evaluations: s.pruned_evaluations as u64,
            early_terminated: s.early_terminated,
        }
    }
}

impl From<&MatrixRow> for BaselineRow {
    fn from(row: &MatrixRow) -> Self {
        BaselineRow::from_stats(
            &row.model,
            &row.purpose,
            &row.engine,
            row.solution.winning_from_initial,
            row.solution.stats(),
        )
    }
}

/// One detected difference between the current run and the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Row key (`model/purpose [engine]`).
    pub key: String,
    /// Human-readable description of the drift.
    pub detail: String,
    /// `true` when the drift makes the solver *worse* (more work, lost
    /// verdict/termination); `false` for improvements, which still fail the
    /// snapshot but tell the author to refresh instead of to investigate.
    pub regression: bool,
}

impl fmt::Display for BaselineDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.regression {
            "REGRESSION"
        } else {
            "improvement"
        };
        write!(f, "{tag}: {}: {}", self.key, self.detail)
    }
}

/// Compares the current rows against the baseline.  Empty result = gate
/// passes.  Missing or extra rows are regressions (the matrix shape is part
/// of the contract).
#[must_use]
pub fn compare_to_baseline(current: &[BaselineRow], baseline: &[BaselineRow]) -> Vec<BaselineDiff> {
    let mut diffs = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            diffs.push(BaselineDiff {
                key: base.key(),
                detail: "row missing from the current run".to_string(),
                regression: true,
            });
            continue;
        };
        compare_row(cur, base, &mut diffs);
    }
    for cur in current {
        if !baseline.iter().any(|b| b.key() == cur.key()) {
            diffs.push(BaselineDiff {
                key: cur.key(),
                detail: "row not present in the baseline (refresh it)".to_string(),
                regression: true,
            });
        }
    }
    diffs
}

fn compare_row(cur: &BaselineRow, base: &BaselineRow, diffs: &mut Vec<BaselineDiff>) {
    let key = cur.key();
    if cur.winning != base.winning {
        diffs.push(BaselineDiff {
            key: key.clone(),
            detail: format!(
                "verdict flipped: winning {} -> {}",
                base.winning, cur.winning
            ),
            regression: true,
        });
    }
    if cur.early_terminated != base.early_terminated {
        diffs.push(BaselineDiff {
            key: key.clone(),
            detail: format!(
                "early_terminated changed: {} -> {}",
                base.early_terminated, cur.early_terminated
            ),
            // Losing early termination means more work; gaining it is an
            // improvement.
            regression: base.early_terminated,
        });
    }
    // Work counters: higher = worse.
    let work: [(&str, u64, u64); 6] = [
        ("discrete_states", base.discrete_states, cur.discrete_states),
        ("graph_edges", base.graph_edges, cur.graph_edges),
        ("iterations", base.iterations, cur.iterations),
        ("winning_zones", base.winning_zones, cur.winning_zones),
        (
            "peak_federation_size",
            base.peak_federation_size,
            cur.peak_federation_size,
        ),
        ("reach_zones", base.reach_zones, cur.reach_zones),
    ];
    for (name, was, now) in work {
        if was != now {
            diffs.push(BaselineDiff {
                key: key.clone(),
                detail: format!("{name}: {was} -> {now}"),
                regression: now > was,
            });
        }
    }
    // Effectiveness counters: lower = worse (the optimizations fired less).
    let effectiveness: [(&str, u64, u64); 2] = [
        ("subsumed_zones", base.subsumed_zones, cur.subsumed_zones),
        (
            "pruned_evaluations",
            base.pruned_evaluations,
            cur.pruned_evaluations,
        ),
    ];
    for (name, was, now) in effectiveness {
        if was != now {
            diffs.push(BaselineDiff {
                key: key.clone(),
                detail: format!("{name}: {was} -> {now}"),
                regression: now < was,
            });
        }
    }
}

/// Parses `solver_matrix` JSON output back into baseline rows.
///
/// # Errors
///
/// Returns a description of the first malformed object or missing field.
pub fn parse_matrix_json(input: &str) -> Result<Vec<BaselineRow>, String> {
    let mut rows = Vec::new();
    let mut rest = input;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            return Err("unbalanced `{` in baseline JSON".to_string());
        };
        let object = &rest[open + 1..open + close];
        rows.push(parse_object(object).map_err(|e| format!("row {}: {e}", rows.len() + 1))?);
        rest = &rest[open + close + 1..];
    }
    if rows.is_empty() {
        return Err("baseline JSON contains no rows".to_string());
    }
    Ok(rows)
}

fn parse_object(object: &str) -> Result<BaselineRow, String> {
    Ok(BaselineRow {
        model: field_str(object, "model")?,
        purpose: field_str(object, "purpose")?,
        engine: field_str(object, "engine")?,
        winning: field_bool(object, "winning")?,
        discrete_states: field_u64(object, "discrete_states")?,
        graph_edges: field_u64(object, "graph_edges")?,
        iterations: field_u64(object, "iterations")?,
        winning_zones: field_u64(object, "winning_zones")?,
        peak_federation_size: field_u64(object, "peak_federation_size")?,
        reach_zones: field_u64(object, "reach_zones")?,
        subsumed_zones: field_u64(object, "subsumed_zones")?,
        pruned_evaluations: field_u64(object, "pruned_evaluations")?,
        early_terminated: field_bool(object, "early_terminated")?,
    })
}

/// The raw text of `"name": <value>` inside one flat JSON object.
fn field_raw<'a>(object: &'a str, name: &str) -> Result<&'a str, String> {
    let needle = format!("\"{name}\":");
    let at = object
        .find(&needle)
        .ok_or_else(|| format!("missing field `{name}`"))?;
    let value = object[at + needle.len()..].trim_start();
    let end = if let Some(inner) = value.strip_prefix('"') {
        inner
            .find('"')
            .map(|i| i + 2)
            .ok_or_else(|| format!("unterminated string for `{name}`"))?
    } else {
        value.find([',', '\n']).unwrap_or(value.len())
    };
    Ok(value[..end].trim_end())
}

fn field_str(object: &str, name: &str) -> Result<String, String> {
    let raw = field_raw(object, name)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(ToString::to_string)
        .ok_or_else(|| format!("field `{name}` is not a string: `{raw}`"))
}

fn field_u64(object: &str, name: &str) -> Result<u64, String> {
    let raw = field_raw(object, name)?;
    raw.parse()
        .map_err(|_| format!("field `{name}` is not an integer: `{raw}`"))
}

fn field_bool(object: &str, name: &str) -> Result<bool, String> {
    match field_raw(object, name)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("field `{name}` is not a bool: `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BaselineRow {
        BaselineRow {
            model: "coffee_machine".into(),
            purpose: "coffee".into(),
            engine: "otfur".into(),
            winning: true,
            discrete_states: 5,
            graph_edges: 9,
            iterations: 11,
            winning_zones: 5,
            peak_federation_size: 2,
            reach_zones: 6,
            subsumed_zones: 4,
            pruned_evaluations: 3,
            early_terminated: true,
        }
    }

    const SAMPLE_JSON: &str = r#"[
  {"model": "coffee_machine", "purpose": "coffee", "engine": "otfur", "winning": true, "discrete_states": 5, "graph_edges": 9, "iterations": 11, "winning_zones": 5, "peak_federation_size": 2, "reach_zones": 6, "subsumed_zones": 4, "pruned_evaluations": 3, "early_terminated": true, "exploration_us": 12, "fixpoint_us": 34, "total_us": 46}
]
"#;

    #[test]
    fn parses_matrix_json() {
        let rows = parse_matrix_json(SAMPLE_JSON).unwrap();
        assert_eq!(rows, vec![sample()]);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_matrix_json("[]").is_err());
        assert!(parse_matrix_json("{\"model\": \"m\"}")
            .unwrap_err()
            .contains("missing field"));
        let bad = SAMPLE_JSON.replace("\"discrete_states\": 5", "\"discrete_states\": maybe");
        assert!(parse_matrix_json(&bad)
            .unwrap_err()
            .contains("not an integer"));
    }

    #[test]
    fn every_prefix_truncation_is_a_clean_error_or_fewer_rows() {
        // A truncated baseline (half-written file, interrupted download)
        // must never panic: every byte-prefix of a real matrix JSON either
        // fails with a message or parses as complete rows only.
        let full = parse_matrix_json(SAMPLE_JSON).unwrap();
        for cut in 0..SAMPLE_JSON.len() {
            let prefix = &SAMPLE_JSON[..cut];
            let result = std::panic::catch_unwind(|| parse_matrix_json(prefix))
                .unwrap_or_else(|_| panic!("prefix of {cut} bytes PANICKED:\n{prefix}"));
            if let Ok(rows) = result {
                assert!(
                    rows.len() <= full.len(),
                    "prefix of {cut} bytes invented rows"
                );
                assert_eq!(rows, full[..rows.len()].to_vec());
            }
        }
    }

    #[test]
    fn truncation_variants_error_with_messages() {
        // Mid-string cut: the object never closes.
        let err = parse_matrix_json("[\n  {\"model\": \"cof").unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");
        // Closed object with the tail fields missing.
        let err = parse_matrix_json("[{\"model\": \"m\", \"purpose\": \"p\"}]").unwrap_err();
        assert!(err.contains("missing field"), "{err}");
        // Unterminated string value inside a closed object.
        let err = parse_matrix_json("[{\"model\": \"m}]").unwrap_err();
        assert!(!err.is_empty());
        // Stray bytes only.
        assert!(parse_matrix_json("}}}}").is_err());
        assert!(parse_matrix_json("").is_err());
    }

    #[test]
    fn reordered_keys_parse_identically() {
        // Field lookup is by name, so key order inside an object must not
        // matter — a hand-edited or re-serialized baseline stays valid.
        let reordered = r#"[
  {"early_terminated": true, "engine": "otfur", "winning": true, "discrete_states": 5, "model": "coffee_machine", "graph_edges": 9, "purpose": "coffee", "iterations": 11, "peak_federation_size": 2, "winning_zones": 5, "subsumed_zones": 4, "reach_zones": 6, "pruned_evaluations": 3}
]
"#;
        assert_eq!(parse_matrix_json(reordered).unwrap(), vec![sample()]);
    }

    #[test]
    fn identical_rows_pass_the_gate() {
        assert!(compare_to_baseline(&[sample()], &[sample()]).is_empty());
    }

    #[test]
    fn worse_counters_are_regressions() {
        let mut worse = sample();
        worse.discrete_states += 10;
        worse.subsumed_zones -= 1;
        worse.early_terminated = false;
        let diffs = compare_to_baseline(&[worse], &[sample()]);
        assert_eq!(diffs.len(), 3, "{diffs:?}");
        assert!(diffs.iter().all(|d| d.regression), "{diffs:?}");
    }

    #[test]
    fn better_counters_are_flagged_as_improvements() {
        let mut better = sample();
        better.discrete_states -= 1;
        better.pruned_evaluations += 2;
        let diffs = compare_to_baseline(&[better], &[sample()]);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs.iter().all(|d| !d.regression), "{diffs:?}");
    }

    #[test]
    fn verdict_flip_and_shape_changes_are_regressions() {
        let mut flipped = sample();
        flipped.winning = false;
        let diffs = compare_to_baseline(&[flipped], &[sample()]);
        assert!(
            diffs.iter().any(|d| d.detail.contains("verdict")),
            "{diffs:?}"
        );

        let mut extra = sample();
        extra.engine = "jacobi".into();
        let diffs = compare_to_baseline(&[sample(), extra.clone()], &[sample()]);
        assert!(
            diffs.iter().any(|d| d.detail.contains("not present")),
            "{diffs:?}"
        );
        let diffs = compare_to_baseline(&[sample()], &[sample(), extra]);
        assert!(
            diffs.iter().any(|d| d.detail.contains("missing")),
            "{diffs:?}"
        );
    }

    #[test]
    fn real_matrix_output_roundtrips_through_the_parser() {
        let zoo = crate::model_zoo();
        let rows = crate::engine_matrix_rows(&zoo[0]);
        let json = crate::matrix_rows_to_json(&rows);
        let parsed = parse_matrix_json(&json).unwrap();
        let direct: Vec<BaselineRow> = rows.iter().map(BaselineRow::from).collect();
        assert_eq!(parsed, direct);
        assert!(compare_to_baseline(&parsed, &direct).is_empty());
    }
}
