//! # tiga-bench — shared workloads for the benchmark harness
//!
//! The Criterion benches in `benches/` regenerate every table and figure of
//! the paper's evaluation (see `EXPERIMENTS.md` at the workspace root); this
//! small library holds the workload generators they share so that the
//! individual bench files stay focused on measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_dbm::{Bound, Dbm, Federation};
use tiga_model::System;
use tiga_models::{leader_election, smart_light};
use tiga_solver::{solve_reachability, GameSolution, SolveOptions};
use tiga_tctl::TestPurpose;
use tiga_testing::{TestConfig, TestHarness};

/// Number of LEP nodes the benches sweep by default (raise with the
/// `TIGA_LEP_MAX_N` environment variable, up to the paper's 8).
#[must_use]
pub fn lep_max_nodes() -> usize {
    std::env::var("TIGA_LEP_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .clamp(3, 8)
}

/// Builds the LEP product system for `n` nodes together with one of the
/// paper's test purposes (0 = TP1, 1 = TP2, 2 = TP3).
///
/// # Panics
///
/// Panics if the model cannot be built (a bug, not a runtime condition).
#[must_use]
pub fn lep_instance(n: usize, purpose_index: usize) -> (System, TestPurpose) {
    let config = leader_election::LepConfig::new(n);
    let system = leader_election::product(config).expect("LEP model builds");
    let purposes = config.purposes();
    let (_, text) = &purposes[purpose_index];
    let purpose = TestPurpose::parse(text, &system).expect("purpose parses");
    (system, purpose)
}

/// Solves one LEP instance and returns the solution (used by the Table 1
/// bench and the smoke tests).
///
/// # Panics
///
/// Panics if solving fails.
#[must_use]
pub fn solve_lep(n: usize, purpose_index: usize) -> GameSolution {
    let (system, purpose) = lep_instance(n, purpose_index);
    solve_reachability(&system, &purpose, &SolveOptions::default()).expect("solvable")
}

/// Synthesizes the Smart Light test harness for `A<> IUT.Bright`.
///
/// # Panics
///
/// Panics if the model cannot be built or the purpose is not enforceable
/// (both would be reproduction bugs).
#[must_use]
pub fn smart_light_harness() -> TestHarness {
    TestHarness::synthesize(
        smart_light::product().expect("model builds"),
        smart_light::plant().expect("model builds"),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )
    .expect("A<> IUT.Bright is enforceable")
}

/// Generates a pseudo-random non-empty zone of the given dimension with
/// constants below `max_const`.
#[must_use]
pub fn random_zone(rng: &mut StdRng, dim: usize, max_const: i32) -> Dbm {
    loop {
        let mut zone = Dbm::universe(dim);
        let constraints = rng.gen_range(0..2 * dim);
        for _ in 0..constraints {
            let i = rng.gen_range(0..dim);
            let j = rng.gen_range(0..dim);
            if i == j {
                continue;
            }
            let m = rng.gen_range(-max_const..=max_const);
            let bound = if rng.gen_bool(0.5) {
                Bound::le(m)
            } else {
                Bound::lt(m)
            };
            zone.constrain(i, j, bound);
        }
        if !zone.is_empty() {
            return zone;
        }
    }
}

/// Generates a pseudo-random federation with up to `zones` member zones.
#[must_use]
pub fn random_federation(rng: &mut StdRng, dim: usize, zones: usize, max_const: i32) -> Federation {
    let count = rng.gen_range(1..=zones.max(1));
    Federation::from_zones(dim, (0..count).map(|_| random_zone(rng, dim, max_const)))
}

/// A deterministic RNG for the benches.
#[must_use]
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0x2008_D47E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lep_instances_build_for_all_purposes() {
        for idx in 0..3 {
            let (system, purpose) = lep_instance(3, idx);
            assert_eq!(system.automata().len(), 3);
            assert!(!purpose.source.is_empty());
        }
    }

    #[test]
    fn random_zones_are_nonempty_and_in_range() {
        let mut rng = bench_rng();
        for _ in 0..50 {
            let z = random_zone(&mut rng, 4, 10);
            assert!(!z.is_empty());
        }
        let fed = random_federation(&mut rng, 4, 3, 10);
        assert!(!fed.is_empty());
    }

    #[test]
    fn smart_light_harness_synthesizes() {
        let harness = smart_light_harness();
        assert!(harness.strategy().rule_count() > 0);
    }
}
