//! # tiga-bench — shared workloads for the benchmark harness
//!
//! The Criterion benches in `benches/` regenerate every table and figure of
//! the paper's evaluation (see `EXPERIMENTS.md` at the workspace root); this
//! small library holds the workload generators they share so that the
//! individual bench files stay focused on measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;

pub use baseline::{compare_to_baseline, parse_matrix_json, BaselineDiff, BaselineRow};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiga_dbm::{Bound, Dbm, Federation};
use tiga_model::System;
use tiga_models::{coffee_machine, leader_election, smart_light};
use tiga_solver::{solve, solve_jacobi, GameSolution, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;
use tiga_testing::{TestConfig, TestHarness};

/// Number of LEP nodes the benches sweep by default (raise with the
/// `TIGA_LEP_MAX_N` environment variable, up to the paper's 8).
#[must_use]
pub fn lep_max_nodes() -> usize {
    std::env::var("TIGA_LEP_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .clamp(3, 8)
}

/// Builds the LEP product system for `n` nodes together with one of the
/// purposes (0 = TP1, 1 = TP2, 2 = TP3, 3 = TP4), abstract configuration.
///
/// # Panics
///
/// Panics if the model cannot be built (a bug, not a runtime condition).
#[must_use]
pub fn lep_instance(n: usize, purpose_index: usize) -> (System, TestPurpose) {
    lep_instance_for(leader_election::LepConfig::new(n), purpose_index)
}

/// Builds the *detailed* (per-slot message addresses) LEP product for `n`
/// nodes — the configuration whose state space actually grows with `n`
/// (Table 1 trend) and therefore the one the scaling rows use.
///
/// # Panics
///
/// Panics if the model cannot be built.
#[must_use]
pub fn lep_detailed_instance(n: usize, purpose_index: usize) -> (System, TestPurpose) {
    lep_instance_for(leader_election::LepConfig::detailed(n), purpose_index)
}

fn lep_instance_for(
    config: leader_election::LepConfig,
    purpose_index: usize,
) -> (System, TestPurpose) {
    let system = leader_election::product(config).expect("LEP model builds");
    let purposes = config.purposes();
    let (_, text) = &purposes[purpose_index];
    let purpose = TestPurpose::parse(text, &system).expect("purpose parses");
    (system, purpose)
}

/// The LEP-N scaling family: detailed instances for every `n` from 4 up to
/// [`lep_max_nodes`], each with the TP2 reach purpose and the TP4 avoid
/// purpose.  This is the sweep the thread-scaling bench measures; it is
/// intentionally *not* part of [`model_zoo`], whose contents are pinned by
/// checked-in `.tg` files and the bench baseline and must therefore not
/// depend on `TIGA_LEP_MAX_N`.
///
/// # Panics
///
/// Panics if a model cannot be built.
#[must_use]
pub fn lep_scaling_instances() -> Vec<ZooInstance> {
    let mut out = Vec::new();
    for n in 4..=lep_max_nodes() {
        for idx in [1, 3] {
            let (system, purpose) = lep_detailed_instance(n, idx);
            out.push(ZooInstance {
                model: format!("lep{n}"),
                purpose_name: format!("tp{}", idx + 1),
                system,
                purpose,
            });
        }
    }
    out
}

/// Solves one LEP instance and returns the solution (used by the Table 1
/// bench and the smoke tests).
///
/// # Panics
///
/// Panics if solving fails.
#[must_use]
pub fn solve_lep(n: usize, purpose_index: usize) -> GameSolution {
    let (system, purpose) = lep_instance(n, purpose_index);
    solve_jacobi(&system, &purpose, &SolveOptions::default()).expect("solvable")
}

/// Synthesizes the Smart Light test harness for `A<> IUT.Bright`.
///
/// # Panics
///
/// Panics if the model cannot be built or the purpose is not enforceable
/// (both would be reproduction bugs).
#[must_use]
pub fn smart_light_harness() -> TestHarness {
    TestHarness::synthesize(
        smart_light::product().expect("model builds"),
        smart_light::plant().expect("model builds"),
        smart_light::PURPOSE_BRIGHT,
        TestConfig::default(),
    )
    .expect("A<> IUT.Bright is enforceable")
}

/// One entry of the benchmark model zoo: a named closed game together with a
/// test purpose.
pub struct ZooInstance {
    /// Model identifier (stable across runs, used in reports).
    pub model: String,
    /// Purpose identifier.
    pub purpose_name: String,
    /// The closed product system.
    pub system: System,
    /// The parsed purpose.
    pub purpose: TestPurpose,
}

/// The model zoo the engine-ablation benchmarks and the differential tests
/// sweep: every case-study product with each of its test purposes, smallest
/// first.
///
/// # Panics
///
/// Panics if a model cannot be built or a purpose does not parse (both would
/// be reproduction bugs).
#[must_use]
pub fn model_zoo() -> Vec<ZooInstance> {
    let mut zoo = Vec::new();
    let coffee = coffee_machine::product().expect("model builds");
    for (name, text) in [
        ("coffee", coffee_machine::PURPOSE_COFFEE),
        ("refund", coffee_machine::PURPOSE_REFUND),
        ("no_refund", coffee_machine::PURPOSE_NO_REFUND),
    ] {
        zoo.push(ZooInstance {
            model: "coffee_machine".to_string(),
            purpose_name: name.to_string(),
            system: coffee.clone(),
            purpose: TestPurpose::parse(text, &coffee).expect("purpose parses"),
        });
    }
    let smart = smart_light::product().expect("model builds");
    for (name, text) in [
        ("bright", smart_light::PURPOSE_BRIGHT),
        ("dim", smart_light::PURPOSE_DIM),
        (
            "bright_and_ready",
            smart_light::PURPOSE_BRIGHT_AND_USER_READY,
        ),
        ("never_bright", smart_light::PURPOSE_NEVER_BRIGHT),
    ] {
        zoo.push(ZooInstance {
            model: "smart_light".to_string(),
            purpose_name: name.to_string(),
            system: smart.clone(),
            purpose: TestPurpose::parse(text, &smart).expect("purpose parses"),
        });
    }
    // Time-bounded instances: one bounded reachability (`A<><=T`) and one
    // bounded safety (`A[]<=T`), both *winning*, so the serve-batch CI gate
    // (which requires every zoo verdict to be winning) stays green.  The
    // smart-light bound sits exactly on the enforceability threshold
    // (`A<><=4 IUT.Bright` is losing, `<=5` is winning) — the differential
    // suite exercises the flip just below it.
    zoo.push(ZooInstance {
        model: "smart_light".to_string(),
        purpose_name: "bounded".to_string(),
        system: smart.clone(),
        purpose: TestPurpose::parse("control: A<><=5 IUT.Bright", &smart).expect("purpose parses"),
    });
    zoo.push(ZooInstance {
        model: "coffee_machine".to_string(),
        purpose_name: "bounded".to_string(),
        system: coffee.clone(),
        purpose: TestPurpose::parse("control: A[]<=30 not Machine.Refunded", &coffee)
            .expect("purpose parses"),
    });
    for idx in 0..4 {
        let (system, purpose) = lep_instance(3, idx);
        zoo.push(ZooInstance {
            model: "lep3".to_string(),
            purpose_name: format!("tp{}", idx + 1),
            system,
            purpose,
        });
    }
    // The first LEP-N scaling instance (detailed, so the state space is in
    // the thousands rather than the hundreds) is always in the zoo — one
    // reach purpose and one avoid purpose — so the baseline gate pins a
    // non-toy workload.  The larger N are available through
    // [`lep_scaling_instances`].
    for idx in [1, 3] {
        let (system, purpose) = lep_detailed_instance(4, idx);
        zoo.push(ZooInstance {
            model: "lep4".to_string(),
            purpose_name: format!("tp{}", idx + 1),
            system,
            purpose,
        });
    }
    zoo
}

/// Master seed of the fixed fuzz seed set whose engine counters the bench
/// baseline pins (see [`fuzz_matrix_instances`]).  Changing it invalidates
/// `BENCH_solver.baseline.json`.
pub const FUZZ_MATRIX_SEED: u64 = 0x2008_5EED;

/// Number of generated games in the pinned fuzz seed set.
pub const FUZZ_MATRIX_COUNT: usize = 4;

/// A fixed set of *generated* timed games for the baseline gate, drawn
/// from the SplitMix64 stream of [`FUZZ_MATRIX_SEED`] — exactly the
/// per-case seed derivation `tiga fuzz` uses, so a baseline drift on these
/// rows localizes to the solver, not the generator.  To make the pinned
/// counters meaningful the selection skips trivial games (fewer than four
/// discrete states under the Jacobi oracle) and reserves one slot for a
/// safety (`A[]`) objective, so the dual fixpoint's counters are gated on
/// a generated system too.  Deterministic across runs and machines; the
/// engine counters (explored/subsumed/pruned) of every row are pinned by
/// `solver_matrix --check`, extending the gate beyond the hand-written zoo.
///
/// # Panics
///
/// Panics if the stream cannot supply enough solvable, non-trivial specs
/// (a generator regression, not a runtime condition).
#[must_use]
pub fn fuzz_matrix_instances() -> Vec<ZooInstance> {
    let config = tiga_gen::GenConfig::default();
    let budget = SolveOptions {
        engine: SolveEngine::Jacobi,
        explore: tiga_solver::ExploreOptions {
            max_states: 4_000,
            ..tiga_solver::ExploreOptions::default()
        },
        ..SolveOptions::default()
    };
    let safety_slots = 1;
    let reach_slots = FUZZ_MATRIX_COUNT - safety_slots;
    let mut reach = Vec::new();
    let mut safety = Vec::new();
    for case_seed in tiga_gen::derive_case_seeds(FUZZ_MATRIX_SEED, 512) {
        if reach.len() == reach_slots && safety.len() == safety_slots {
            break;
        }
        let spec = tiga_gen::generate_spec(case_seed, &config);
        let Ok((system, purpose)) = spec.build() else {
            continue;
        };
        let Ok(solution) = solve(&system, &purpose, &budget) else {
            continue;
        };
        if solution.stats().discrete_states < 4 {
            continue;
        }
        let (bucket, slots, name) = match purpose.quantifier {
            tiga_tctl::PathQuantifier::Reachability => (&mut reach, reach_slots, "reach"),
            tiga_tctl::PathQuantifier::Safety => (&mut safety, safety_slots, "safety"),
        };
        if bucket.len() < slots {
            bucket.push(ZooInstance {
                model: format!("fuzz_{case_seed:#018x}"),
                purpose_name: name.to_string(),
                system,
                purpose,
            });
        }
    }
    let mut out = reach;
    out.append(&mut safety);
    assert_eq!(
        out.len(),
        FUZZ_MATRIX_COUNT,
        "the fixed fuzz seed stream must supply {FUZZ_MATRIX_COUNT} solvable non-trivial games"
    );
    out
}

/// One row of the engine × model ablation matrix.
pub struct MatrixRow {
    /// Model identifier.
    pub model: String,
    /// Purpose identifier.
    pub purpose: String,
    /// Engine name (`otfur`, `jacobi`, `worklist`).
    pub engine: String,
    /// The solved game (verdict, statistics and timing inside).
    pub solution: GameSolution,
}

/// Solves one zoo instance with every engine and returns the rows.
///
/// # Panics
///
/// Panics if solving fails (all zoo instances are solvable by construction).
#[must_use]
pub fn engine_matrix_rows(instance: &ZooInstance) -> Vec<MatrixRow> {
    [
        SolveEngine::Otfur,
        SolveEngine::Jacobi,
        SolveEngine::Worklist,
    ]
    .into_iter()
    .map(|engine| {
        let options = SolveOptions {
            engine,
            ..SolveOptions::default()
        };
        let solution = solve(&instance.system, &instance.purpose, &options).expect("solves");
        MatrixRow {
            model: instance.model.clone(),
            purpose: instance.purpose_name.clone(),
            engine: engine.name().to_string(),
            solution,
        }
    })
    .collect()
}

/// Renders matrix rows as a machine-readable JSON array (hand-rolled: the
/// offline build environment has no serde).
#[must_use]
pub fn matrix_rows_to_json(rows: &[MatrixRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let stats = row.solution.stats();
        let timed = &row.solution.timed;
        out.push_str(&format!(
            concat!(
                "  {{\"model\": \"{}\", \"purpose\": \"{}\", \"engine\": \"{}\", ",
                "\"winning\": {}, \"discrete_states\": {}, \"graph_edges\": {}, ",
                "\"iterations\": {}, \"winning_zones\": {}, \"peak_federation_size\": {}, ",
                "\"reach_zones\": {}, \"subsumed_zones\": {}, \"pruned_evaluations\": {}, ",
                "\"early_terminated\": {}, \"interned_zones\": {}, \"intern_hits\": {}, ",
                "\"dbm_clones\": {}, \"peak_live_zones\": {}, \"minimized_bytes_saved\": {}, ",
                "\"exploration_us\": {}, \"fixpoint_us\": {}, ",
                "\"total_us\": {}}}"
            ),
            row.model,
            row.purpose,
            row.engine,
            row.solution.winning_from_initial,
            stats.discrete_states,
            stats.graph_edges,
            stats.iterations,
            stats.winning_zones,
            stats.peak_federation_size,
            stats.reach_zones,
            stats.subsumed_zones,
            stats.pruned_evaluations,
            stats.early_terminated,
            stats.interned_zones,
            stats.intern_hits,
            stats.dbm_clones,
            stats.peak_live_zones,
            stats.minimized_bytes_saved,
            timed.exploration_time.as_micros(),
            timed.fixpoint_time.as_micros(),
            timed.total_time().as_micros(),
        ));
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Generates a pseudo-random non-empty zone of the given dimension with
/// constants below `max_const`.
#[must_use]
pub fn random_zone(rng: &mut StdRng, dim: usize, max_const: i32) -> Dbm {
    loop {
        let mut zone = Dbm::universe(dim);
        let constraints = rng.gen_range(0..2 * dim);
        for _ in 0..constraints {
            let i = rng.gen_range(0..dim);
            let j = rng.gen_range(0..dim);
            if i == j {
                continue;
            }
            let m = rng.gen_range(-max_const..=max_const);
            let bound = if rng.gen_bool(0.5) {
                Bound::le(m)
            } else {
                Bound::lt(m)
            };
            zone.constrain(i, j, bound);
        }
        if !zone.is_empty() {
            return zone;
        }
    }
}

/// Generates a pseudo-random federation with up to `zones` member zones.
#[must_use]
pub fn random_federation(rng: &mut StdRng, dim: usize, zones: usize, max_const: i32) -> Federation {
    let count = rng.gen_range(1..=zones.max(1));
    Federation::from_zones(dim, (0..count).map(|_| random_zone(rng, dim, max_const)))
}

/// A deterministic RNG for the benches.
#[must_use]
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0x2008_D47E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lep_instances_build_for_all_purposes() {
        for idx in 0..4 {
            let (system, purpose) = lep_instance(3, idx);
            assert_eq!(system.automata().len(), 3);
            assert!(!purpose.source.is_empty());
        }
    }

    #[test]
    fn zoo_has_the_lep4_scaling_rows() {
        let zoo = model_zoo();
        let lep4: Vec<_> = zoo.iter().filter(|i| i.model == "lep4").collect();
        assert_eq!(
            lep4.len(),
            2,
            "lep4 must contribute a reach and an avoid row"
        );
        assert!(lep4
            .iter()
            .any(|i| { i.purpose.quantifier == tiga_tctl::PathQuantifier::Reachability }));
        assert!(lep4
            .iter()
            .any(|i| { i.purpose.quantifier == tiga_tctl::PathQuantifier::Safety }));
    }

    #[test]
    fn zoo_has_one_bounded_instance_of_each_quantifier() {
        let zoo = model_zoo();
        let bounded: Vec<_> = zoo.iter().filter(|i| i.purpose.bound.is_some()).collect();
        assert_eq!(bounded.len(), 2, "one bounded reach + one bounded safety");
        assert!(bounded
            .iter()
            .any(|i| i.purpose.quantifier == tiga_tctl::PathQuantifier::Reachability));
        assert!(bounded
            .iter()
            .any(|i| i.purpose.quantifier == tiga_tctl::PathQuantifier::Safety));
        assert!(bounded.iter().all(|i| i.purpose_name == "bounded"));
    }

    #[test]
    fn random_zones_are_nonempty_and_in_range() {
        let mut rng = bench_rng();
        for _ in 0..50 {
            let z = random_zone(&mut rng, 4, 10);
            assert!(!z.is_empty());
        }
        let fed = random_federation(&mut rng, 4, 3, 10);
        assert!(!fed.is_empty());
    }

    #[test]
    fn smart_light_harness_synthesizes() {
        let harness = smart_light_harness();
        assert!(harness.strategy().rule_count() > 0);
    }
}
