//! Emits the engine × model ablation matrix as machine-readable JSON, and
//! optionally gates it against a checked-in baseline.
//!
//! Runs every solver engine (`otfur`, `jacobi`, `worklist`) over the
//! benchmark model zoo *and* the fixed fuzz seed set
//! ([`tiga_bench::fuzz_matrix_instances`]) and writes one JSON object per
//! (model, purpose, engine) combination to `BENCH_solver.json` (override
//! with `--out PATH`).
//!
//! `--smoke` restricts the zoo sweep to the smallest model, every safety
//! purpose, every time-bounded purpose and the LEP-N scaling family, so CI
//! can exercise the full pipeline — including the safety dual fixpoint,
//! the `#t`-augmented bounded attractor and a non-toy workload — in
//! seconds and archive the artifact; the fuzz seed set is always
//! included, pinning engine counters on *generated* systems too.
//!
//! `--check PATH` compares the run's *deterministic* counters (explored
//! states, zone counts, verdicts — never wall time) against a previously
//! written matrix and exits non-zero on any drift; CI runs
//!
//! ```text
//! solver_matrix --smoke --check BENCH_solver.baseline.json
//! ```
//!
//! Refresh the baseline after an intentional solver change with:
//!
//! ```text
//! cargo run --release -p tiga-bench --bin solver_matrix -- --smoke --out BENCH_solver.baseline.json
//! ```

use tiga_bench::{
    compare_to_baseline, engine_matrix_rows, fuzz_matrix_instances, matrix_rows_to_json, model_zoo,
    parse_matrix_json, BaselineRow,
};
use tiga_tctl::PathQuantifier;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // A flag given without its value is a hard error: silently ignoring a
    // truncated `--check` would disable the regression gate with exit 0.
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("error: `{flag}` expects a value");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let check_path = flag_value("--check");
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_solver.json".to_string());

    // Load and parse the baseline *before* the matrix run: a missing or
    // malformed baseline is a usage error (exit 2) and must be reported
    // immediately, never as a panic — the file is hand-refreshed and CI
    // feeds whatever is checked in.
    let baseline = check_path.map(|baseline_path| {
        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline `{baseline_path}`: {e}\n\
                     hint: create it with `cargo run --release -p tiga-bench --bin solver_matrix \
                     -- --smoke --out {baseline_path}`"
                );
                std::process::exit(2);
            }
        };
        match parse_matrix_json(&baseline_text) {
            Ok(rows) => (baseline_path, rows),
            Err(e) => {
                eprintln!("error: malformed baseline `{baseline_path}`: {e}");
                std::process::exit(2);
            }
        }
    });

    let zoo = model_zoo();
    let mut instances = if smoke {
        // The zoo is ordered smallest-first; the smoke run keeps the first
        // model's purposes, every safety purpose (so the dual fixpoint is
        // gated too), every time-bounded purpose (so the `#t`-augmented
        // attractor's counters are pinned) and the whole LEP family (so
        // the baseline pins the scaling rows, lep4 included).
        let first = zoo[0].model.clone();
        zoo.into_iter()
            .filter(|z| {
                z.model == first
                    || z.model.starts_with("lep")
                    || z.purpose.quantifier == PathQuantifier::Safety
                    || z.purpose.bound.is_some()
            })
            .collect::<Vec<_>>()
    } else {
        zoo
    };
    // The fixed fuzz seed set rides along in both modes: engine counters on
    // generated systems are part of the baseline contract.
    instances.extend(fuzz_matrix_instances());

    let mut rows = Vec::new();
    for instance in &instances {
        for row in engine_matrix_rows(instance) {
            println!(
                "{}/{} [{}]: winning={} states={} iterations={} subsumed={} pruned={} early={} total={}us",
                row.model,
                row.purpose,
                row.engine,
                row.solution.winning_from_initial,
                row.solution.stats().discrete_states,
                row.solution.stats().iterations,
                row.solution.stats().subsumed_zones,
                row.solution.stats().pruned_evaluations,
                row.solution.stats().early_terminated,
                row.solution.timed.total_time().as_micros(),
            );
            rows.push(row);
        }
    }

    let json = matrix_rows_to_json(&rows);
    std::fs::write(&out_path, json).expect("write BENCH_solver.json");
    println!("wrote {} rows to {out_path}", rows.len());

    if let Some((baseline_path, baseline)) = baseline {
        let current: Vec<BaselineRow> = rows.iter().map(BaselineRow::from).collect();
        let diffs = compare_to_baseline(&current, &baseline);
        if diffs.is_empty() {
            println!(
                "baseline check: {} rows match {baseline_path}",
                current.len()
            );
        } else {
            let regressions = diffs.iter().filter(|d| d.regression).count();
            eprintln!(
                "baseline check FAILED against {baseline_path} ({} diffs, {regressions} regressions):",
                diffs.len()
            );
            for diff in &diffs {
                eprintln!("  {diff}");
            }
            eprintln!(
                "refresh after an intentional solver change with:\n  cargo run --release -p \
                 tiga-bench --bin solver_matrix -- --smoke --out {baseline_path}"
            );
            std::process::exit(1);
        }
    }
}
