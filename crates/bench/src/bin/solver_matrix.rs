//! Emits the engine × model ablation matrix as machine-readable JSON.
//!
//! Runs every solver engine (`otfur`, `jacobi`, `worklist`) over the
//! benchmark model zoo and writes one JSON object per (model, purpose,
//! engine) combination to `BENCH_solver.json` (override with `--out PATH`).
//!
//! `--smoke` restricts the sweep to the smallest model so CI can exercise
//! the full pipeline in seconds and archive the artifact.

use tiga_bench::{engine_matrix_rows, matrix_rows_to_json, model_zoo};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_solver.json".to_string(), Clone::clone);

    let zoo = model_zoo();
    let instances = if smoke {
        // The zoo is ordered smallest-first; the smoke run keeps only the
        // first model's purposes.
        let first = zoo[0].model.clone();
        zoo.into_iter()
            .filter(|z| z.model == first)
            .collect::<Vec<_>>()
    } else {
        zoo
    };

    let mut rows = Vec::new();
    for instance in &instances {
        for row in engine_matrix_rows(instance) {
            println!(
                "{}/{} [{}]: winning={} states={} iterations={} subsumed={} pruned={} early={} total={}us",
                row.model,
                row.purpose,
                row.engine,
                row.solution.winning_from_initial,
                row.solution.stats().discrete_states,
                row.solution.stats().iterations,
                row.solution.stats().subsumed_zones,
                row.solution.stats().pruned_evaluations,
                row.solution.stats().early_terminated,
                row.solution.timed.total_time().as_micros(),
            );
            rows.push(row);
        }
    }

    let json = matrix_rows_to_json(&rows);
    std::fs::write(&out_path, json).expect("write BENCH_solver.json");
    println!("wrote {} rows to {out_path}", rows.len());
}
