//! # tiga-lang — the `.tg` textual modeling language for timed games
//!
//! Until this crate existed, every timed-game model had to be hand-written
//! in Rust against [`tiga_model`]'s builders — scenario diversity required
//! recompiling the workspace.  `.tg` is a small declarative surface syntax
//! for networks of timed I/O game automata: clocks, bounded discrete
//! variables, channels with controllability (`input` / `output` /
//! `internal`), locations with invariants and urgency, edges with clock
//! guards, data guards, resets and updates, and a `control:` objective line
//! in the `tiga-tctl` TCTL subset.
//!
//! The implementation is the classic three-stage pipeline:
//!
//! 1. [`tokenize`] — a lexer producing tokens with byte [`Span`]s;
//! 2. [`parse_file`] — a recursive-descent parser producing an unresolved
//!    [`FileAst`];
//! 3. [`lower_file`] — name resolution and lowering onto
//!    [`tiga_model::SystemBuilder`], yielding a ready-to-solve [`TgModel`].
//!
//! [`parse_model`] runs all three.  Every error is a [`LangError`] carrying
//! the span of the offending source; [`LangError::render`] produces a
//! rustc-style report with a caret underline.
//!
//! The inverse direction is [`print_system`]: any in-memory
//! [`tiga_model::System`] pretty-prints back to `.tg`, with the round-trip
//! guarantee `parse(print(sys)) ≡ sys` (structural equality), pinned across
//! the model zoo and seeded mutants by `tests/roundtrip.rs`.
//!
//! # Example
//!
//! ```
//! use tiga_lang::{parse_model, print_system};
//!
//! let source = r#"
//! system "demo"
//! clock x
//! input kick
//! output reply
//!
//! automaton Plant {
//!     init location Idle
//!     location Busy { inv x <= 3 }
//!     location Done
//!     edge Idle -> Busy on kick? { reset x }
//!     edge Busy -> Done on reply! { guard x >= 1 }
//! }
//!
//! automaton User {
//!     init location U
//!     edge U -> U on kick!
//!     edge U -> U on reply?
//! }
//!
//! control: A<> Plant.Done
//! "#;
//!
//! let model = parse_model(source).expect("parses");
//! assert_eq!(model.system.name(), "demo");
//! assert!(model.purpose.is_some());
//!
//! // Round trip: printing and re-parsing reproduces the same system.
//! let printed = print_system(&model.system, model.purpose.as_ref());
//! let again = parse_model(&printed).expect("printer output parses");
//! assert_eq!(again.system, model.system);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod printer;

pub use ast::FileAst;
pub use error::{LangError, LangErrorKind, Span};
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::{lower_file, TgModel, DEFAULT_SYSTEM_NAME, MAX_ARRAY_SIZE};
pub use parser::{is_bare_name, parse_file, KEYWORDS};
pub use printer::{
    constraint_to_tg, control_line, control_line_for, expr_to_tg, print_system, quoted,
};

/// Parses and lowers `.tg` source in one step.
///
/// # Errors
///
/// Returns the first span-carrying [`LangError`] from any stage (lexing,
/// parsing, lowering, or the `control:` objective).
pub fn parse_model(source: &str) -> Result<TgModel, LangError> {
    lower_file(&parse_file(source)?)
}
