//! Pretty-printer: any in-memory [`System`] back to `.tg` source.
//!
//! The printer is the inverse of the parse→lower pipeline and maintains the
//! round-trip invariant pinned by `tests/roundtrip.rs`:
//!
//! ```text
//! parse(print(sys)) ≡ sys      (structural equality on `System`)
//! ```
//!
//! The key choices that make the inverse exact:
//!
//! * declarations are emitted in declaration order, so index-based
//!   identifiers are reassigned identically on re-parse;
//! * expressions are fully parenthesized, so re-parsing rebuilds the same
//!   tree shape without consulting precedence;
//! * negative constants print as literals (`-7`) while [`Expr::Neg`] prints
//!   as `-(e)` — the parser folds a `-` directly before a number into a
//!   negative literal and treats everything else as negation;
//! * names that collide with `.tg` keywords or are not identifiers are
//!   quoted, which the lexer maps back to the same string.

use crate::parser::is_bare_name;
use std::fmt::Write as _;
use tiga_model::{
    Assignment, Automaton, ChannelKind, ClockConstraint, ClockReset, Edge, Expr, Sync, System,
    VarTable,
};
use tiga_tctl::TestPurpose;

/// Renders a system (and optional objective) as `.tg` source.
///
/// The output parses back (see [`crate::parse_model`]) to a system that is
/// structurally equal to `system`, with the objective preserved verbatim.
#[must_use]
pub fn print_system(system: &System, purpose: Option<&TestPurpose>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {}", quoted(system.name()));

    if !system.clocks().is_empty() {
        out.push('\n');
        for clock in system.clocks() {
            let _ = writeln!(out, "clock {}", quoted(clock.name()));
        }
    }
    if !system.channels().is_empty() {
        out.push('\n');
        for channel in system.channels() {
            let keyword = match channel.kind() {
                ChannelKind::Input => "input",
                ChannelKind::Output => "output",
                ChannelKind::Internal => "internal",
            };
            let _ = writeln!(out, "{keyword} {}", quoted(channel.name()));
        }
    }
    if !system.vars().is_empty() {
        out.push('\n');
        for decl in system.vars() {
            if !decl.is_array() && decl.lower() == decl.upper() && decl.initial() == decl.lower() {
                let _ = writeln!(out, "const {} = {}", quoted(decl.name()), decl.initial());
            } else if decl.is_array() {
                let _ = writeln!(
                    out,
                    "var {}[{}]: int[{}, {}] = {}",
                    quoted(decl.name()),
                    decl.size(),
                    decl.lower(),
                    decl.upper(),
                    decl.initial()
                );
            } else {
                let _ = writeln!(
                    out,
                    "var {}: int[{}, {}] = {}",
                    quoted(decl.name()),
                    decl.lower(),
                    decl.upper(),
                    decl.initial()
                );
            }
        }
    }

    for automaton in system.automata() {
        out.push('\n');
        print_automaton(&mut out, automaton, system);
    }

    if let Some(purpose) = purpose {
        out.push('\n');
        let _ = writeln!(out, "{}", control_line_for(purpose, system));
    }
    out
}

/// The `control:` line for an objective: its original source when it was
/// parsed from text.  Programmatic purposes (empty `source`) render through
/// the structural `Display` (quantifier, bound and predicate with index-based
/// names); use [`control_line_for`] when the line must re-parse against a
/// specific system.
#[must_use]
pub fn control_line(purpose: &TestPurpose) -> String {
    if purpose.source.is_empty() {
        purpose.to_string()
    } else {
        purpose.source.clone()
    }
}

/// The `control:` line for an objective, reconstructed from the resolved
/// predicate (and time bound, if any) when the purpose was built
/// programmatically (no source text), so the printed file re-parses.
#[must_use]
pub fn control_line_for(purpose: &TestPurpose, system: &System) -> String {
    if purpose.source.is_empty() {
        purpose.display(system).to_string()
    } else {
        purpose.source.clone()
    }
}

fn print_automaton(out: &mut String, automaton: &Automaton, system: &System) {
    let _ = writeln!(out, "automaton {} {{", quoted(automaton.name()));
    for (idx, location) in automaton.locations().iter().enumerate() {
        let init = if automaton.initial().index() == idx {
            "init "
        } else {
            ""
        };
        let urgent = if location.urgent { "urgent " } else { "" };
        let _ = write!(out, "    {init}{urgent}location {}", quoted(&location.name));
        if location.invariant.is_empty() {
            out.push('\n');
        } else {
            let _ = writeln!(
                out,
                " {{ inv {} }}",
                constraint_list(&location.invariant, system)
            );
        }
    }
    for edge in automaton.edges() {
        print_edge(out, edge, automaton, system);
    }
    out.push_str("}\n");
}

fn print_edge(out: &mut String, edge: &Edge, automaton: &Automaton, system: &System) {
    let _ = write!(
        out,
        "    edge {} -> {}",
        quoted(&automaton.location(edge.source).name),
        quoted(&automaton.location(edge.target).name)
    );
    match edge.sync {
        Sync::Tau => {}
        Sync::Input(ch) => {
            let _ = write!(out, " on {}?", quoted(system.channel(ch).name()));
        }
        Sync::Output(ch) => {
            let _ = write!(out, " on {}!", quoted(system.channel(ch).name()));
        }
    }
    let mut clauses: Vec<String> = Vec::new();
    if !edge.guard.clocks.is_empty() {
        clauses.push(format!(
            "guard {}",
            constraint_list(&edge.guard.clocks, system)
        ));
    }
    if let Some(data) = &edge.guard.data {
        clauses.push(format!("when {}", expr_to_tg(data, system.vars())));
    }
    for ClockReset { clock, value } in &edge.resets {
        let name = quoted(system.clock(*clock).name());
        if matches!(value, Expr::Const(0)) {
            clauses.push(format!("reset {name}"));
        } else {
            clauses.push(format!(
                "reset {name} := {}",
                expr_to_tg(value, system.vars())
            ));
        }
    }
    for Assignment {
        target,
        index,
        value,
    } in &edge.updates
    {
        let name = quoted(system.vars().decl(*target).name());
        match index {
            None => clauses.push(format!(
                "set {name} := {}",
                expr_to_tg(value, system.vars())
            )),
            Some(index) => clauses.push(format!(
                "set {name}[{}] := {}",
                expr_to_tg(index, system.vars()),
                expr_to_tg(value, system.vars())
            )),
        }
    }
    match edge.controllable {
        None => {}
        Some(true) => clauses.push("controllable".to_string()),
        Some(false) => clauses.push("uncontrollable".to_string()),
    }
    if clauses.is_empty() {
        out.push('\n');
    } else {
        let _ = writeln!(out, " {{ {} }}", clauses.join("; "));
    }
}

fn constraint_list(constraints: &[ClockConstraint], system: &System) -> String {
    constraints
        .iter()
        .map(|c| constraint_to_tg(c, system))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a clock constraint in re-parseable `.tg` syntax.
#[must_use]
pub fn constraint_to_tg(c: &ClockConstraint, system: &System) -> String {
    let left = quoted(system.clock(c.left).name());
    let bound = expr_to_tg(&c.bound, system.vars());
    match c.minus {
        None => format!("{left} {} {bound}", c.op),
        Some(minus) => format!(
            "{left} - {} {} {bound}",
            quoted(system.clock(minus).name()),
            c.op
        ),
    }
}

/// Renders an expression in re-parseable `.tg` syntax (fully parenthesized).
#[must_use]
pub fn expr_to_tg(expr: &Expr, vars: &VarTable) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, vars);
    out
}

fn write_expr(out: &mut String, expr: &Expr, vars: &VarTable) {
    match expr {
        Expr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(v) => out.push_str(&quoted(vars.decl(*v).name())),
        Expr::Index(v, idx) => {
            out.push_str(&quoted(vars.decl(*v).name()));
            out.push('[');
            write_expr(out, idx, vars);
            out.push(']');
        }
        Expr::Neg(e) => {
            out.push_str("-(");
            write_expr(out, e, vars);
            out.push(')');
        }
        Expr::Not(e) => {
            out.push_str("!(");
            write_expr(out, e, vars);
            out.push(')');
        }
        Expr::Add(a, b) => write_bin(out, a, "+", b, vars),
        Expr::Sub(a, b) => write_bin(out, a, "-", b, vars),
        Expr::Mul(a, b) => write_bin(out, a, "*", b, vars),
        Expr::Div(a, b) => write_bin(out, a, "/", b, vars),
        Expr::Mod(a, b) => write_bin(out, a, "%", b, vars),
        Expr::Cmp(op, a, b) => write_bin(out, a, &op.to_string(), b, vars),
        Expr::And(a, b) => write_bin(out, a, "&&", b, vars),
        Expr::Or(a, b) => write_bin(out, a, "||", b, vars),
        Expr::Ite(c, t, e) => {
            out.push('(');
            write_expr(out, c, vars);
            out.push_str(" ? ");
            write_expr(out, t, vars);
            out.push_str(" : ");
            write_expr(out, e, vars);
            out.push(')');
        }
    }
}

fn write_bin(out: &mut String, a: &Expr, op: &str, b: &Expr, vars: &VarTable) {
    out.push('(');
    write_expr(out, a, vars);
    let _ = write!(out, " {op} ");
    write_expr(out, b, vars);
    out.push(')');
}

/// Quotes a name unless it is a bare `.tg` identifier.
#[must_use]
pub fn quoted(name: &str) -> String {
    if is_bare_name(name) {
        name.to_string()
    } else {
        let mut out = String::with_capacity(name.len() + 2);
        out.push('"');
        for c in name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}
