//! Surface syntax tree of a `.tg` file.
//!
//! The AST is deliberately *unresolved*: names are plain strings with spans,
//! and it is the lowering stage ([`crate::lower`]) that resolves them against
//! the declarations and reports span-carrying errors for unknown or
//! duplicated names.

use crate::error::Span;
use tiga_model::CmpOp;

/// A value paired with the source span it was parsed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned<T> {
    /// The parsed value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs a value with its span.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

/// Kind of a channel declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKindAst {
    /// `input name` — controllable (tester) actions.
    Input,
    /// `output name` — uncontrollable (plant) actions.
    Output,
    /// `internal name` — controllability taken from the edges.
    Internal,
}

/// A `var` or `const` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDeclAst {
    /// Declared name.
    pub name: Spanned<String>,
    /// Array size (`None` for scalars).
    pub size: Option<Spanned<i64>>,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Inclusive upper bound.
    pub upper: i64,
    /// Initial value of every element.
    pub initial: i64,
    /// Whether this came from a `const` declaration (singleton range).
    pub is_const: bool,
    /// Span of the whole declaration.
    pub span: Span,
}

/// A clock constraint `c op bound` or `c - c' op bound`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintAst {
    /// Left-hand clock name.
    pub left: Spanned<String>,
    /// Optional subtracted clock (diagonal constraints).
    pub minus: Option<Spanned<String>>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Bound expression over discrete variables.
    pub bound: ExprAst,
    /// Span of the whole constraint.
    pub span: Span,
}

/// An integer/boolean expression (unresolved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprAst {
    /// The node.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression node kinds, mirroring [`tiga_model::Expr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal (possibly negative: the parser folds a leading `-`).
    Num(i64),
    /// Variable reference.
    Name(String),
    /// Array element `name[index]`.
    Index(String, Box<ExprAst>),
    /// Arithmetic negation `-(e)`.
    Neg(Box<ExprAst>),
    /// Logical negation `!(e)`.
    Not(Box<ExprAst>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<ExprAst>, Box<ExprAst>),
    /// Comparison.
    Cmp(CmpOp, Box<ExprAst>, Box<ExprAst>),
    /// Conjunction `&&`.
    And(Box<ExprAst>, Box<ExprAst>),
    /// Disjunction `||`.
    Or(Box<ExprAst>, Box<ExprAst>),
    /// Conditional `(c ? t : e)`.
    Ite(Box<ExprAst>, Box<ExprAst>, Box<ExprAst>),
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// A location declaration inside an automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocationAst {
    /// Location name.
    pub name: Spanned<String>,
    /// Whether the location is marked `init`.
    pub init: bool,
    /// Whether the location is marked `urgent`.
    pub urgent: bool,
    /// Invariant constraints (conjunction).
    pub invariant: Vec<ConstraintAst>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// Synchronization annotation of an edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncAst {
    /// Channel name.
    pub channel: Spanned<String>,
    /// `true` for `channel?` (receive), `false` for `channel!` (emit).
    pub receive: bool,
}

/// A clock reset clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResetAst {
    /// Clock name.
    pub clock: Spanned<String>,
    /// New value (`None` means zero).
    pub value: Option<ExprAst>,
}

/// A variable update clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateAst {
    /// Target variable name.
    pub target: Spanned<String>,
    /// Element index for arrays.
    pub index: Option<ExprAst>,
    /// Assigned value.
    pub value: ExprAst,
}

/// An edge declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeAst {
    /// Source location name.
    pub source: Spanned<String>,
    /// Target location name.
    pub target: Spanned<String>,
    /// Synchronization (`None` for internal `tau` edges).
    pub sync: Option<SyncAst>,
    /// Clock-constraint guard atoms, in source order.
    pub guard: Vec<ConstraintAst>,
    /// Data-guard expressions (conjoined in source order).
    pub when: Vec<ExprAst>,
    /// Clock resets, in source order.
    pub resets: Vec<ResetAst>,
    /// Variable updates, in source order.
    pub updates: Vec<UpdateAst>,
    /// Controllability override (`controllable` / `uncontrollable`).
    pub controllable: Option<bool>,
    /// Span of the edge header.
    pub span: Span,
}

/// An automaton declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutomatonAst {
    /// Automaton name.
    pub name: Spanned<String>,
    /// Declared locations, in source order.
    pub locations: Vec<LocationAst>,
    /// Declared edges, in source order.
    pub edges: Vec<EdgeAst>,
}

/// The raw `control:` objective line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlAst {
    /// The raw text of the whole line (starting at `control`), handed to
    /// `tiga-tctl` verbatim after the system is built.
    pub raw: String,
    /// Span of the line within the `.tg` source.
    pub span: Span,
}

/// A parsed (but not yet resolved) `.tg` file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileAst {
    /// The `system` header, if present.
    pub system_name: Option<Spanned<String>>,
    /// Clock declarations, in source order.
    pub clocks: Vec<Spanned<String>>,
    /// Channel declarations, in source order.
    pub channels: Vec<(ChannelKindAst, Spanned<String>)>,
    /// Variable and constant declarations, in source order.
    pub vars: Vec<VarDeclAst>,
    /// Automata, in source order.
    pub automata: Vec<AutomatonAst>,
    /// The objective line, if present.
    pub control: Option<ControlAst>,
}
