//! Lowering: resolved construction of a [`System`] from a [`FileAst`].
//!
//! All name resolution happens here, against the declarations collected from
//! the file, and every failure is reported with the [`Span`] of the offending
//! name.  The `control:` line is handed to `tiga-tctl` once the system is
//! built; tctl byte positions are re-based onto the line's span so its
//! diagnostics point into the `.tg` source like everything else.

use crate::ast::{
    ArithOp, AutomatonAst, ChannelKindAst, ConstraintAst, EdgeAst, ExprAst, ExprKind, FileAst,
    Spanned,
};
use crate::error::{LangError, Span};
use std::collections::HashMap;
use tiga_model::{
    AutomatonBuilder, ChannelId, ClockConstraint, ClockId, EdgeBuilder, Expr, LocationId,
    ModelError, System, SystemBuilder, VarId,
};
use tiga_tctl::{TctlError, TestPurpose};

/// Default system name when the file has no `system` header.
pub const DEFAULT_SYSTEM_NAME: &str = "system";

/// Largest accepted array size: every element is a store slot that discrete
/// states carry around, so anything beyond this is a model bug (the zoo's
/// largest array is the LEP buffer with one slot per node).
pub const MAX_ARRAY_SIZE: i64 = 1 << 20;

/// A fully lowered `.tg` file: the built system plus the optional objective.
#[derive(Clone, Debug)]
pub struct TgModel {
    /// The constructed system.
    pub system: System,
    /// The parsed `control:` objective, if the file has one.
    pub purpose: Option<TestPurpose>,
}

/// Resolution scope shared by all automata of a file.
struct Scope {
    clocks: HashMap<String, ClockId>,
    channels: HashMap<String, ChannelId>,
    vars: HashMap<String, VarId>,
}

impl Scope {
    fn clock(&self, name: &Spanned<String>) -> Result<ClockId, LangError> {
        self.clocks
            .get(&name.node)
            .copied()
            .ok_or_else(|| LangError::lower(format!("unknown clock `{}`", name.node), name.span))
    }

    fn channel(&self, name: &Spanned<String>) -> Result<ChannelId, LangError> {
        self.channels
            .get(&name.node)
            .copied()
            .ok_or_else(|| LangError::lower(format!("unknown channel `{}`", name.node), name.span))
    }

    fn var(&self, name: &str, span: Span) -> Result<VarId, LangError> {
        self.vars.get(name).copied().ok_or_else(|| {
            let hint = if self.clocks.contains_key(name) {
                " (clocks cannot appear in data expressions; use `guard`/`inv` constraints)"
            } else {
                ""
            };
            LangError::lower(format!("unknown variable `{name}`{hint}"), span)
        })
    }
}

fn model_err(e: &ModelError, span: Span) -> LangError {
    LangError::lower(e.to_string(), span)
}

/// Lowers a parsed file onto the model builders.
///
/// # Errors
///
/// Returns a span-carrying [`LangError`] for unresolved names, duplicate
/// declarations, invalid ranges, missing initial locations and objective
/// errors.
pub fn lower_file(file: &FileAst) -> Result<TgModel, LangError> {
    let name = file
        .system_name
        .as_ref()
        .map_or(DEFAULT_SYSTEM_NAME, |n| n.node.as_str());
    let mut builder = SystemBuilder::new(name);
    let mut scope = Scope {
        clocks: HashMap::new(),
        channels: HashMap::new(),
        vars: HashMap::new(),
    };

    for clock in &file.clocks {
        let id = builder
            .clock(&clock.node)
            .map_err(|e| model_err(&e, clock.span))?;
        scope.clocks.insert(clock.node.clone(), id);
    }
    for (kind, channel) in &file.channels {
        let id = match kind {
            ChannelKindAst::Input => builder.input_channel(&channel.node),
            ChannelKindAst::Output => builder.output_channel(&channel.node),
            ChannelKindAst::Internal => builder.internal_channel(&channel.node),
        }
        .map_err(|e| model_err(&e, channel.span))?;
        scope.channels.insert(channel.node.clone(), id);
    }
    for var in &file.vars {
        let id = match &var.size {
            None => builder.int_var(&var.name.node, var.lower, var.upper, var.initial),
            Some(size) => {
                if size.node <= 0 {
                    return Err(LangError::lower(
                        format!("array `{}` must have a positive size", var.name.node),
                        size.span,
                    ));
                }
                // Sanity cap: the flattened store materializes `size` i64
                // slots, so an absurd size from untrusted input must become
                // a diagnostic, not an allocation.
                if size.node > MAX_ARRAY_SIZE {
                    return Err(LangError::lower(
                        format!(
                            "array `{}` has size {} (the maximum is {MAX_ARRAY_SIZE})",
                            var.name.node, size.node
                        ),
                        size.span,
                    ));
                }
                builder.int_array(
                    &var.name.node,
                    usize::try_from(size.node).expect("positive size fits usize"),
                    var.lower,
                    var.upper,
                    var.initial,
                )
            }
        }
        .map_err(|e| model_err(&e, var.span))?;
        scope.vars.insert(var.name.node.clone(), id);
    }

    if file.automata.is_empty() {
        let span = file.system_name.as_ref().map_or(Span::at(0), |n| n.span);
        return Err(LangError::lower(
            "a .tg file must declare at least one automaton",
            span,
        ));
    }
    for automaton in &file.automata {
        let lowered = lower_automaton(automaton, &scope)?;
        builder
            .add_automaton(lowered)
            .map_err(|e| model_err(&e, automaton.name.span))?;
    }
    let system = builder.build().map_err(|e| model_err(&e, Span::at(0)))?;

    let purpose = match &file.control {
        None => None,
        Some(control) => Some(
            TestPurpose::parse(&control.raw, &system).map_err(|e| control_err(&e, control.span))?,
        ),
    };
    Ok(TgModel { system, purpose })
}

/// Re-bases a tctl error onto the `control:` line's span.
fn control_err(e: &TctlError, line: Span) -> LangError {
    let span = match e {
        TctlError::Lex { position, .. } | TctlError::Parse { position, .. } => {
            let at = (line.start + position).min(line.end);
            Span::new(at, at + 1)
        }
        _ => line,
    };
    LangError::control(e.to_string(), span)
}

fn lower_automaton(
    automaton: &AutomatonAst,
    scope: &Scope,
) -> Result<tiga_model::Automaton, LangError> {
    let mut builder = AutomatonBuilder::new(&automaton.name.node);
    let mut locations: HashMap<&str, LocationId> = HashMap::new();
    let mut initial: Option<(&str, Span)> = None;
    for loc in &automaton.locations {
        let id = builder
            .location(&loc.name.node)
            .map_err(|e| model_err(&e, loc.name.span))?;
        locations.insert(&loc.name.node, id);
        if loc.init {
            if let Some((first, _)) = initial {
                return Err(LangError::lower(
                    format!(
                        "automaton `{}` has two `init` locations (`{first}` and `{}`)",
                        automaton.name.node, loc.name.node
                    ),
                    loc.name.span,
                ));
            }
            initial = Some((&loc.name.node, loc.name.span));
            builder.set_initial(id);
        }
        if loc.urgent {
            builder.set_urgent(id);
        }
        let invariant = loc
            .invariant
            .iter()
            .map(|c| lower_constraint(c, scope))
            .collect::<Result<Vec<_>, _>>()?;
        builder.set_invariant(id, invariant);
    }
    for edge in &automaton.edges {
        builder.add_edge(lower_edge(edge, &locations, scope, &automaton.name.node)?);
    }
    builder
        .build()
        .map_err(|e| model_err(&e, automaton.name.span))
}

fn lower_edge(
    edge: &EdgeAst,
    locations: &HashMap<&str, LocationId>,
    scope: &Scope,
    automaton: &str,
) -> Result<tiga_model::Edge, LangError> {
    let resolve = |name: &Spanned<String>| -> Result<LocationId, LangError> {
        locations.get(name.node.as_str()).copied().ok_or_else(|| {
            LangError::lower(
                format!(
                    "unknown location `{}` in automaton `{automaton}`",
                    name.node
                ),
                name.span,
            )
        })
    };
    let mut b = EdgeBuilder::new(resolve(&edge.source)?, resolve(&edge.target)?);
    if let Some(sync) = &edge.sync {
        let channel = scope.channel(&sync.channel)?;
        b = if sync.receive {
            b.input(channel)
        } else {
            b.output(channel)
        };
    }
    for constraint in &edge.guard {
        b = b.guard_clock(lower_constraint(constraint, scope)?);
    }
    for when in &edge.when {
        b = b.when(lower_expr(when, scope)?);
    }
    for reset in &edge.resets {
        let clock = scope.clock(&reset.clock)?;
        b = match &reset.value {
            None => b.reset(clock),
            Some(value) => b.reset_to(clock, lower_expr(value, scope)?),
        };
    }
    for update in &edge.updates {
        let target = scope.var(&update.target.node, update.target.span)?;
        let value = lower_expr(&update.value, scope)?;
        b = match &update.index {
            None => b.set(target, value),
            Some(index) => b.set_element(target, lower_expr(index, scope)?, value),
        };
    }
    if let Some(controllable) = edge.controllable {
        b = b.controllable(controllable);
    }
    Ok(b.build())
}

fn lower_constraint(c: &ConstraintAst, scope: &Scope) -> Result<ClockConstraint, LangError> {
    let left = scope.clock(&c.left)?;
    let bound = lower_expr(&c.bound, scope)?;
    Ok(match &c.minus {
        None => ClockConstraint::new(left, c.op, bound),
        Some(minus) => ClockConstraint::diff(left, scope.clock(minus)?, c.op, bound),
    })
}

fn lower_expr(e: &ExprAst, scope: &Scope) -> Result<Expr, LangError> {
    Ok(match &e.kind {
        ExprKind::Num(n) => Expr::constant(*n),
        ExprKind::Name(name) => Expr::var(scope.var(name, e.span)?),
        ExprKind::Index(name, idx) => {
            Expr::index(scope.var(name, e.span)?, lower_expr(idx, scope)?)
        }
        ExprKind::Neg(inner) => Expr::Neg(Box::new(lower_expr(inner, scope)?)),
        ExprKind::Not(inner) => lower_expr(inner, scope)?.negated(),
        ExprKind::Arith(op, a, b) => {
            let a = lower_expr(a, scope)?;
            let b = lower_expr(b, scope)?;
            match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => Expr::Div(Box::new(a), Box::new(b)),
                ArithOp::Mod => Expr::Mod(Box::new(a), Box::new(b)),
            }
        }
        ExprKind::Cmp(op, a, b) => lower_expr(a, scope)?.cmp(*op, lower_expr(b, scope)?),
        ExprKind::And(a, b) => lower_expr(a, scope)?.and(lower_expr(b, scope)?),
        ExprKind::Or(a, b) => lower_expr(a, scope)?.or(lower_expr(b, scope)?),
        ExprKind::Ite(c, t, o) => Expr::ite(
            lower_expr(c, scope)?,
            lower_expr(t, scope)?,
            lower_expr(o, scope)?,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use tiga_model::{ChannelKind, CmpOp, Sync};

    fn lower(src: &str) -> Result<TgModel, LangError> {
        lower_file(&parse_file(src)?)
    }

    #[test]
    fn lowers_a_complete_system() {
        let src = r#"
system "demo"
clock x
input press
output done
const LIMIT = 3
var count: int[0, 10] = 0
var slots[2]: int[0, 1] = 0

automaton M {
    init location Idle
    location Busy { inv x <= 3 }
    edge Idle -> Busy on press? {
        guard x >= 1;
        when (count < LIMIT);
        reset x;
        set count := (count + 1);
        set slots[0] := 1
    }
    edge Busy -> Idle on done!
    edge Busy -> Busy { controllable }
}
control: A<> M.Busy
"#;
        let model = lower(src).unwrap();
        let sys = &model.system;
        assert_eq!(sys.name(), "demo");
        assert_eq!(sys.clocks().len(), 1);
        assert_eq!(sys.channels().len(), 2);
        assert_eq!(sys.channels()[0].kind(), ChannelKind::Input);
        assert_eq!(sys.vars().len(), 3);
        let m = &sys.automata()[0];
        assert_eq!(m.locations().len(), 2);
        assert_eq!(m.location(m.initial()).name, "Idle");
        assert_eq!(m.edges().len(), 3);
        let e0 = &m.edges()[0];
        assert!(matches!(e0.sync, Sync::Input(_)));
        assert_eq!(e0.guard.clocks.len(), 1);
        assert_eq!(e0.guard.clocks[0].op, CmpOp::Ge);
        assert!(e0.guard.data.is_some());
        assert_eq!(e0.resets.len(), 1);
        assert_eq!(e0.updates.len(), 2);
        assert_eq!(m.edges()[2].controllable, Some(true));
        assert!(model.purpose.is_some());
    }

    #[test]
    fn unknown_names_point_at_their_spans() {
        let src = "automaton A { init location L edge L -> L { guard y >= 1 } }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("unknown clock `y`"), "{err}");
        assert_eq!(&src[err.span.start..err.span.end], "y");

        let src = "automaton A { init location L edge L -> M }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("unknown location `M`"), "{err}");

        let src = "automaton A { init location L edge L -> L on zap? }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("unknown channel `zap`"), "{err}");

        let src = "clock x\nautomaton A { init location L edge L -> L { when x > 1 } }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("clocks cannot appear"), "{err}");
    }

    #[test]
    fn structural_errors_are_reported() {
        let err = lower("clock x").unwrap_err();
        assert!(err.message.contains("at least one automaton"), "{err}");

        let err = lower("clock x\nclock x\nautomaton A { init location L }").unwrap_err();
        assert!(err.message.to_lowercase().contains("duplicate"), "{err}");

        let src = "automaton A { init location L init location M }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("two `init` locations"), "{err}");

        let src = "var v: int[5, 3] = 4\nautomaton A { init location L }";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("range"), "{err}");
    }

    #[test]
    fn control_line_errors_map_into_the_tg_source() {
        let src = "automaton A { init location L }\ncontrol: A<> B.Nowhere\n";
        let err = lower(src).unwrap_err();
        assert!(err.message.contains("resolve"), "{err}");
        // The span stays within the control line.
        assert!(err.span.start >= src.find("control").unwrap());
    }

    #[test]
    fn first_location_is_initial_without_init_marker() {
        let model = lower("automaton A { location L location M }").unwrap();
        let a = &model.system.automata()[0];
        assert_eq!(a.location(a.initial()).name, "L");
    }
}
