//! Tokenizer for the `.tg` modeling language.
//!
//! Every token carries its byte [`Span`] so that the parser and the lowering
//! stage can attach precise source locations to diagnostics.  `//` comments
//! run to the end of the line; whitespace (including newlines) only separates
//! tokens.  The `control:` objective line is *not* tokenized here — the
//! parser captures it as raw text and hands it to `tiga-tctl` (see
//! [`crate::parser`]).

use crate::error::{LangError, Span};

/// A lexical token together with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source bytes covered by the token.
    pub span: Span,
}

/// The kinds of token recognised by the `.tg` language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`clock`, `automaton`, model names, ...).
    Ident(String),
    /// Quoted name (`"smart-light"`) — lets declarations carry names that
    /// are not valid identifiers.
    Str(String),
    /// Non-negative integer literal, stored as its **magnitude** (negative
    /// numbers are parsed as a leading `-` folded by the parser).  A `u64`
    /// payload lets `-9223372036854775808` (`i64::MIN`, whose magnitude
    /// overflows an `i64`) survive the lexer; the parser enforces the signed
    /// range where the literal is used.
    Number(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// A whole `control: ...` objective line, captured raw (minus trailing
    /// comment/whitespace) because its body uses `tiga-tctl` syntax (`<>`,
    /// qualified names with `.`) that the `.tg` lexer does not know.  Only
    /// recognised when `control` is the first word on its line.
    ControlLine(String),
}

impl TokenKind {
    /// Short human-readable description used in parse errors.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("`{name}`"),
            TokenKind::Str(name) => format!("\"{name}\""),
            TokenKind::Number(n) => format!("`{n}`"),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Assign => "`:=`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::Arrow => "`->`".to_string(),
            TokenKind::Question => "`?`".to_string(),
            TokenKind::Bang => "`!`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Percent => "`%`".to_string(),
            TokenKind::EqEq => "`==`".to_string(),
            TokenKind::NotEq => "`!=`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::AndAnd => "`&&`".to_string(),
            TokenKind::OrOr => "`||`".to_string(),
            TokenKind::ControlLine(_) => "`control:` line".to_string(),
        }
    }
}

/// Splits `.tg` source into tokens.
///
/// # Errors
///
/// Returns a span-carrying [`LangError`] on stray characters, unterminated
/// strings, non-integer numeric literals and oversized integers.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LangError> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let end_of_input = input.len();
    let mut tokens = Vec::new();
    let mut i = 0;

    // Byte offset one past character index `i` (for span ends).
    let after =
        |i: usize| -> usize { chars.get(i + 1).map_or(end_of_input, |&(offset, _)| offset) };

    while i < chars.len() {
        let (start, c) = chars[i];
        let push1 = |kind: TokenKind, tokens: &mut Vec<Token>| {
            tokens.push(Token {
                kind,
                span: Span::new(start, after(i)),
            });
        };
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if chars.get(i + 1).map(|&(_, c)| c) == Some('/') => {
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            '{' => {
                push1(TokenKind::LBrace, &mut tokens);
                i += 1;
            }
            '}' => {
                push1(TokenKind::RBrace, &mut tokens);
                i += 1;
            }
            '(' => {
                push1(TokenKind::LParen, &mut tokens);
                i += 1;
            }
            ')' => {
                push1(TokenKind::RParen, &mut tokens);
                i += 1;
            }
            '[' => {
                push1(TokenKind::LBracket, &mut tokens);
                i += 1;
            }
            ']' => {
                push1(TokenKind::RBracket, &mut tokens);
                i += 1;
            }
            ',' => {
                push1(TokenKind::Comma, &mut tokens);
                i += 1;
            }
            ';' => {
                push1(TokenKind::Semi, &mut tokens);
                i += 1;
            }
            '?' => {
                push1(TokenKind::Question, &mut tokens);
                i += 1;
            }
            '+' => {
                push1(TokenKind::Plus, &mut tokens);
                i += 1;
            }
            '*' => {
                push1(TokenKind::Star, &mut tokens);
                i += 1;
            }
            '/' => {
                push1(TokenKind::Slash, &mut tokens);
                i += 1;
            }
            '%' => {
                push1(TokenKind::Percent, &mut tokens);
                i += 1;
            }
            ':' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Colon, &mut tokens);
                    i += 1;
                }
            }
            '-' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Minus, &mut tokens);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Eq, &mut tokens);
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Bang, &mut tokens);
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Lt, &mut tokens);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    push1(TokenKind::Gt, &mut tokens);
                    i += 1;
                }
            }
            '&' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('&') {
                    tokens.push(Token {
                        kind: TokenKind::AndAnd,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    return Err(LangError::lex(
                        "stray `&` (conjunction is `&&`)",
                        Span::new(start, after(i)),
                    ));
                }
            }
            '|' => {
                if chars.get(i + 1).map(|&(_, c)| c) == Some('|') {
                    tokens.push(Token {
                        kind: TokenKind::OrOr,
                        span: Span::new(start, after(i + 1)),
                    });
                    i += 2;
                } else {
                    return Err(LangError::lex(
                        "stray `|` (disjunction is `||`)",
                        Span::new(start, after(i)),
                    ));
                }
            }
            '"' => {
                let mut name = String::new();
                let mut j = i + 1;
                loop {
                    match chars.get(j) {
                        None => {
                            return Err(LangError::lex(
                                "unterminated string literal",
                                Span::new(start, end_of_input),
                            ));
                        }
                        Some(&(_, '"')) => break,
                        Some(&(offset, '\\')) => match chars.get(j + 1) {
                            Some(&(_, '"')) => {
                                name.push('"');
                                j += 2;
                            }
                            Some(&(_, '\\')) => {
                                name.push('\\');
                                j += 2;
                            }
                            Some(&(_, 'n')) => {
                                name.push('\n');
                                j += 2;
                            }
                            _ => {
                                return Err(LangError::lex(
                                    "unknown escape in string literal (use \\\", \\\\ or \\n)",
                                    Span::new(offset, after(j)),
                                ));
                            }
                        },
                        Some(&(_, '\n')) => {
                            return Err(LangError::lex(
                                "string literal runs past the end of the line",
                                Span::new(start, chars[j].0),
                            ));
                        }
                        Some(&(_, c)) => {
                            name.push(c);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(name),
                    span: Span::new(start, after(j)),
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                let mut j = i;
                while let Some(&(_, d)) = chars.get(j) {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(d as u8 - b'0')))
                        .ok_or_else(|| {
                            LangError::lex(
                                "integer literal overflows the 64-bit range",
                                Span::new(start, after(j)),
                            )
                        })?;
                    j += 1;
                }
                if chars.get(j).map(|&(_, c)| c) == Some('.') {
                    return Err(LangError::lex(
                        "non-integer numeric literal (clocks and bounds are integers)",
                        Span::new(start, after(j)),
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    span: Span::new(start, chars.get(j).map_or(end_of_input, |&(o, _)| o)),
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                let mut j = i;
                while let Some(&(_, d)) = chars.get(j) {
                    if !(d.is_ascii_alphanumeric() || d == '_') {
                        break;
                    }
                    name.push(d);
                    j += 1;
                }
                let line_start = input[..start].rfind('\n').map_or(0, |p| p + 1);
                if name == "control" && input[line_start..start].trim().is_empty() {
                    // Objective line: capture everything to the end of the
                    // line raw, dropping a trailing `//` comment.
                    let line_end = input[start..]
                        .find('\n')
                        .map_or(end_of_input, |p| start + p);
                    let mut raw = &input[start..line_end];
                    if let Some(comment) = raw.find("//") {
                        raw = &raw[..comment];
                    }
                    let raw = raw.trim_end();
                    tokens.push(Token {
                        kind: TokenKind::ControlLine(raw.to_string()),
                        span: Span::new(start, start + raw.len()),
                    });
                    while i < chars.len() && chars[i].0 < line_end {
                        i += 1;
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident(name),
                        span: Span::new(start, chars.get(j).map_or(end_of_input, |&(o, _)| o)),
                    });
                    i = j;
                }
            }
            other => {
                return Err(LangError::lex(
                    format!("unexpected character `{other}`"),
                    Span::new(start, after(i)),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_declarations() {
        assert_eq!(
            kinds("clock x // the main clock"),
            vec![
                TokenKind::Ident("clock".into()),
                TokenKind::Ident("x".into()),
            ]
        );
        assert_eq!(
            kinds("edge Off -> L1 on touch?"),
            vec![
                TokenKind::Ident("edge".into()),
                TokenKind::Ident("Off".into()),
                TokenKind::Arrow,
                TokenKind::Ident("L1".into()),
                TokenKind::Ident("on".into()),
                TokenKind::Ident("touch".into()),
                TokenKind::Question,
            ]
        );
    }

    #[test]
    fn distinguishes_colon_assign_eq() {
        assert_eq!(
            kinds("a := 1 = 2 : =="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Number(1),
                TokenKind::Eq,
                TokenKind::Number(2),
                TokenKind::Colon,
                TokenKind::EqEq,
            ]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            kinds("x - y -> z -1"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Minus,
                TokenKind::Ident("y".into()),
                TokenKind::Arrow,
                TokenKind::Ident("z".into()),
                TokenKind::Minus,
                TokenKind::Number(1),
            ]
        );
    }

    #[test]
    fn quoted_names_with_escapes() {
        assert_eq!(
            kinds(r#"system "smart-light""#),
            vec![
                TokenKind::Ident("system".into()),
                TokenKind::Str("smart-light".into()),
            ]
        );
        assert_eq!(
            kinds(r#""a\"b\\c""#),
            vec![TokenKind::Str("a\"b\\c".into())]
        );
    }

    #[test]
    fn rejects_bad_input_with_spans() {
        let err = tokenize("clock x $").unwrap_err();
        assert_eq!(err.span, Span::new(8, 9));
        let err = tokenize("x <= 1.5").unwrap_err();
        assert!(err.message.contains("non-integer"), "{err}");
        assert_eq!(err.span.start, 5);
        let err = tokenize("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
        let err = tokenize("x == 99999999999999999999").unwrap_err();
        assert!(err.message.contains("overflows"), "{err}");
    }

    #[test]
    fn control_lines_are_captured_raw() {
        let toks = tokenize("clock x\ncontrol: A<> IUT.Bright // goal\nclock y\n").unwrap();
        let kinds: Vec<_> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds[2],
            &TokenKind::ControlLine("control: A<> IUT.Bright".into())
        );
        assert_eq!(kinds[3], &TokenKind::Ident("clock".into()));
        // `control` not at the start of a line stays an identifier.
        let toks = tokenize("location control").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Ident("control".into()));
    }

    #[test]
    fn spans_are_byte_ranges() {
        let toks = tokenize("ab <= 30").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(6, 8));
    }
}
