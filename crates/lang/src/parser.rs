//! Recursive-descent parser: tokens → [`FileAst`].
//!
//! The parser is purely syntactic — names stay unresolved strings and every
//! AST node keeps the [`Span`] it was read from, so the lowering stage can
//! report resolution errors against the source.  Grammar summary (see the
//! repository README for the full EBNF):
//!
//! ```text
//! file      := { header | clock | channel | const | var | automaton | control }
//! header    := "system" name
//! clock     := "clock" name
//! channel   := ("input" | "output" | "internal") name
//! const     := "const" name "=" int
//! var       := "var" name [ "[" int "]" ] ":" "int" "[" int "," int "]" "=" int
//! automaton := "automaton" name "{" { location | edge } "}"
//! location  := ["init"] ["urgent"] "location" name [ "{" "inv" constraints
//!              { ";" "inv" constraints } [";"] "}" ]
//! edge      := "edge" name "->" name [ "on" name ("?" | "!") ]
//!              [ "{" clause { ";" clause } [";"] "}" ]
//! clause    := "guard" constraints | "when" expr | "reset" name [":=" expr]
//!            | "set" name ["[" expr "]"] ":=" expr
//!            | "controllable" | "uncontrollable"
//! constraints := constraint { "," constraint }
//! constraint  := name ["-" name] ("<" | "<=" | ">" | ">=" | "==" | "!=") expr
//! control   := "control" ":" <tiga-tctl formula, to end of line>
//! ```

use crate::ast::{
    ArithOp, AutomatonAst, ChannelKindAst, ConstraintAst, ControlAst, EdgeAst, ExprAst, ExprKind,
    FileAst, LocationAst, ResetAst, Spanned, SyncAst, UpdateAst, VarDeclAst,
};
use crate::error::{LangError, Span};
use crate::lexer::{tokenize, Token, TokenKind};
use tiga_model::CmpOp;

/// Reserved words of the `.tg` language.  The pretty-printer quotes any
/// model name that collides with one of these (or is not an identifier), so
/// arbitrary systems still round-trip.
pub const KEYWORDS: &[&str] = &[
    "system",
    "clock",
    "input",
    "output",
    "internal",
    "const",
    "var",
    "int",
    "automaton",
    "location",
    "init",
    "urgent",
    "inv",
    "edge",
    "on",
    "guard",
    "when",
    "reset",
    "set",
    "controllable",
    "uncontrollable",
    "control",
    "true",
    "false",
];

/// Returns `true` if `name` can be written bare (unquoted) in `.tg` source.
#[must_use]
pub fn is_bare_name(name: &str) -> bool {
    !name.is_empty()
        && !KEYWORDS.contains(&name)
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Applies the sign to a lexed literal magnitude, enforcing the `i64` range.
///
/// The lexer stores magnitudes as `u64` precisely so that
/// `-9223372036854775808` (`i64::MIN`) folds exactly — its magnitude `2⁶³`
/// has no positive `i64` representation, so negation must happen on the
/// unsigned value.  Both `i32` and `i64` boundary literals round-trip
/// through print → parse this way.
fn fold_literal(magnitude: u64, negative: bool, span: Span) -> Result<i64, LangError> {
    if negative {
        if magnitude > i64::MIN.unsigned_abs() {
            return Err(LangError::parse("integer literal overflows i64", span));
        }
        Ok(magnitude.wrapping_neg() as i64)
    } else {
        i64::try_from(magnitude)
            .map_err(|_| LangError::parse("integer literal overflows i64", span))
    }
}

/// Parses `.tg` source into an unresolved [`FileAst`].
///
/// # Errors
///
/// Returns a span-carrying [`LangError`] on lexical or grammatical problems.
pub fn parse_file(source: &str) -> Result<FileAst, LangError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: source.len(),
    };
    parser.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Byte length of the source, for end-of-input spans.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek().map_or(Span::at(self.end), |t| t.span)
    }

    fn unexpected(&self, expected: &str) -> LangError {
        match self.peek() {
            Some(t) => LangError::parse(
                format!("expected {expected}, found {}", t.kind.describe()),
                t.span,
            ),
            None => LangError::parse(
                format!("expected {expected}, found end of input"),
                Span::at(self.end),
            ),
        }
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Span, LangError> {
        match self.peek() {
            Some(t) if &t.kind == kind => Ok(self.bump().expect("peeked").span),
            _ => Err(self.unexpected(expected)),
        }
    }

    /// Consumes the keyword `kw` (an identifier with that exact text).
    fn expect_keyword(&mut self, kw: &str) -> Result<Span, LangError> {
        match self.peek() {
            Some(t) if matches!(&t.kind, TokenKind::Ident(name) if name == kw) => {
                Ok(self.bump().expect("peeked").span)
            }
            _ => Err(self.unexpected(&format!("`{kw}`"))),
        }
    }

    /// Is the next token the given keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if matches!(&t.kind, TokenKind::Ident(name) if name == kw))
    }

    /// A name: a non-keyword identifier or a quoted string.
    fn name(&mut self, what: &str) -> Result<Spanned<String>, LangError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                    let name = name.clone();
                    let span = self.bump().expect("peeked").span;
                    Ok(Spanned::new(name, span))
                }
                TokenKind::Ident(name) => Err(LangError::parse(
                    format!("keyword `{name}` cannot be used as {what} (quote it: \"{name}\")"),
                    t.span,
                )),
                TokenKind::Str(name) => {
                    let name = name.clone();
                    let span = self.bump().expect("peeked").span;
                    Ok(Spanned::new(name, span))
                }
                _ => Err(self.unexpected(&format!("a {what} name"))),
            },
            None => Err(self.unexpected(&format!("a {what} name"))),
        }
    }

    /// A possibly negative integer literal.
    fn int(&mut self, what: &str) -> Result<Spanned<i64>, LangError> {
        let negative = matches!(self.peek(), Some(t) if t.kind == TokenKind::Minus);
        let minus_span = if negative {
            Some(self.bump().expect("peeked").span)
        } else {
            None
        };
        match self.peek() {
            Some(t) => {
                if let TokenKind::Number(n) = t.kind {
                    let span = self.bump().expect("peeked").span;
                    let span = minus_span.map_or(span, |m| m.to(span));
                    Ok(Spanned::new(fold_literal(n, negative, span)?, span))
                } else {
                    Err(self.unexpected(&format!("an integer {what}")))
                }
            }
            None => Err(self.unexpected(&format!("an integer {what}"))),
        }
    }

    fn file(&mut self) -> Result<FileAst, LangError> {
        let mut file = FileAst::default();
        while let Some(token) = self.peek() {
            match &token.kind {
                TokenKind::ControlLine(raw) => {
                    if file.control.is_some() {
                        return Err(LangError::parse(
                            "duplicate `control:` line (a .tg file has one objective)",
                            token.span,
                        ));
                    }
                    file.control = Some(ControlAst {
                        raw: raw.clone(),
                        span: token.span,
                    });
                    self.bump();
                }
                TokenKind::Ident(kw) => match kw.as_str() {
                    "system" => {
                        self.bump();
                        let name = self.name("system")?;
                        if file.system_name.is_some() {
                            return Err(LangError::parse("duplicate `system` header", name.span));
                        }
                        file.system_name = Some(name);
                    }
                    "clock" => {
                        self.bump();
                        file.clocks.push(self.name("clock")?);
                    }
                    "input" => {
                        self.bump();
                        file.channels
                            .push((ChannelKindAst::Input, self.name("channel")?));
                    }
                    "output" => {
                        self.bump();
                        file.channels
                            .push((ChannelKindAst::Output, self.name("channel")?));
                    }
                    "internal" => {
                        self.bump();
                        file.channels
                            .push((ChannelKindAst::Internal, self.name("channel")?));
                    }
                    "const" => file.vars.push(self.const_decl()?),
                    "var" => file.vars.push(self.var_decl()?),
                    "automaton" => file.automata.push(self.automaton()?),
                    other => {
                        return Err(LangError::parse(
                            format!(
                                "unknown declaration `{other}` (expected `system`, `clock`, \
                                 `input`, `output`, `internal`, `const`, `var`, `automaton` \
                                 or `control:`)"
                            ),
                            token.span,
                        ));
                    }
                },
                _ => return Err(self.unexpected("a declaration")),
            }
        }
        Ok(file)
    }

    fn const_decl(&mut self) -> Result<VarDeclAst, LangError> {
        let start = self.expect_keyword("const")?;
        let name = self.name("constant")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let value = self.int("value")?;
        let span = start.to(value.span);
        Ok(VarDeclAst {
            name,
            size: None,
            lower: value.node,
            upper: value.node,
            initial: value.node,
            is_const: true,
            span,
        })
    }

    fn var_decl(&mut self) -> Result<VarDeclAst, LangError> {
        let start = self.expect_keyword("var")?;
        let name = self.name("variable")?;
        let size = if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBracket) {
            self.bump();
            let size = self.int("array size")?;
            self.expect(&TokenKind::RBracket, "`]`")?;
            Some(size)
        } else {
            None
        };
        self.expect(&TokenKind::Colon, "`:`")?;
        self.expect_keyword("int")?;
        self.expect(&TokenKind::LBracket, "`[` starting the range")?;
        let lower = self.int("lower bound")?;
        self.expect(&TokenKind::Comma, "`,`")?;
        let upper = self.int("upper bound")?;
        self.expect(&TokenKind::RBracket, "`]` closing the range")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let initial = self.int("initial value")?;
        let span = start.to(initial.span);
        Ok(VarDeclAst {
            name,
            size,
            lower: lower.node,
            upper: upper.node,
            initial: initial.node,
            is_const: false,
            span,
        })
    }

    fn automaton(&mut self) -> Result<AutomatonAst, LangError> {
        self.expect_keyword("automaton")?;
        let name = self.name("automaton")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut locations = Vec::new();
        let mut edges = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.unexpected("`}` closing the automaton")),
                Some(t) if t.kind == TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                Some(t)
                    if matches!(&t.kind, TokenKind::Ident(kw)
                        if kw == "location" || kw == "init" || kw == "urgent") =>
                {
                    locations.push(self.location()?);
                }
                Some(t) if matches!(&t.kind, TokenKind::Ident(kw) if kw == "edge") => {
                    edges.push(self.edge()?);
                }
                _ => return Err(self.unexpected("`location`, `edge` or `}`")),
            }
        }
        Ok(AutomatonAst {
            name,
            locations,
            edges,
        })
    }

    fn location(&mut self) -> Result<LocationAst, LangError> {
        let start = self.here();
        let mut init = false;
        let mut urgent = false;
        loop {
            if !init && self.at_keyword("init") {
                self.bump();
                init = true;
            } else if !urgent && self.at_keyword("urgent") {
                self.bump();
                urgent = true;
            } else {
                break;
            }
        }
        self.expect_keyword("location")?;
        let name = self.name("location")?;
        let mut invariant = Vec::new();
        let mut span = start.to(name.span);
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBrace) {
            self.bump();
            loop {
                match self.peek() {
                    Some(t) if t.kind == TokenKind::RBrace => break,
                    Some(t) if t.kind == TokenKind::Semi => {
                        self.bump();
                    }
                    _ => {
                        self.expect_keyword("inv")?;
                        invariant.extend(self.constraints()?);
                    }
                }
            }
            span = span.to(self.expect(&TokenKind::RBrace, "`}`")?);
        }
        Ok(LocationAst {
            name,
            init,
            urgent,
            invariant,
            span,
        })
    }

    fn edge(&mut self) -> Result<EdgeAst, LangError> {
        let start = self.expect_keyword("edge")?;
        let source = self.name("location")?;
        self.expect(&TokenKind::Arrow, "`->`")?;
        let target = self.name("location")?;
        let mut span = start.to(target.span);
        let sync = if self.at_keyword("on") {
            self.bump();
            let channel = self.name("channel")?;
            let receive = match self.peek() {
                Some(t) if t.kind == TokenKind::Question => {
                    span = span.to(self.bump().expect("peeked").span);
                    true
                }
                Some(t) if t.kind == TokenKind::Bang => {
                    span = span.to(self.bump().expect("peeked").span);
                    false
                }
                _ => return Err(self.unexpected("`?` (receive) or `!` (emit)")),
            };
            Some(SyncAst { channel, receive })
        } else {
            None
        };
        let mut edge = EdgeAst {
            source,
            target,
            sync,
            guard: Vec::new(),
            when: Vec::new(),
            resets: Vec::new(),
            updates: Vec::new(),
            controllable: None,
            span,
        };
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBrace) {
            self.bump();
            loop {
                match self.peek() {
                    Some(t) if t.kind == TokenKind::RBrace => break,
                    Some(t) if t.kind == TokenKind::Semi => {
                        self.bump();
                    }
                    _ => self.edge_clause(&mut edge)?,
                }
            }
            self.expect(&TokenKind::RBrace, "`}`")?;
        }
        Ok(edge)
    }

    fn edge_clause(&mut self, edge: &mut EdgeAst) -> Result<(), LangError> {
        if self.at_keyword("guard") {
            self.bump();
            edge.guard.extend(self.constraints()?);
        } else if self.at_keyword("when") {
            self.bump();
            edge.when.push(self.expr()?);
        } else if self.at_keyword("reset") {
            self.bump();
            let clock = self.name("clock")?;
            let value = if matches!(self.peek(), Some(t) if t.kind == TokenKind::Assign) {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            edge.resets.push(ResetAst { clock, value });
        } else if self.at_keyword("set") {
            self.bump();
            let target = self.name("variable")?;
            let index = if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBracket) {
                self.bump();
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket, "`]`")?;
                Some(idx)
            } else {
                None
            };
            self.expect(&TokenKind::Assign, "`:=`")?;
            let value = self.expr()?;
            edge.updates.push(UpdateAst {
                target,
                index,
                value,
            });
        } else if self.at_keyword("controllable") {
            let span = self.bump().expect("peeked").span;
            if edge.controllable.is_some() {
                return Err(LangError::parse("duplicate controllability clause", span));
            }
            edge.controllable = Some(true);
        } else if self.at_keyword("uncontrollable") {
            let span = self.bump().expect("peeked").span;
            if edge.controllable.is_some() {
                return Err(LangError::parse("duplicate controllability clause", span));
            }
            edge.controllable = Some(false);
        } else {
            return Err(self.unexpected(
                "an edge clause (`guard`, `when`, `reset`, `set`, `controllable` \
                 or `uncontrollable`)",
            ));
        }
        Ok(())
    }

    fn constraints(&mut self) -> Result<Vec<ConstraintAst>, LangError> {
        let mut out = vec![self.constraint()?];
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
            self.bump();
            out.push(self.constraint()?);
        }
        Ok(out)
    }

    fn constraint(&mut self) -> Result<ConstraintAst, LangError> {
        let left = self.name("clock")?;
        let minus = if matches!(self.peek(), Some(t) if t.kind == TokenKind::Minus) {
            self.bump();
            Some(self.name("clock")?)
        } else {
            None
        };
        let op = self.cmp_op()?;
        let bound = self.expr()?;
        let span = left.span.to(bound.span);
        Ok(ConstraintAst {
            left,
            minus,
            op,
            bound,
            span,
        })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, LangError> {
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::NotEq) => CmpOp::Ne,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.bump();
        Ok(op)
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, LangError> {
        self.ite_expr()
    }

    /// Ternary conditional, right-associative, lowest precedence.
    fn ite_expr(&mut self) -> Result<ExprAst, LangError> {
        let cond = self.or_expr()?;
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::Question) {
            self.bump();
            let then = self.ite_expr()?;
            self.expect(&TokenKind::Colon, "`:` of the conditional")?;
            let otherwise = self.ite_expr()?;
            let span = cond.span.to(otherwise.span);
            Ok(ExprAst {
                kind: ExprKind::Ite(Box::new(cond), Box::new(then), Box::new(otherwise)),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprAst {
                kind: ExprKind::Or(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprAst {
                kind: ExprKind::And(Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    /// A single (non-associative) comparison.
    fn cmp_expr(&mut self) -> Result<ExprAst, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            Some(TokenKind::EqEq) => Some(CmpOp::Eq),
            Some(TokenKind::NotEq) => Some(CmpOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span.to(rhs.span);
            Ok(ExprAst {
                kind: ExprKind::Cmp(op, Box::new(lhs), Box::new(rhs)),
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprAst {
                kind: ExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => ArithOp::Mul,
                Some(TokenKind::Slash) => ArithOp::Div,
                Some(TokenKind::Percent) => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = ExprAst {
                kind: ExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, LangError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Bang) => {
                let start = self.bump().expect("peeked").span;
                let inner = self.unary_expr()?;
                let span = start.to(inner.span);
                Ok(ExprAst {
                    kind: ExprKind::Not(Box::new(inner)),
                    span,
                })
            }
            Some(TokenKind::Minus) => {
                // `-` directly followed by a number literal folds into a
                // negative constant; anything else (notably `-(e)`) builds an
                // arithmetic negation node.  This distinction is what lets
                // `Const(-7)` and `Neg(Const(7))` round-trip differently.
                if let Some(Token {
                    kind: TokenKind::Number(n),
                    ..
                }) = self.peek2()
                {
                    let n = *n;
                    let start = self.bump().expect("peeked").span;
                    let num = self.bump().expect("peeked").span;
                    let span = start.to(num);
                    Ok(ExprAst {
                        kind: ExprKind::Num(fold_literal(n, true, span)?),
                        span,
                    })
                } else {
                    let start = self.bump().expect("peeked").span;
                    let inner = self.unary_expr()?;
                    let span = start.to(inner.span);
                    Ok(ExprAst {
                        kind: ExprKind::Neg(Box::new(inner)),
                        span,
                    })
                }
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<ExprAst, LangError> {
        match self.peek() {
            Some(t) => match &t.kind {
                TokenKind::Number(n) => {
                    let n = *n;
                    let span = self.bump().expect("peeked").span;
                    Ok(ExprAst {
                        kind: ExprKind::Num(fold_literal(n, false, span)?),
                        span,
                    })
                }
                TokenKind::LParen => {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    // Parentheses only group; they leave no AST node, so the
                    // fully parenthesized printer output re-parses to an
                    // identical tree.
                    Ok(inner)
                }
                TokenKind::Ident(name) if name == "true" => {
                    let span = self.bump().expect("peeked").span;
                    Ok(ExprAst {
                        kind: ExprKind::Num(1),
                        span,
                    })
                }
                TokenKind::Ident(name) if name == "false" => {
                    let span = self.bump().expect("peeked").span;
                    Ok(ExprAst {
                        kind: ExprKind::Num(0),
                        span,
                    })
                }
                TokenKind::Ident(_) | TokenKind::Str(_) => {
                    let name = self.name("variable")?;
                    if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBracket) {
                        self.bump();
                        let idx = self.expr()?;
                        let close = self.expect(&TokenKind::RBracket, "`]`")?;
                        let span = name.span.to(close);
                        Ok(ExprAst {
                            kind: ExprKind::Index(name.node, Box::new(idx)),
                            span,
                        })
                    } else {
                        Ok(ExprAst {
                            kind: ExprKind::Name(name.node.clone()),
                            span: name.span,
                        })
                    }
                }
                _ => Err(self.unexpected("an expression")),
            },
            None => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_file() {
        let src = r#"
system "demo"
clock x
input press
automaton M {
    init location Idle
    location Busy { inv x <= 3 }
    edge Idle -> Busy on press? { guard x >= 1; reset x }
}
control: A<> M.Busy
"#;
        let file = parse_file(src).unwrap();
        assert_eq!(file.system_name.as_ref().unwrap().node, "demo");
        assert_eq!(file.clocks.len(), 1);
        assert_eq!(file.channels.len(), 1);
        let m = &file.automata[0];
        assert_eq!(m.locations.len(), 2);
        assert!(m.locations[0].init);
        assert_eq!(m.locations[1].invariant.len(), 1);
        assert_eq!(m.edges.len(), 1);
        let edge = &m.edges[0];
        assert_eq!(edge.guard.len(), 1);
        assert_eq!(edge.resets.len(), 1);
        assert!(edge.sync.as_ref().unwrap().receive);
        assert_eq!(file.control.as_ref().unwrap().raw, "control: A<> M.Busy");
    }

    #[test]
    fn negative_literal_vs_negation() {
        let src = "automaton A { init location L edge L -> L { when -7 == -(7) } }";
        let file = parse_file(src).unwrap();
        let when = &file.automata[0].edges[0].when[0];
        let ExprKind::Cmp(CmpOp::Eq, lhs, rhs) = &when.kind else {
            panic!("expected comparison, got {when:?}");
        };
        assert!(matches!(lhs.kind, ExprKind::Num(-7)));
        assert!(matches!(&rhs.kind, ExprKind::Neg(inner)
            if matches!(inner.kind, ExprKind::Num(7))));
    }

    #[test]
    fn precedence_and_associativity() {
        let src = "automaton A { init location L edge L -> L { when 1 + 2 * 3 == 7 && v < 2 } }";
        let file = parse_file(src).unwrap();
        let when = &file.automata[0].edges[0].when[0];
        let ExprKind::And(cmp, _) = &when.kind else {
            panic!("`&&` binds loosest here: {when:?}");
        };
        let ExprKind::Cmp(CmpOp::Eq, sum, _) = &cmp.kind else {
            panic!("expected `==` under `&&`");
        };
        assert!(
            matches!(&sum.kind, ExprKind::Arith(ArithOp::Add, _, mul)
                if matches!(mul.kind, ExprKind::Arith(ArithOp::Mul, _, _))),
            "`*` binds tighter than `+`"
        );
    }

    #[test]
    fn diagonal_constraints() {
        let src = "automaton A { init location L { inv x - y <= 2, x <= 5 } }";
        let file = parse_file(src).unwrap();
        let inv = &file.automata[0].locations[0].invariant;
        assert_eq!(inv.len(), 2);
        assert_eq!(inv[0].minus.as_ref().unwrap().node, "y");
        assert!(inv[1].minus.is_none());
    }

    #[test]
    fn errors_carry_spans() {
        let err = parse_file("clock").unwrap_err();
        assert!(err.message.contains("clock name"), "{err}");
        assert_eq!(err.span, Span::at(5));

        let src = "automaton A { init location L edge L -> L { guard x >= (1 } }";
        let err = parse_file(src).unwrap_err();
        assert!(err.message.contains("`)`"), "{err}");
        assert_eq!(&src[err.span.start..err.span.end], "}");

        let err = parse_file("frobnicate x").unwrap_err();
        assert!(err.message.contains("unknown declaration"), "{err}");
        assert_eq!(err.span, Span::new(0, 10));
    }

    #[test]
    fn keywords_rejected_as_names_unless_quoted() {
        let err = parse_file("clock guard").unwrap_err();
        assert!(err.message.contains("keyword"), "{err}");
        let file = parse_file("clock \"guard\"").unwrap();
        assert_eq!(file.clocks[0].node, "guard");
    }

    #[test]
    fn duplicate_control_rejected() {
        let err = parse_file("control: A<> x\ncontrol: A<> y\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }
}
