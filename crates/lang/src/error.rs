//! Span-carrying diagnostics for the `.tg` pipeline.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `position`.
    #[must_use]
    pub fn at(position: usize) -> Self {
        Span {
            start: position,
            end: position,
        }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// What stage of the pipeline rejected the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LangErrorKind {
    /// The input could not be tokenized.
    Lex,
    /// The token stream did not match the grammar.
    Parse,
    /// A name could not be resolved or a declaration is invalid.
    Lower,
    /// The `control:` line was rejected by the test-purpose parser.
    Control,
}

impl fmt::Display for LangErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LangErrorKind::Lex => "lexical error",
            LangErrorKind::Parse => "parse error",
            LangErrorKind::Lower => "model error",
            LangErrorKind::Control => "test-purpose error",
        };
        f.write_str(s)
    }
}

/// An error produced while parsing or lowering a `.tg` file.
///
/// Every error carries the byte [`Span`] of the offending source text;
/// [`LangError::render`] turns it into a rustc-style report with the source
/// line and a caret underline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// Which stage rejected the input.
    pub kind: LangErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Where in the source the problem is.
    pub span: Span,
}

impl LangError {
    pub(crate) fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: LangErrorKind::Lex,
            message: message.into(),
            span,
        }
    }

    pub(crate) fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: LangErrorKind::Parse,
            message: message.into(),
            span,
        }
    }

    pub(crate) fn lower(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: LangErrorKind::Lower,
            message: message.into(),
            span,
        }
    }

    pub(crate) fn control(message: impl Into<String>, span: Span) -> Self {
        LangError {
            kind: LangErrorKind::Control,
            message: message.into(),
            span,
        }
    }

    /// 1-based `(line, column)` of the span start within `source`.
    ///
    /// Columns count characters, not bytes, so the caret lines up for any
    /// ASCII-art rendering of the line.
    #[must_use]
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = self.span.start.min(source.len());
        let mut line = 1;
        let mut line_start = 0;
        for (idx, ch) in source.char_indices() {
            if idx >= upto {
                break;
            }
            if ch == '\n' {
                line += 1;
                line_start = idx + 1;
            }
        }
        let column = source[line_start..upto].chars().count() + 1;
        (line, column)
    }

    /// Renders a rustc-style report: message, `file:line:col`, the source
    /// line and a caret underline covering the span.
    #[must_use]
    pub fn render(&self, source: &str, filename: &str) -> String {
        let (line, column) = self.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let width = self.span.end.saturating_sub(self.span.start).clamp(
            1,
            line_text.chars().count().saturating_sub(column - 1).max(1),
        );
        let gutter = line.to_string().len();
        format!(
            "{kind}: {msg}\n{pad:>gutter$} --> {file}:{line}:{column}\n\
             {pad:>gutter$} |\n{line} | {text}\n{pad:>gutter$} | {caret_pad}{carets}",
            kind = self.kind,
            msg = self.message,
            pad = "",
            gutter = gutter,
            file = filename,
            line = line,
            column = column,
            text = line_text,
            caret_pad = " ".repeat(column - 1),
            carets = "^".repeat(width),
        )
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (bytes {}..{})",
            self.kind, self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let src = "clock x\nclock y\n";
        let err = LangError::parse("boom", Span::new(8, 13));
        assert_eq!(err.line_col(src), (2, 1));
        let err = LangError::parse("boom", Span::new(14, 15));
        assert_eq!(err.line_col(src), (2, 7));
    }

    #[test]
    fn render_has_caret_under_offender() {
        let src = "clock x\nclocc y\n";
        let err = LangError::parse("unknown keyword `clocc`", Span::new(8, 13));
        let report = err.render(src, "bad.tg");
        assert!(report.contains("bad.tg:2:1"), "{report}");
        assert!(report.contains("clocc y"), "{report}");
        assert!(report.contains("^^^^^"), "{report}");
    }

    #[test]
    fn render_survives_spans_past_eof() {
        let src = "x";
        let err = LangError::parse("unexpected end of input", Span::at(1));
        let report = err.render(src, "t.tg");
        assert!(report.contains("t.tg:1:2"), "{report}");
    }

    #[test]
    fn span_union() {
        assert_eq!(Span::new(3, 5).to(Span::new(1, 4)), Span::new(1, 5));
    }
}
