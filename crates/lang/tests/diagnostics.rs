//! Diagnostics contract over the malformed-input corpus:
//!
//! every file in `tests/corpus/` must be **rejected** with a span-carrying
//! [`LangError`] — never a panic — and the error must render into a
//! rustc-style report that points into the file.

use std::path::PathBuf;
use tiga_lang::parse_model;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|entry| entry.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tg"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 15,
        "corpus shrank to {} files — keep the malformed inputs",
        files.len()
    );
    files
}

#[test]
fn every_corpus_file_is_rejected_with_a_span() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).expect("readable corpus file");
        // Catch panics explicitly so a regression names the offending file.
        let result = std::panic::catch_unwind(|| parse_model(&source));
        let result = result.unwrap_or_else(|_| panic!("{name}: parse_model PANICKED"));
        let err = result.err().unwrap_or_else(|| {
            panic!("{name}: expected a diagnostic, but the file parsed successfully")
        });
        assert!(
            err.span.start <= err.span.end,
            "{name}: inverted span {:?}",
            err.span
        );
        assert!(
            err.span.start <= source.len(),
            "{name}: span {:?} outside the {}-byte source",
            err.span,
            source.len()
        );
        assert!(!err.message.is_empty(), "{name}: empty message");
        let report = err.render(&source, &name);
        assert!(
            report.contains(&format!("{name}:")),
            "{name}: report lacks a file:line:col locus\n{report}"
        );
        assert!(
            report.contains('^'),
            "{name}: report lacks a caret underline\n{report}"
        );
    }
}

#[test]
fn specific_diagnostics_name_the_problem() {
    let expectations = [
        ("unbalanced_guard.tg", "`)`"),
        ("unknown_clock.tg", "unknown clock `y`"),
        ("non_integer_bound.tg", "non-integer"),
        ("unknown_location.tg", "unknown location `Nowhere`"),
        ("unknown_channel.tg", "unknown channel `zap`"),
        ("duplicate_clock.tg", "duplicate"),
        ("inverted_range.tg", "range"),
        ("negative_array_size.tg", "positive size"),
        ("huge_array.tg", "maximum"),
        ("two_init_locations.tg", "two `init` locations"),
        ("stray_character.tg", "unexpected character `$`"),
        ("overflowing_literal.tg", "overflows"),
        ("bare_overflowing_literal.tg", "overflows i64"),
        ("keyword_as_name.tg", "keyword `guard`"),
        ("bad_control_line.tg", "Ghost"),
        ("negative_time_bound.tg", "a time bound in 0..="),
        ("huge_time_bound.tg", "a time bound in 0..="),
        ("clock_in_data_guard.tg", "clocks cannot appear"),
        ("no_automaton.tg", "at least one automaton"),
        ("missing_arrow.tg", "`->`"),
    ];
    for (file, needle) in expectations {
        let path = corpus_dir().join(file);
        let source = std::fs::read_to_string(&path).expect("corpus file exists");
        let err = parse_model(&source).expect_err(file);
        assert!(
            err.message.contains(needle),
            "{file}: expected message containing {needle:?}, got: {}",
            err.message
        );
    }
}

#[test]
fn spans_single_out_the_right_source_text() {
    let source = std::fs::read_to_string(corpus_dir().join("unknown_clock.tg")).unwrap();
    let err = parse_model(&source).unwrap_err();
    assert_eq!(&source[err.span.start..err.span.end], "y");

    let source = std::fs::read_to_string(corpus_dir().join("duplicate_clock.tg")).unwrap();
    let err = parse_model(&source).unwrap_err();
    // The *second* declaration is the offender.
    assert!(err.span.start > source.find("clock x").unwrap());

    // Bound errors re-base the tctl position onto the control line: the span
    // lands on the offending literal, not at the start of the line.
    let source = std::fs::read_to_string(corpus_dir().join("negative_time_bound.tg")).unwrap();
    let err = parse_model(&source).unwrap_err();
    assert_eq!(&source[err.span.start..err.span.end], "-");

    let source = std::fs::read_to_string(corpus_dir().join("huge_time_bound.tg")).unwrap();
    let err = parse_model(&source).unwrap_err();
    assert!(source[err.span.start..].starts_with("536870911"));
}
