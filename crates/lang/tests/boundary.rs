//! Integer-boundary pinning for the `.tg` pipeline (corpus sibling of the
//! malformed `overflowing_literal.tg`):
//!
//! * `-2147483648` (`i32::MIN`) survives lexer → parser → lowering →
//!   [`print_system`] round trips, printed as a *literal* — not as the
//!   structurally different negation `-(2147483648)`;
//! * `-9223372036854775808` (`i64::MIN`) does too, which requires the lexer
//!   to carry literal magnitudes as `u64`;
//! * the bare magnitude `9223372036854775808` (no leading minus) is a
//!   diagnostic, not a panic or a silent wrap.

use std::path::PathBuf;
use tiga_lang::{expr_to_tg, parse_model, print_system};
use tiga_model::Expr;

fn corpus_valid(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus_valid")
        .join(name);
    std::fs::read_to_string(path).expect("valid corpus file exists")
}

#[test]
fn i32_min_corpus_file_roundtrips() {
    let source = corpus_valid("negative_literal_boundary.tg");
    let model = parse_model(&source).expect("boundary corpus parses");
    let vars = model.system.vars();

    // Lowered values are exact.
    let i32min = vars.lookup("I32MIN").expect("declared");
    assert_eq!(vars.decl(i32min).initial(), i64::from(i32::MIN));
    let i64min = vars.lookup("I64MIN").expect("declared");
    assert_eq!(vars.decl(i64min).initial(), i64::MIN);
    let i64max = vars.lookup("I64MAX").expect("declared");
    assert_eq!(vars.decl(i64max).initial(), i64::MAX);
    let v = vars.lookup("v").expect("declared");
    assert_eq!(vars.decl(v).lower(), i64::from(i32::MIN));
    assert_eq!(vars.decl(v).initial(), i64::from(i32::MIN));

    // The guard keeps the literal-vs-negation distinction: `-2147483648`
    // lowers to Const, `-(2147483648)` to Neg(Const).
    let edge = &model.system.automata()[0].edges()[0];
    let when = expr_to_tg(edge.guard.data.as_ref().expect("when clause"), vars);
    assert!(when.contains("-2147483648"), "{when}");
    assert!(when.contains("-(2147483648)"), "{when}");

    // Full round trip: parse(print(sys)) ≡ sys, and printing is a fixpoint.
    let printed = print_system(&model.system, None);
    assert!(printed.contains("= -2147483648"), "{printed}");
    assert!(printed.contains("= -9223372036854775808"), "{printed}");
    let again = parse_model(&printed).expect("printed boundary file parses");
    assert_eq!(again.system, model.system);
    assert_eq!(print_system(&again.system, None), printed);
}

#[test]
fn printer_emits_boundary_constants_as_literals() {
    let table = tiga_model::VarTable::new();
    assert_eq!(
        expr_to_tg(&Expr::constant(i64::from(i32::MIN)), &table),
        "-2147483648"
    );
    assert_eq!(
        expr_to_tg(&Expr::constant(i64::MIN), &table),
        "-9223372036854775808"
    );
    assert_eq!(
        expr_to_tg(&Expr::Neg(Box::new(Expr::constant(2_147_483_648))), &table),
        "-(2147483648)"
    );
}

#[test]
fn i64_min_expression_roundtrips_programmatically() {
    // A system built in memory with i64::MIN in a data guard must survive
    // print → parse, which is exactly where an i64-magnitude lexer is
    // required: the printed literal's magnitude is 2^63.
    let mut b = tiga_model::SystemBuilder::new("i64min");
    let v = b.int_var("v", -4, 4, 0).unwrap();
    let mut a = tiga_model::AutomatonBuilder::new("A");
    let l0 = a.location("L0").unwrap();
    a.add_edge(
        tiga_model::EdgeBuilder::new(l0, l0)
            .when(Expr::var(v).gt(Expr::constant(i64::MIN)))
            .when(Expr::var(v).lt(Expr::constant(i64::MAX))),
    );
    b.add_automaton(a.build().unwrap()).unwrap();
    let system = b.build().unwrap();
    let printed = print_system(&system, None);
    let reparsed = parse_model(&printed)
        .unwrap_or_else(|e| panic!("printed i64::MIN does not re-parse: {e}\n---\n{printed}"));
    assert_eq!(reparsed.system, system);
}

#[test]
fn bare_i64_min_magnitude_is_rejected_with_a_span() {
    for source in [
        "const K = 9223372036854775808\nautomaton A { init location L }",
        "automaton A { init location L edge L -> L { when 9223372036854775808 == 0 } }",
        "const K = -9223372036854775809\nautomaton A { init location L }",
    ] {
        let err = parse_model(source).expect_err("out-of-range literal");
        assert!(err.message.contains("overflows i64"), "{err}");
        assert!(
            source[err.span.start..err.span.end].contains("9223372036854775808")
                || source[err.span.start..err.span.end].contains("-9223372036854775809"),
            "span {:?} does not cover the literal",
            err.span
        );
    }
}
