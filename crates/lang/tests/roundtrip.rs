//! The serializer/parser round-trip contract:
//!
//! ```text
//! parse(print(sys)) ≡ sys        (structural equality on `System`)
//! ```
//!
//! pinned across the whole benchmark model zoo (products *and* plants), the
//! seeded mutant pools derived from every plant, and randomly generated
//! expression trees.

use proptest::prelude::*;
use tiga_bench::model_zoo;
use tiga_lang::{parse_model, print_system};
use tiga_model::{CmpOp, Expr, System, VarTable};
use tiga_models::{coffee_machine, leader_election, smart_light};
use tiga_testing::{generate_mutants, MutationConfig};

/// One full round trip, asserting structural equality and re-printing
/// stability (print ∘ parse ∘ print is a fixpoint).
fn assert_roundtrip(system: &System, context: &str) {
    let printed = print_system(system, None);
    let model = parse_model(&printed)
        .unwrap_or_else(|e| panic!("{context}: printed .tg does not parse:\n{e}\n---\n{printed}"));
    assert_eq!(
        &model.system, system,
        "{context}: parse(print(sys)) differs from sys\n---\n{printed}"
    );
    let reprinted = print_system(&model.system, None);
    assert_eq!(
        printed, reprinted,
        "{context}: printing is not a fixpoint after one round trip"
    );
}

#[test]
fn zoo_products_roundtrip_with_purposes() {
    for instance in model_zoo() {
        let printed = print_system(&instance.system, Some(&instance.purpose));
        let model = parse_model(&printed).unwrap_or_else(|e| {
            panic!(
                "{}/{}: printed .tg does not parse:\n{e}",
                instance.model, instance.purpose_name
            )
        });
        assert_eq!(
            model.system, instance.system,
            "{}/{} system differs after round trip",
            instance.model, instance.purpose_name
        );
        let purpose = model.purpose.expect("control line survives the round trip");
        assert_eq!(
            purpose, instance.purpose,
            "{}/{} purpose differs after round trip",
            instance.model, instance.purpose_name
        );
    }
}

#[test]
fn zoo_plants_roundtrip() {
    let plants = [
        ("smart_light", smart_light::plant().unwrap()),
        ("coffee_machine", coffee_machine::plant().unwrap()),
        (
            "lep3",
            leader_election::plant(leader_election::LepConfig::new(3)).unwrap(),
        ),
        (
            "lep4-detailed",
            leader_election::plant(leader_election::LepConfig::detailed(4)).unwrap(),
        ),
    ];
    for (name, plant) in &plants {
        assert_roundtrip(plant, name);
    }
}

#[test]
fn seeded_mutants_roundtrip() {
    let plants = [
        ("smart_light", smart_light::plant().unwrap()),
        ("coffee_machine", coffee_machine::plant().unwrap()),
        (
            "lep3",
            leader_election::plant(leader_election::LepConfig::new(3)).unwrap(),
        ),
    ];
    let mut total = 0;
    for (name, plant) in &plants {
        let mutants = generate_mutants(plant, &MutationConfig::default()).unwrap();
        assert!(!mutants.is_empty(), "{name} generates no mutants");
        for mutant in &mutants {
            assert_roundtrip(&mutant.system, &format!("{name}/{}", mutant.name));
        }
        total += mutants.len();
    }
    assert!(total >= 30, "mutant pools shrank suspiciously: {total}");
}

#[test]
fn awkward_names_roundtrip_quoted() {
    // Names that collide with keywords or are not identifiers must be quoted
    // by the printer and survive the trip.
    let mut b = tiga_model::SystemBuilder::new("weird system/name");
    let _x = b.clock("guard").unwrap();
    let press = b.input_channel("reset").unwrap();
    b.int_var("când", 0, 3, 1).unwrap();
    let mut a = tiga_model::AutomatonBuilder::new("edge");
    let l0 = a.location("init").unwrap();
    let l1 = a.location("with space").unwrap();
    a.add_edge(tiga_model::EdgeBuilder::new(l0, l1).input(press));
    b.add_automaton(a.build().unwrap()).unwrap();
    let system = b.build().unwrap();
    assert_roundtrip(&system, "awkward-names");
}

#[test]
fn programmatic_purposes_print_reparseably() {
    // A purpose built from a predicate (no source text) must be
    // reconstructed into parseable tctl syntax, not the Display placeholder.
    let system = smart_light::product().unwrap();
    let (aut, loc) = system.location_by_qualified_name("IUT.Bright").unwrap();
    let purpose =
        tiga_tctl::TestPurpose::reachability(tiga_tctl::StatePredicate::Location(aut, loc));
    assert!(purpose.source.is_empty());
    let printed = print_system(&system, Some(&purpose));
    let model = parse_model(&printed)
        .unwrap_or_else(|e| panic!("programmatic purpose does not re-parse: {e}\n---\n{printed}"));
    assert_eq!(model.system, system);
    let reparsed = model.purpose.expect("control line present");
    assert_eq!(reparsed.quantifier, purpose.quantifier);
    assert_eq!(reparsed.predicate, purpose.predicate);
}

#[test]
fn bounded_purposes_roundtrip() {
    let system = smart_light::product().unwrap();
    // Parsed bounded purposes keep their source verbatim through the printer.
    for control in [
        "control: A<><=7 IUT.Bright",
        "control: A[]<=0 not IUT.Bright",
    ] {
        let purpose = tiga_tctl::TestPurpose::parse(control, &system).unwrap();
        let printed = print_system(&system, Some(&purpose));
        let model = parse_model(&printed)
            .unwrap_or_else(|e| panic!("`{control}` does not survive printing: {e}\n{printed}"));
        assert_eq!(model.system, system, "`{control}` perturbed the system");
        assert_eq!(
            model.purpose.expect("control line present"),
            purpose,
            "`{control}` differs after the round trip"
        );
    }
    // A programmatic bounded purpose reconstructs with its bound intact.
    let (aut, loc) = system.location_by_qualified_name("IUT.Bright").unwrap();
    let purpose =
        tiga_tctl::TestPurpose::reachability(tiga_tctl::StatePredicate::Location(aut, loc))
            .with_bound(9);
    assert!(purpose.source.is_empty());
    let printed = print_system(&system, Some(&purpose));
    let model = parse_model(&printed)
        .unwrap_or_else(|e| panic!("programmatic bounded purpose does not re-parse: {e}"));
    let reparsed = model.purpose.expect("control line present");
    assert_eq!(reparsed.bound, Some(9));
    assert_eq!(reparsed.quantifier, purpose.quantifier);
    assert_eq!(reparsed.predicate, purpose.predicate);
}

// ---- random expression trees -------------------------------------------

/// A variable table with a scalar and an array, matching indices 0 and 1.
fn expr_table() -> VarTable {
    let mut table = VarTable::new();
    table.declare("n", 1, -8, 8, 0).unwrap();
    table.declare("buf", 3, 0, 1, 0).unwrap();
    table
}

fn arb_cmp() -> proptest::strategy::Union<CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Random expression trees over the two declared variables.
fn arb_expr(depth: u32) -> proptest::strategy::Union<Expr> {
    let scalar = tiga_model::VarId::from_index(0);
    let array = tiga_model::VarId::from_index(1);
    if depth == 0 {
        return prop_oneof![
            (-50i64..50).prop_map(Expr::constant),
            Just(Expr::var(scalar)),
            (0i64..3).prop_map(move |i| Expr::index(array, Expr::constant(i))),
        ];
    }
    let sub = move || arb_expr(depth - 1);
    prop_oneof![
        (-50i64..50).prop_map(Expr::constant),
        Just(Expr::var(scalar)),
        (0i64..3).prop_map(move |i| Expr::index(array, Expr::constant(i))),
        sub().prop_map(|e| Expr::Neg(Box::new(e))),
        sub().prop_map(Expr::negated),
        (sub(), sub()).prop_map(|(a, b)| a + b),
        (sub(), sub()).prop_map(|(a, b)| a - b),
        (sub(), sub()).prop_map(|(a, b)| a * b),
        (sub(), sub()).prop_map(|(a, b)| Expr::Div(Box::new(a), Box::new(b))),
        (sub(), sub()).prop_map(|(a, b)| Expr::Mod(Box::new(a), Box::new(b))),
        (arb_cmp(), sub(), sub()).prop_map(|(op, a, b)| a.cmp(op, b)),
        (sub(), sub()).prop_map(|(a, b)| a.and(b)),
        (sub(), sub()).prop_map(|(a, b)| a.or(b)),
        (sub(), sub(), sub()).prop_map(|(c, t, e)| Expr::ite(c, t, e)),
    ]
}

proptest! {
    /// Print → parse over a whole system whose edge guard carries the random
    /// expression, so the expression goes through the real pipeline.
    #[test]
    fn random_expressions_roundtrip(expr in arb_expr(3)) {
        let table = expr_table();
        let mut b = tiga_model::SystemBuilder::new("expr-prop");
        b.int_var("n", -8, 8, 0).unwrap();
        b.int_array("buf", 3, 0, 1, 0).unwrap();
        let mut a = tiga_model::AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        a.add_edge(tiga_model::EdgeBuilder::new(l0, l0).when(expr.clone()));
        b.add_automaton(a.build().unwrap()).unwrap();
        let system = b.build().unwrap();

        let printed = print_system(&system, None);
        let reparsed = parse_model(&printed).unwrap_or_else(|e| panic!(
            "printed expression `{}` does not parse: {e}",
            tiga_lang::expr_to_tg(&expr, &table)
        ));
        prop_assert_eq!(&reparsed.system, &system);
    }
}
