//! In-repo stand-in for the `rand` crate, providing the subset of the 0.8
//! API used by this workspace (see `crates/vendor/README.md`).
//!
//! The core generator is xoshiro256++ seeded through SplitMix64.  It is
//! deterministic for a given seed but its stream is **not** identical to the
//! real `rand::rngs::StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's `standard` f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious bias: {heads}");
    }
}
