//! In-repo stand-in for the `criterion` crate, providing the subset of the
//! 0.5 API used by this workspace (see `crates/vendor/README.md`).
//!
//! Instead of statistics and HTML reports, each benchmark is calibrated with
//! one warm-up call, run for enough iterations to fill a small time budget,
//! and reported as one `bench <id> ... <mean>/iter` line on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget each benchmark's measurement loop aims to fill.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iteration cap so fast benchmarks do not spin excessively.
const MAX_ITERS: u64 = 100_000;

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (kept for API compatibility; the
    /// stand-in only uses it as an iteration floor).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Benchmarks one function parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        run_benchmark(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus the
/// parameter value it was run with.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_floor: u64,
    mean: Option<Duration>,
    total_iters: u64,
}

impl Bencher {
    /// Calibrates and times `f`, recording the mean duration per call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let warmup = warmup_start.elapsed().max(Duration::from_nanos(1));

        let by_budget = (MEASURE_BUDGET.as_nanos() / warmup.as_nanos()).max(1) as u64;
        let iters = by_budget.clamp(self.iters_floor.min(10), MAX_ITERS);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean = Some(elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
        self.total_iters = iters;
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_floor: sample_size as u64,
        mean: None,
        total_iters: 0,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!(
            "bench {id:<50} {:>12} /iter ({} iters)",
            format!("{mean:.1?}"),
            bencher.total_iters
        ),
        None => println!("bench {id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a group of benchmark functions, with or without a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags such as `--bench`; nothing to parse
            // for the stand-in.
            $($group();)+
        }
    };
}
