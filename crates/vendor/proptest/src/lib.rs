//! In-repo stand-in for the `proptest` crate, providing the subset of the
//! API used by this workspace (see `crates/vendor/README.md`).
//!
//! Differences from the real crate:
//!
//! * cases are generated from a per-test deterministic seed (the hash of the
//!   test name), so failures are reproducible across runs;
//! * failing inputs are printed but **not shrunk**;
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning errors;
//! * generated values must be `Clone + Debug` (used by the failure report).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and deterministic RNG for the case runner.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates a generator seeded from a test name (FNV-1a hash), so each
        /// property gets its own reproducible stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Samples uniformly from an integer range.
        pub fn gen_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty index range");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values for which `f` returns `false`.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Simultaneously maps and filters generated values.
        fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// How many rejections a filtering combinator tolerates per draw.
    const MAX_REJECTS: usize = 1_000;

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("strategy filter `{}` rejected too many values", self.whence);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone, Debug)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("strategy filter `{}` rejected too many values", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union of the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_index(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes a strategy (coercion helper used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span == 0 { 0 } else { rng.gen_index(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Generates `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs for
/// the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                    let reported = values.clone();
                    let ($($arg,)+) = values;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest stand-in: {} failed at case {} with inputs {:#?}",
                            stringify!($name),
                            case,
                            reported
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
