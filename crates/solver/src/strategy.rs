//! State-based winning strategies.
//!
//! A strategy maps (discrete state, clock valuation) pairs to a decision:
//! either *take* a specific controllable joint edge now, or *wait* (the `λ`
//! move of the paper).  Strategies are extracted from the rank-annotated
//! winning sets computed by the backward fixpoint and are guaranteed to make
//! progress toward the goal: every prescribed action leads into a
//! strictly-lower-rank part of the winning set, and every prescribed wait is
//! justified by an eventual action, a rank decrease by pure delay, or an
//! opponent move forced by an invariant.

use std::collections::HashMap;
use std::fmt;
use tiga_dbm::Dbm;
use tiga_model::{DiscreteState, JointEdge, System};

/// What the tester should do in a region of a discrete state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Immediately take this controllable joint edge (send the input).
    Take(JointEdge),
    /// Wait (`λ`): let time pass or let the plant produce an output.
    Wait,
}

/// One rule of a state-based strategy: inside `zone`, the given decision is
/// sound and leads toward the goal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyRule {
    /// Fixpoint round at which this region was justified (lower is closer to
    /// the goal).
    pub rank: u32,
    /// Clock zone in which the rule applies.
    pub zone: Dbm,
    /// The prescribed decision.
    pub decision: Decision,
}

/// The decision returned by [`Strategy::decide`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategyDecision<'a> {
    /// Send the input corresponding to this controllable joint edge now.
    Take(&'a JointEdge),
    /// Wait; the current state's rank is reported for diagnostics.
    Wait {
        /// Rank of the waiting region (distance-to-goal measure).
        rank: u32,
    },
}

/// A state-based winning strategy (the paper's Definition 6, restricted to
/// the winning states).
///
/// Equality is structural — same dimension, same states, same rules in the
/// same order — which is what the serialization roundtrip
/// (`parse_strategy(print_strategy(s)) == s`) pins.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Strategy {
    dim: usize,
    entries: HashMap<DiscreteState, Vec<StrategyRule>>,
}

impl Strategy {
    /// Creates an empty strategy over clock dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Strategy {
            dim,
            entries: HashMap::new(),
        }
    }

    /// DBM dimension of the rule zones.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a rule for a discrete state.
    pub fn add_rule(&mut self, discrete: DiscreteState, rule: StrategyRule) {
        if rule.zone.is_empty() {
            return;
        }
        self.entries.entry(discrete).or_default().push(rule);
    }

    /// Number of discrete states with at least one rule.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// The rules attached to a discrete state, if any.
    #[must_use]
    pub fn rules_for(&self, discrete: &DiscreteState) -> Option<&[StrategyRule]> {
        self.entries.get(discrete).map(Vec::as_slice)
    }

    /// Iterates over all (state, rules) entries.
    pub fn iter(&self) -> impl Iterator<Item = (&DiscreteState, &[StrategyRule])> {
        self.entries.iter().map(|(d, r)| (d, r.as_slice()))
    }

    /// The rank of a concrete valuation: the smallest rank of a *wait/region*
    /// rule containing it, i.e. its distance-to-goal measure.
    ///
    /// Returns `None` if the valuation is not covered (not a winning state).
    #[must_use]
    pub fn rank_of(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<u32> {
        let rules = self.entries.get(discrete)?;
        let vals = dbm_point(ticks);
        rules
            .iter()
            .filter(|r| matches!(r.decision, Decision::Wait) && r.zone.contains_at(&vals, scale))
            .map(|r| r.rank)
            .min()
    }

    /// Decides what the tester should do at a concrete state.
    ///
    /// Returns `None` if the state is not covered by the strategy (e.g. the
    /// run has left the winning region, which cannot happen against a
    /// conformant implementation).
    #[must_use]
    pub fn decide(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<StrategyDecision<'_>> {
        let rules = self.entries.get(discrete)?;
        let vals = dbm_point(ticks);
        // Single pass: track the wait rank (min over containing Wait rules)
        // and the best containing Take rule (min rank, first-in-order wins
        // ties) simultaneously.  The rank gate `take.rank <= wait rank` is
        // applied at the end: the minimum over the gated subset equals the
        // global minimum whenever the gate admits it, and the gate rejecting
        // the global minimum rejects the whole subset.
        let mut wait_rank: Option<u32> = None;
        let mut best: Option<&StrategyRule> = None;
        for rule in rules {
            match rule.decision {
                Decision::Wait => {
                    if wait_rank.is_none_or(|r| rule.rank < r)
                        && rule.zone.contains_at(&vals, scale)
                    {
                        wait_rank = Some(rule.rank);
                    }
                }
                Decision::Take(_) => {
                    if best.is_none_or(|b| rule.rank < b.rank)
                        && rule.zone.contains_at(&vals, scale)
                    {
                        best = Some(rule);
                    }
                }
            }
        }
        // Rank 0 regions are goal states; nothing to do (the executor detects
        // the goal through the test purpose), report Wait.
        let rank = wait_rank?;
        match best {
            Some(rule) if rule.rank <= rank => match &rule.decision {
                Decision::Take(je) => Some(StrategyDecision::Take(je)),
                Decision::Wait => unreachable!("best only holds Take rules"),
            },
            _ => Some(StrategyDecision::Wait { rank }),
        }
    }

    /// The earliest additional delay (in ticks) after which a `Take` rule
    /// becomes applicable by pure delay, if any.
    ///
    /// The executor uses this as a wake-up hint while waiting; it re-evaluates
    /// [`Strategy::decide`] at that moment.
    ///
    /// Only `Take` rules that pass the same rank gate as [`Strategy::decide`]
    /// (rule rank at most the current wait rank) contribute: waking up for a
    /// higher-rank action that `decide` would then refuse to take is a
    /// spurious wakeup.
    #[must_use]
    pub fn next_take_delay(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<i64> {
        let rules = self.entries.get(discrete)?;
        let rank = self.rank_of(discrete, ticks, scale)?;
        let vals = dbm_point(ticks);
        let mut best: Option<i64> = None;
        for rule in rules {
            if !matches!(rule.decision, Decision::Take(_)) || rule.rank > rank {
                continue;
            }
            if let Some(window) = rule.zone.delay_window_at(&vals, scale) {
                if let Some(delay) = window.pick() {
                    if best.is_none_or(|b| delay < b) {
                        best = Some(delay);
                    }
                }
            }
        }
        best
    }

    /// Renders the strategy in the style of the paper's Fig. 5.
    #[must_use]
    pub fn display<'a>(&'a self, system: &'a System) -> DisplayStrategy<'a> {
        DisplayStrategy {
            strategy: self,
            system,
        }
    }
}

/// Converts tick-valued clocks to the DBM point layout (reference clock 0
/// prepended).
fn dbm_point(ticks: &[i64]) -> Vec<i64> {
    let mut vals = Vec::with_capacity(ticks.len() + 1);
    vals.push(0);
    vals.extend_from_slice(ticks);
    vals
}

/// Helper returned by [`Strategy::display`]; prints a Fig.-5-style listing.
pub struct DisplayStrategy<'a> {
    strategy: &'a Strategy,
    system: &'a System,
}

impl fmt::Display for DisplayStrategy<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.system.clock_names();
        // Sort states for a stable, readable listing.
        let mut states: Vec<&DiscreteState> = self.strategy.entries.keys().collect();
        states.sort_by_key(|d| format!("{}", d.display(self.system)));
        for discrete in states {
            writeln!(f, "State: ( {} )", discrete.display(self.system))?;
            let mut rules = self.strategy.entries[discrete].clone();
            rules.sort_by_key(|r| (r.rank, matches!(r.decision, Decision::Wait)));
            for rule in &rules {
                match &rule.decision {
                    Decision::Wait => writeln!(
                        f,
                        "  While you are in ({}), wait.",
                        rule.zone.display_with(&names)
                    )?,
                    Decision::Take(je) => writeln!(
                        f,
                        "  When you are in ({}), take transition {}.",
                        rule.zone.display_with(&names),
                        je.label(self.system)
                    )?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_dbm::Bound;
    use tiga_model::{AutomatonBuilder, EdgeBuilder, SystemBuilder};

    fn tiny_system() -> (System, DiscreteState, JointEdge) {
        let mut b = SystemBuilder::new("t");
        let _x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let mut plant = AutomatonBuilder::new("P");
        let l0 = plant.location("L0").unwrap();
        let l1 = plant.location("L1").unwrap();
        plant.add_edge(EdgeBuilder::new(l0, l1).input(go));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("U");
        let u0 = user.location("U0").unwrap();
        user.add_edge(EdgeBuilder::new(u0, u0).output(go));
        b.add_automaton(user.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let d = sys.initial_discrete();
        let je = sys.enabled_joint_edges(&d).unwrap().remove(0);
        (sys, d, je)
    }

    fn zone_between(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::le(-lo));
        z.constrain(1, 0, Bound::le(hi));
        z
    }

    #[test]
    fn decide_prefers_low_rank_take_within_rank() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        // Whole space is a rank-2 wait region; action applies for x in [2, 5]
        // at rank 2, and a closer action for x in [4, 5] at rank 1.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: zone_between(2, 5),
                decision: Decision::Take(je.clone()),
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(4, 5),
                decision: Decision::Take(je.clone()),
            },
        );
        // x = 0: no take applicable yet -> wait at rank 2.
        assert_eq!(
            strat.decide(&d, &[0], 4),
            Some(StrategyDecision::Wait { rank: 2 })
        );
        // x = 3: the rank-2 take applies.
        assert!(matches!(
            strat.decide(&d, &[12], 4),
            Some(StrategyDecision::Take(_))
        ));
        // x = 4.5: both takes apply; the lower-rank one is still a Take.
        assert!(matches!(
            strat.decide(&d, &[18], 4),
            Some(StrategyDecision::Take(_))
        ));
        // Rank query follows the wait regions.
        assert_eq!(strat.rank_of(&d, &[0], 4), Some(2));
        // Unknown discrete state is uncovered.
        let mut other = d.clone();
        other.locations[0] = tiga_model::LocationId::from_index(1);
        assert_eq!(strat.decide(&other, &[0], 4), None);
    }

    #[test]
    fn higher_rank_take_is_not_used_from_lower_rank_region() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        // Rank-1 wait region covering everything...
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        // ...and a rank-3 action: taking it would move *away* from the goal.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 3,
                zone: Dbm::universe(2),
                decision: Decision::Take(je),
            },
        );
        assert_eq!(
            strat.decide(&d, &[0], 4),
            Some(StrategyDecision::Wait { rank: 1 })
        );
    }

    #[test]
    fn next_take_delay_finds_entry_point() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(3, 6),
                decision: Decision::Take(je),
            },
        );
        // From x = 1 at scale 4, the action region starts after 8 ticks.
        assert_eq!(strat.next_take_delay(&d, &[4], 4), Some(8));
        // From x = 7 the region is behind: no entry by delay.
        assert_eq!(strat.next_take_delay(&d, &[28], 4), None);
    }

    #[test]
    fn next_take_delay_ignores_takes_above_the_wait_rank() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        // Rank-1 wait region covering everything...
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        // ...and a rank-3 action ahead by delay.  `decide` would refuse it
        // (rank 3 > wait rank 1), so waking up for it is spurious.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 3,
                zone: zone_between(3, 6),
                decision: Decision::Take(je.clone()),
            },
        );
        assert_eq!(strat.next_take_delay(&d, &[4], 4), None);
        // A rank-1 action further out is admissible and wins the hint.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(5, 6),
                decision: Decision::Take(je),
            },
        );
        assert_eq!(strat.next_take_delay(&d, &[4], 4), Some(16));
        // An uncovered valuation yields no hint at all.
        let mut other = d.clone();
        other.locations[0] = tiga_model::LocationId::from_index(1);
        assert_eq!(strat.next_take_delay(&other, &[4], 4), None);
    }

    #[test]
    fn display_lists_rules_in_fig5_style() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(0, 2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d,
            StrategyRule {
                rank: 1,
                zone: zone_between(2, 4),
                decision: Decision::Take(je),
            },
        );
        let text = format!("{}", strat.display(&sys));
        assert!(text.contains("State: ( P.L0, U.U0 )"), "{text}");
        assert!(text.contains("wait."), "{text}");
        assert!(text.contains("take transition go?"), "{text}");
        assert_eq!(strat.state_count(), 1);
        assert_eq!(strat.rule_count(), 2);
    }

    #[test]
    fn empty_zones_are_not_stored() {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        let mut empty = Dbm::universe(2);
        empty.constrain(1, 0, Bound::lt(0));
        strat.add_rule(
            d,
            StrategyRule {
                rank: 1,
                zone: empty,
                decision: Decision::Take(je),
            },
        );
        assert_eq!(strat.rule_count(), 0);
        assert_eq!(strat.state_count(), 0);
    }
}
