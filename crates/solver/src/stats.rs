//! Solver statistics, reported by the benchmark harness that regenerates
//! Table 1 of the paper.

use std::time::Duration;

/// Statistics collected while solving a timed game.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of distinct discrete states explored forward.
    pub discrete_states: usize,
    /// Number of joint edges stored in the explored game graph.
    pub graph_edges: usize,
    /// Number of fixpoint rounds (Jacobi solver) or worklist pops (on-the-fly
    /// solver) until convergence.
    pub iterations: usize,
    /// Total number of DBMs in the final winning federations.
    pub winning_zones: usize,
    /// Largest number of DBMs held by a single winning federation.
    pub peak_federation_size: usize,
    /// Total number of DBMs in the forward-reachability federations.
    pub reach_zones: usize,
    /// Symbolic states whose reach zone was already covered by the passed
    /// list (on-the-fly solver: zone-level subsumption hits).
    pub subsumed_zones: usize,
    /// Back-propagation evaluations skipped because the state's own and all
    /// successor winning sets were empty — the `π` update is provably the
    /// identity there, which is how losing subtrees are pruned from the
    /// search (on-the-fly solver).
    pub pruned_evaluations: usize,
    /// Whether the search stopped early because the initial state was decided
    /// before the waiting list drained (on-the-fly solver).
    pub early_terminated: bool,
    /// Distinct canonical zones interned by the per-solve zone store
    /// (0 when interning is disabled).
    pub interned_zones: usize,
    /// Intern lookups that found the zone already present — re-derived
    /// zones that cost a hash probe instead of a deep copy (0 when interning
    /// is disabled).
    pub intern_hits: usize,
    /// Deep DBM copies made at the solver's storage sites (passed lists,
    /// expansion frontiers, goal seeds).  With interning disabled this
    /// reproduces and counts the pre-interning clone behavior; with it
    /// enabled only intern misses and goal seeds still copy.
    pub dbm_clones: usize,
    /// Largest number of zones simultaneously held by the reach and winning
    /// federations (identical with interning on or off, and for any thread
    /// count).
    pub peak_live_zones: usize,
    /// Bytes saved by keeping interned zones in minimal-constraint form
    /// instead of full `n²` matrices (0 when interning is disabled).
    pub minimized_bytes_saved: usize,
}

/// The interning/memory counter block threaded from the engines into
/// [`SolverStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct MemCounters {
    /// Distinct zones interned.
    pub interned_zones: usize,
    /// Intern lookups resolved without a deep copy.
    pub intern_hits: usize,
    /// Deep DBM copies at storage sites.
    pub dbm_clones: usize,
    /// Peak simultaneous reach + winning zone count.
    pub peak_live_zones: usize,
    /// Bytes saved by minimal-constraint storage.
    pub minimized_bytes_saved: usize,
}

impl SolverStats {
    /// A rough estimate of the memory consumed by the symbolic representation,
    /// in bytes (DBM entries only, the dominant factor).
    ///
    /// Reported alongside the wall-clock time when regenerating Table 1; the
    /// paper reports resident-set sizes of the 2008 UPPAAL-TIGA prototype, so
    /// only growth trends are comparable.
    #[must_use]
    pub fn estimated_zone_bytes(&self, dim: usize) -> usize {
        (self.winning_zones + self.reach_zones) * dim * dim * std::mem::size_of::<i32>()
    }
}

/// Statistics plus wall-clock timing for one solving run.
#[derive(Clone, Debug, Default)]
pub struct TimedStats {
    /// Symbolic statistics.
    pub stats: SolverStats,
    /// Wall-clock time spent building the graph.
    pub exploration_time: Duration,
    /// Wall-clock time spent in the backward fixpoint.
    pub fixpoint_time: Duration,
}

impl TimedStats {
    /// Total solving time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.exploration_time + self.fixpoint_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_estimate_scales_with_zones_and_dimension() {
        let stats = SolverStats {
            winning_zones: 10,
            reach_zones: 5,
            ..SolverStats::default()
        };
        assert_eq!(stats.estimated_zone_bytes(4), 15 * 16 * 4);
        assert!(stats.estimated_zone_bytes(8) > stats.estimated_zone_bytes(4));
    }

    #[test]
    fn total_time_adds_phases() {
        let t = TimedStats {
            exploration_time: Duration::from_millis(10),
            fixpoint_time: Duration::from_millis(5),
            ..TimedStats::default()
        };
        assert_eq!(t.total_time(), Duration::from_millis(15));
    }
}
