//! Semantics-preserving strategy minimization.
//!
//! Extracted strategies keep every intermediate fixpoint region: the same
//! wait zone re-justified at ranks 1, 2, …, n shows up n times, and `Take`
//! regions frequently repeat or abut across rounds.  [`minimize_strategy`]
//! shrinks a strategy without changing a single observable answer — for
//! every `(discrete, ticks, scale)` query, `decide`, `rank_of` and
//! `next_take_delay` return exactly what the original returned.
//!
//! Three rewrites run per discrete state, to a fixpoint:
//!
//! 1. **Wait subsumption** — a `Wait` rule of rank `r` is dropped when its
//!    zone is covered by the union of other `Wait` zones of rank `<= r`.
//!    `rank_of` is a *minimum* over containing wait rules — wait rules are a
//!    rank-indexed set, order-insensitive — so every point of the dropped
//!    zone keeps a containing wait of rank `<= r` and the minimum is
//!    unchanged (below the dropped rank it was already attained elsewhere;
//!    at it, the covering rule attains it).
//! 2. **Take shadowing** — a `Take` rule is dropped when its zone is covered
//!    by the union of `Take` zones that beat it in the selection order
//!    (strictly lower rank, or equal rank and earlier in order).  `decide`
//!    picks the first minimal-rank containing `Take`, so a rule that is
//!    everywhere outranked is never the answer; the rank gate and the
//!    wake-up hint are preserved because every beating rule passes the gate
//!    whenever the shadowed rule would have.
//! 3. **Union merge** — two rules of equal rank and identical decision merge
//!    into their convex hull when every hull point outside the union
//!    (`hull ∖ a ∖ b`) is already answered by a rule that wins against the
//!    merged one: for `Wait` rules, covered by other waits of rank `<= r`
//!    (the rank minimum at those points stays put); for `Take` rules,
//!    covered by takes of *strictly* lower rank — such takes beat the merged
//!    rule in `decide` wherever they contain the point, and they pass the
//!    `next_take_delay` rank gate whenever the merged rule does, so the
//!    minimum over delay windows is also preserved (any delay admitted by
//!    the hull lands in `a`, `b`, or a covering zone, whose own window
//!    admits it).  The hull of two canonical DBMs is the pointwise maximum
//!    of their bound matrices (canonical by the triangle inequality).
//!    `Take` merges are skipped at any rank where a different-edge `Take`
//!    zone overlaps the hull: the first-in-order tie-break among equal-rank
//!    rules could otherwise flip.
//!
//! Every rewrite is checked against the rule set *as currently retained* and
//! preserves the three query functions exactly, so any sequence of rewrites
//! composes soundly; each one strictly shrinks the rule count or grows a
//! zone to a fixed hull, so the fixpoint loop terminates.

use crate::strategy::{Decision, Strategy, StrategyRule};
use tiga_dbm::{zone_subtract, Bound, Dbm};

/// Before/after rule counts of a minimization run, for stats reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimizeReport {
    /// Rules in the input strategy.
    pub rules_before: usize,
    /// Rules in the minimized strategy.
    pub rules_after: usize,
}

/// Minimizes a strategy; the result answers every `decide` / `rank_of` /
/// `next_take_delay` query identically to the input.
#[must_use]
pub fn minimize_strategy(strategy: &Strategy) -> Strategy {
    minimize_strategy_with_report(strategy).0
}

/// [`minimize_strategy`], also returning the before/after rule counts.
#[must_use]
pub fn minimize_strategy_with_report(strategy: &Strategy) -> (Strategy, MinimizeReport) {
    let mut out = Strategy::new(strategy.dim());
    let mut report = MinimizeReport {
        rules_before: strategy.rule_count(),
        rules_after: 0,
    };
    for (discrete, rules) in strategy.iter() {
        let minimized = minimize_state(rules);
        report.rules_after += minimized.len();
        for rule in minimized {
            out.add_rule(discrete.clone(), rule);
        }
    }
    (out, report)
}

/// Runs the three rewrites over one state's rules until nothing changes.
fn minimize_state(rules: &[StrategyRule]) -> Vec<StrategyRule> {
    let mut rules: Vec<StrategyRule> = rules.to_vec();
    loop {
        let before = rules.len();
        drop_subsumed(&mut rules, Class::Wait);
        drop_subsumed(&mut rules, Class::Take);
        let merged = merge_exact_unions(&mut rules);
        if rules.len() == before && !merged {
            return rules;
        }
    }
}

/// Which selection order a rule participates in.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Wait,
    Take,
}

fn class_of(rule: &StrategyRule) -> Class {
    match rule.decision {
        Decision::Wait => Class::Wait,
        Decision::Take(_) => Class::Take,
    }
}

/// Drops every rule of `class` whose zone is covered by the union of
/// currently-retained same-class zones that answer for it: for `Wait`
/// rules, any other wait of rank `<= r` (the rank minimum is
/// order-insensitive); for `Take` rules, takes that beat it in the
/// selection order (strictly lower rank, or equal rank and earlier).
fn drop_subsumed(rules: &mut Vec<StrategyRule>, class: Class) {
    let mut index = 0;
    while index < rules.len() {
        if class_of(&rules[index]) != class {
            index += 1;
            continue;
        }
        let rank = rules[index].rank;
        let covers: Vec<&Dbm> = rules
            .iter()
            .enumerate()
            .filter(|(other, r)| {
                *other != index
                    && class_of(r) == class
                    && match class {
                        Class::Wait => r.rank <= rank,
                        Class::Take => r.rank < rank || (r.rank == rank && *other < index),
                    }
            })
            .map(|(_, r)| &r.zone)
            .collect();
        if covered_by(&rules[index].zone, &covers) {
            rules.remove(index);
        } else {
            index += 1;
        }
    }
}

/// Whether `zone` is included in the union of `covers`.
fn covered_by(zone: &Dbm, covers: &[&Dbm]) -> bool {
    let mut remainder = vec![zone.clone()];
    for cover in covers {
        if remainder.is_empty() {
            return true;
        }
        remainder = remainder
            .iter()
            .flat_map(|piece| zone_subtract(piece, cover))
            .collect();
    }
    remainder.is_empty()
}

/// Greedily merges same-rank same-decision rule pairs whose convex hull
/// adds no point that is not already answered identically by another rule.
/// Returns whether any merge happened.
fn merge_exact_unions(rules: &mut Vec<StrategyRule>) -> bool {
    let mut changed = false;
    let mut a = 0;
    while a < rules.len() {
        let mut b = a + 1;
        while b < rules.len() {
            if rules[a].rank == rules[b].rank
                && rules[a].decision == rules[b].decision
                && mergeable(rules, a, b)
            {
                let hull = convex_hull(&rules[a].zone, &rules[b].zone);
                rules[a].zone = hull;
                rules.remove(b);
                changed = true;
                // Re-scan partners for the grown zone from scratch.
                b = a + 1;
            } else {
                b += 1;
            }
        }
        a += 1;
    }
    changed
}

/// Whether rules `a` and `b` (same rank, same decision) may merge: every
/// hull point outside `a ∪ b` must already be answered by a winning rule —
/// another wait of rank `<= r` for `Wait` merges, a strictly-lower-rank
/// take for `Take` merges — and for `Take` rules no different-edge `Take`
/// of the same rank may overlap the hull (the first-in-order tie-break
/// among equal ranks would otherwise be disturbed).
fn mergeable(rules: &[StrategyRule], a: usize, b: usize) -> bool {
    let hull = convex_hull(&rules[a].zone, &rules[b].zone);
    let class = class_of(&rules[a]);
    let rank = rules[a].rank;
    let mut covers = vec![&rules[a].zone, &rules[b].zone];
    covers.extend(
        rules
            .iter()
            .enumerate()
            .filter(|(other, r)| {
                *other != a
                    && *other != b
                    && class_of(r) == class
                    && match class {
                        Class::Wait => r.rank <= rank,
                        Class::Take => r.rank < rank,
                    }
            })
            .map(|(_, r)| &r.zone),
    );
    if !covered_by(&hull, &covers) {
        return false;
    }
    if matches!(rules[a].decision, Decision::Take(_)) {
        for (other, rule) in rules.iter().enumerate() {
            if other != a
                && other != b
                && rule.rank == rank
                && matches!(rule.decision, Decision::Take(_))
                && rule.decision != rules[a].decision
                && rule.zone.intersects(&hull)
            {
                return false;
            }
        }
    }
    true
}

/// The convex hull of two canonical zones: the pointwise maximum of their
/// bound matrices.  The maximum of two canonical matrices is canonical
/// (each side satisfies the triangle inequality against the maxima), so no
/// re-closing is needed.
fn convex_hull(a: &Dbm, b: &Dbm) -> Dbm {
    let dim = a.dim();
    let mut constraints: Vec<(usize, usize, Bound)> = Vec::new();
    for i in 0..dim {
        for j in 0..dim {
            if i == j {
                continue;
            }
            let bound = a.at(i, j).max(b.at(i, j));
            if !bound.is_inf() {
                constraints.push((i, j, bound));
            }
        }
    }
    Dbm::from_constraints(dim, &constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_dbm::Bound;
    use tiga_model::{AutomatonBuilder, DiscreteState, EdgeBuilder, JointEdge, SystemBuilder};

    fn tiny_system() -> (tiga_model::System, DiscreteState, Vec<JointEdge>) {
        let mut b = SystemBuilder::new("t");
        let _x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let halt = b.input_channel("halt").unwrap();
        let mut plant = AutomatonBuilder::new("P");
        let l0 = plant.location("L0").unwrap();
        let l1 = plant.location("L1").unwrap();
        plant.add_edge(EdgeBuilder::new(l0, l1).input(go));
        plant.add_edge(EdgeBuilder::new(l0, l1).input(halt));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("U");
        let u0 = user.location("U0").unwrap();
        user.add_edge(EdgeBuilder::new(u0, u0).output(go));
        user.add_edge(EdgeBuilder::new(u0, u0).output(halt));
        b.add_automaton(user.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let d = sys.initial_discrete();
        let edges = sys.enabled_joint_edges(&d).unwrap();
        (sys, d, edges)
    }

    fn zone_between(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::le(-lo));
        z.constrain(1, 0, Bound::le(hi));
        z
    }

    #[test]
    fn repeated_wait_regions_collapse_to_the_lowest_rank() {
        let (sys, d, _) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        for rank in 1..=5 {
            strat.add_rule(
                d.clone(),
                StrategyRule {
                    rank,
                    zone: Dbm::universe(2),
                    decision: Decision::Wait,
                },
            );
        }
        let (min, report) = minimize_strategy_with_report(&strat);
        assert_eq!(report.rules_before, 5);
        assert_eq!(report.rules_after, 1);
        assert_eq!(min.rule_count(), 1);
        assert_eq!(min.rank_of(&d, &[0], 4), Some(1));
        assert_eq!(strat.rank_of(&d, &[0], 4), Some(1));
    }

    #[test]
    fn adjacent_same_rank_zones_merge_exactly() {
        let (sys, d, _) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        // [0,2] ∪ [2,5] = [0,5]: hull is exact.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(0, 2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(2, 5),
                decision: Decision::Wait,
            },
        );
        let min = minimize_strategy(&strat);
        assert_eq!(min.rule_count(), 1);
        let rules = min.rules_for(&d).unwrap();
        assert_eq!(rules[0].zone, zone_between(0, 5));
    }

    #[test]
    fn disjoint_zones_do_not_merge() {
        let (sys, d, _) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        // [0,1] ∪ [4,5]: the hull [0,5] strictly contains the union.
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(0, 1),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(4, 5),
                decision: Decision::Wait,
            },
        );
        let min = minimize_strategy(&strat);
        assert_eq!(min.rule_count(), 2);
        assert_eq!(min.rank_of(&d, &[8], 4), None);
        assert_eq!(strat.rank_of(&d, &[8], 4), None);
    }

    #[test]
    fn shadowed_take_rules_are_dropped() {
        let (sys, d, edges) = tiny_system();
        let go = edges[0].clone();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        // Rank-1 take over [0,5] shadows the rank-2 take over [2,4].
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(0, 5),
                decision: Decision::Take(go.clone()),
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: zone_between(2, 4),
                decision: Decision::Take(go.clone()),
            },
        );
        let min = minimize_strategy(&strat);
        assert_eq!(min.rule_count(), 2);
        for ticks in [0_i64, 9, 13, 21] {
            assert_eq!(min.decide(&d, &[ticks], 4), strat.decide(&d, &[ticks], 4));
            assert_eq!(
                min.next_take_delay(&d, &[ticks], 4),
                strat.next_take_delay(&d, &[ticks], 4)
            );
        }
    }

    #[test]
    fn take_merge_is_blocked_by_an_overlapping_other_edge_tie() {
        let (sys, d, edges) = tiny_system();
        let go = edges[0].clone();
        let halt = edges[1].clone();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        // go on [0,2], then halt on [2,3] (earlier in order than the second
        // go region), then go on [2,5]: merging the go zones into [0,5]
        // would steal the tie from halt at x ∈ [2,3].
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(0, 2),
                decision: Decision::Take(go.clone()),
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(2, 3),
                decision: Decision::Take(halt.clone()),
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(2, 5),
                decision: Decision::Take(go.clone()),
            },
        );
        let min = minimize_strategy(&strat);
        for ticks in 0..=24_i64 {
            assert_eq!(
                min.decide(&d, &[ticks], 4),
                strat.decide(&d, &[ticks], 4),
                "x ticks = {ticks}"
            );
        }
    }
}
