//! Solver error type.

use std::fmt;
use tiga_model::ModelError;
use tiga_tctl::TctlError;

/// Errors raised by the timed-game solver.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolverError {
    /// The model could not be evaluated (guards, invariants, updates).
    Model(ModelError),
    /// The test purpose could not be evaluated in some state.
    Purpose(TctlError),
    /// Exploration exceeded the configured state limit.
    StateLimitExceeded {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The requested objective is not supported by this solver entry point.
    Unsupported(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Model(e) => write!(f, "model error: {e}"),
            SolverError::Purpose(e) => write!(f, "test purpose error: {e}"),
            SolverError::StateLimitExceeded { limit } => {
                write!(
                    f,
                    "symbolic exploration exceeded the limit of {limit} discrete states"
                )
            }
            SolverError::Unsupported(what) => write!(f, "unsupported objective: {what}"),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Model(e) => Some(e),
            SolverError::Purpose(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SolverError {
    fn from(e: ModelError) -> Self {
        SolverError::Model(e)
    }
}

impl From<TctlError> for SolverError {
    fn from(e: TctlError) -> Self {
        SolverError::Purpose(e)
    }
}
