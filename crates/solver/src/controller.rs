//! The `Controller` abstraction and compiled microsecond controllers.
//!
//! Online test execution asks three questions per step — *what should I do*
//! ([`Controller::decide`]), *how far from the goal am I*
//! ([`Controller::rank_of`]) and *when should I wake up*
//! ([`Controller::next_take_delay`]).  The interpreted [`Strategy`] answers
//! them by scanning every rule of the discrete state and testing full
//! `dim²` bound matrices; under heavy traffic (10⁶+ step campaigns, many
//! concurrent simulated IUTs) that scan *is* the hot path.
//!
//! [`CompiledController`] lowers a [minimized](crate::minimize) strategy
//! into a static per-discrete-state decision structure:
//!
//! * discrete states are interned into a hash map of dense indices, so the
//!   per-step lookup is one hash instead of a `HashMap<DiscreteState, Vec>`
//!   walk per query kind;
//! * each state's rules are split into wait/take programs and sorted by
//!   rank (stably, preserving the interpreter's first-in-order tie-break),
//!   so rank walks terminate at the first containing rule;
//! * zones are reduced to their minimal constraint systems
//!   ([`tiga_dbm::MinimalZone`]-style), so point containment checks only
//!   the generating constraints instead of the full matrix;
//! * a per-state interval index over the most discriminating ("pivot")
//!   clock maps the queried valuation to a segment of candidate rules via
//!   one binary search, so `decide`/`rank_of` only visit rules whose pivot
//!   window can contain the value;
//! * queries never allocate: the reference clock is handled positionally
//!   instead of materializing the `dbm_point` vector.
//!
//! Every answer is pinned identical to the interpreted strategy by the
//! differential suites (`crates/bench/tests/controller_differential.rs`,
//! `crates/gen/tests/minimize_props.rs`).

use crate::minimize::minimize_strategy;
use crate::serialize::{
    parse_with_header, print_with_header, StrategyFile, CONTROLLER_FORMAT_HEADER,
};
use crate::strategy::{Decision, Strategy, StrategyDecision};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use tiga_dbm::{DelayWindow, MinimalConstraint};
use tiga_model::{DiscreteState, JointEdge};

/// A fast word-at-a-time hasher for the state intern map.
///
/// The per-query discrete-state lookup is the fixed cost of *every*
/// compiled-controller query; with the rule walk reduced to a handful of
/// minimal-constraint checks, `SipHash`'s per-call setup and finalization
/// would dominate the whole query.  `DiscreteState` hashes as a short run
/// of machine words (location ids and variable values), so a multiply-mix
/// per word is sufficient and several times cheaper.  HashDoS resistance is
/// irrelevant here: the map is built once from solver output and only ever
/// probed, never grown from untrusted input.
#[derive(Default)]
struct StateHasher(u64);

impl StateHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // Rotate-xor-multiply, word-at-a-time (the fxhash construction).
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for StateHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.mix(i as u64);
    }
}

type StateMap = HashMap<DiscreteState, u32, BuildHasherDefault<StateHasher>>;

/// The online interface of a synthesized strategy: everything the test
/// executor needs, abstracted over the representation.
///
/// [`Strategy`] implements it by interpretation (the reference
/// implementation); [`CompiledController`] implements it with a compiled
/// decision structure.  The contract is exact equivalence: for every query,
/// a compiled controller returns precisely what the strategy it was
/// compiled from returns.
pub trait Controller {
    /// DBM dimension of the underlying zones (number of clocks + 1).
    fn dim(&self) -> usize;

    /// Decides what the tester should do at a concrete state; `None` means
    /// the state is not covered (outside the winning region).
    fn decide(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<StrategyDecision<'_>>;

    /// The rank (distance-to-goal measure) of a concrete valuation, `None`
    /// if uncovered.
    fn rank_of(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<u32>;

    /// The earliest additional delay (in ticks) after which an admissible
    /// `Take` rule becomes applicable by pure delay, if any.
    fn next_take_delay(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<i64>;

    /// One executor step's decision workload in a single query: the
    /// decision, plus — when the decision is to wait — the
    /// [`next_take_delay`](Controller::next_take_delay) wake-up hint.
    ///
    /// Semantically this is exactly `decide` followed by `next_take_delay`
    /// on a `Wait` (the provided implementation *is* that composition, and
    /// the equivalence is pinned by the differential suites); a compiled
    /// controller overrides it to answer both from one state lookup and one
    /// wait-rank walk.
    fn decide_with_wakeup(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<(StrategyDecision<'_>, Option<i64>)> {
        let decision = self.decide(discrete, ticks, scale)?;
        let wakeup = match decision {
            StrategyDecision::Wait { .. } => self.next_take_delay(discrete, ticks, scale),
            StrategyDecision::Take(_) => None,
        };
        Some((decision, wakeup))
    }
}

impl Controller for Strategy {
    fn dim(&self) -> usize {
        Strategy::dim(self)
    }

    fn decide(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<StrategyDecision<'_>> {
        Strategy::decide(self, discrete, ticks, scale)
    }

    fn rank_of(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<u32> {
        Strategy::rank_of(self, discrete, ticks, scale)
    }

    fn next_take_delay(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<i64> {
        Strategy::next_take_delay(self, discrete, ticks, scale)
    }
}

/// One lowered rule: rank plus the range of its zone's minimal generating
/// constraints in the state's constraint arena.  Twelve bytes, so a whole
/// state's rule program fits in a cache line or two; the `Take` payloads
/// live in a parallel array that the walk only touches on a hit.
#[derive(Clone, Copy, Debug)]
struct CompiledRule {
    rank: u32,
    /// Start of the rule's constraints in [`StateProgram::arena`].
    lo: u32,
    /// One past the end of the rule's constraints.
    hi: u32,
}

/// A pre-decoded minimal constraint `x_i − x_j ≺ m`: the bound's constant
/// and strictness are unpacked at compile time, so the containment check is
/// a single fused comparison `v_i − v_j ≤ scale·m + adj` with no
/// infinity/strictness branches (`adj` is `0` for `≤`, `−1` for `<` —
/// exact for integer-valued scaled clocks).  `∞` bounds are dropped during
/// lowering: they admit everything.
#[derive(Clone, Copy, Debug)]
struct CompiledConstraint {
    /// Row clock index (0 = reference clock).
    i: u16,
    /// Column clock index (0 = reference clock).
    j: u16,
    /// The bound constant `m`.
    m: i32,
    /// `0` for a weak bound, `−1` for a strict one.
    adj: i64,
}

impl CompiledConstraint {
    /// Decodes a minimal constraint; `None` for `∞` (no constraint).
    fn decode(c: &MinimalConstraint) -> Option<CompiledConstraint> {
        let m = c.bound.constant()?;
        Some(CompiledConstraint {
            i: c.i,
            j: c.j,
            m,
            adj: if c.bound.is_strict() { -1 } else { 0 },
        })
    }

    /// Whether the constraint admits the (scaled) difference value.
    #[inline]
    fn admits(&self, diff_scaled: i64, scale: i64) -> bool {
        diff_scaled <= scale * i64::from(self.m) + self.adj
    }
}

/// Scaled value of DBM clock `i` (`0` is the reference clock, pinned at 0).
#[inline]
fn clock_value(ticks: &[i64], i: usize) -> i64 {
    if i == 0 {
        0
    } else {
        ticks[i - 1]
    }
}

/// The compiled decision program of one discrete state.
#[derive(Clone, Debug)]
struct StateProgram {
    /// All rules' minimal constraints, concatenated; [`CompiledRule::lo`]/
    /// [`CompiledRule::hi`] index into this, so a rule walk streams one
    /// contiguous allocation instead of chasing a `Vec` per rule.
    arena: Vec<CompiledConstraint>,
    /// Wait rules, stably sorted by rank ascending.
    waits: Vec<CompiledRule>,
    /// Take rules, stably sorted by rank ascending (the intra-rank order is
    /// the extraction order, preserving the first-in-order tie-break).
    takes: Vec<CompiledRule>,
    /// The joint edges of `takes`, parallel by index.
    take_edges: Vec<JointEdge>,
    /// The pivot clock the interval index discriminates on (DBM index).
    pivot: usize,
    /// Sorted distinct unary pivot-bound constants: the segment boundaries.
    cuts: Vec<i32>,
    /// Per-segment candidate lists in CSR layout: segment `s` of `waits` is
    /// `wait_items[wait_offsets[s]..wait_offsets[s+1]]` (there are
    /// `cuts.len() + 1` segments), candidates in rank order.
    wait_offsets: Vec<u32>,
    wait_items: Vec<u32>,
    /// Same for `takes`.
    take_offsets: Vec<u32>,
    take_items: Vec<u32>,
}

impl StateProgram {
    /// The segment index for a scaled pivot value: segment `s` covers
    /// `[cuts[s−1], cuts[s]]` (closed on both ends — boundary values are
    /// listed as candidates of both adjacent segments).
    fn segment_of(&self, ticks: &[i64], scale: i64) -> usize {
        if self.cuts.is_empty() {
            return 0;
        }
        let v = clock_value(ticks, self.pivot);
        self.cuts.partition_point(|&c| i64::from(c) * scale < v)
    }

    /// Whether the rule's zone contains the valuation (reference clock
    /// handled positionally — no `dbm_point` allocation).  Checking the
    /// minimal generating constraints is equivalent to the full canonical
    /// matrix by closure.
    fn contains(&self, rule: CompiledRule, ticks: &[i64], scale: i64) -> bool {
        self.arena[rule.lo as usize..rule.hi as usize]
            .iter()
            .all(|c| {
                let vi = clock_value(ticks, c.i as usize);
                let vj = clock_value(ticks, c.j as usize);
                c.admits(vi - vj, scale)
            })
    }

    /// The window of delays `d ≥ 0` with `v + d` inside the rule's zone —
    /// the allocation-free equivalent of [`tiga_dbm::Dbm::delay_window_at`]
    /// over the minimal constraint system.  Delay-invariant difference
    /// constraints are checked on `v`; unary constraints become bounds on
    /// `d`.  Because the minimal system generates the zone, the resulting
    /// interval (and its strictness) is identical to the full-matrix one.
    fn delay_window(&self, rule: CompiledRule, ticks: &[i64], scale: i64) -> Option<DelayWindow> {
        let mut window = DelayWindow {
            min: 0,
            min_strict: false,
            max: None,
            max_strict: false,
        };
        for c in &self.arena[rule.lo as usize..rule.hi as usize] {
            let (i, j) = (c.i as usize, c.j as usize);
            let (m, strict) = (c.m, c.adj != 0);
            if i != 0 && j != 0 {
                // x_i − x_j is invariant under delay: must hold already.
                let diff = clock_value(ticks, i) - clock_value(ticks, j);
                if !c.admits(diff, scale) {
                    return None;
                }
            } else if j == 0 {
                // x_i ≤ m:  d ≤ scale·m − v_i.
                let cand = scale * i64::from(m) - clock_value(ticks, i);
                match window.max {
                    None => {
                        window.max = Some(cand);
                        window.max_strict = strict;
                    }
                    Some(cur) => {
                        if cand < cur || (cand == cur && strict) {
                            window.max = Some(cand);
                            window.max_strict = strict;
                        }
                    }
                }
            } else {
                // −x_j ≤ m, i.e. x_j ≥ −m:  d ≥ −scale·m − v_j.
                let cand = -scale * i64::from(m) - clock_value(ticks, j);
                if cand > window.min || (cand == window.min && strict) {
                    window.min = cand;
                    window.min_strict = strict;
                }
            }
        }
        if window.is_empty() {
            return None;
        }
        Some(window)
    }

    /// The `waits` candidates of one segment, in rank order.
    #[inline]
    fn wait_candidates(&self, segment: usize) -> &[u32] {
        &self.wait_items
            [self.wait_offsets[segment] as usize..self.wait_offsets[segment + 1] as usize]
    }

    /// The `takes` candidates of one segment, in rank order.
    #[inline]
    fn take_candidates(&self, segment: usize) -> &[u32] {
        &self.take_items
            [self.take_offsets[segment] as usize..self.take_offsets[segment + 1] as usize]
    }

    /// Minimum rank over containing wait rules: first hit in the rank walk.
    fn wait_rank(&self, segment: usize, ticks: &[i64], scale: i64) -> Option<u32> {
        self.wait_candidates(segment)
            .iter()
            .map(|&w| self.waits[w as usize])
            .find(|&rule| self.contains(rule, ticks, scale))
            .map(|rule| rule.rank)
    }
}

/// A strategy lowered into a static per-discrete-state decision structure.
///
/// Built by [`CompiledController::compile`] (which minimizes first) or
/// [`CompiledController::from_minimized`].  Holds the minimized source
/// [`Strategy`] for serialization, equality and reporting; equality
/// compares sources (the lowered form is a deterministic function of it).
#[derive(Clone, Debug)]
pub struct CompiledController {
    source: Strategy,
    states: StateMap,
    programs: Vec<StateProgram>,
}

impl PartialEq for CompiledController {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source
    }
}

impl Eq for CompiledController {}

impl CompiledController {
    /// Minimizes a strategy and compiles the result.
    #[must_use]
    pub fn compile(strategy: &Strategy) -> Self {
        CompiledController::from_minimized(minimize_strategy(strategy))
    }

    /// Compiles a strategy that is already minimized (or that the caller
    /// wants compiled as-is — minimization is an optimization, never a
    /// semantic requirement).
    #[must_use]
    pub fn from_minimized(strategy: Strategy) -> Self {
        let mut states = StateMap::with_capacity_and_hasher(
            strategy.state_count(),
            BuildHasherDefault::default(),
        );
        let mut programs = Vec::with_capacity(strategy.state_count());
        for (discrete, rules) in strategy.iter() {
            let dim = strategy.dim();
            // Stable rank sort preserves the extraction order within a rank,
            // which `decide`'s first-in-order tie-break depends on.
            let mut waits: Vec<(u32, &crate::strategy::StrategyRule)> = Vec::new();
            let mut takes: Vec<(u32, &crate::strategy::StrategyRule)> = Vec::new();
            for (order, rule) in rules.iter().enumerate() {
                match rule.decision {
                    Decision::Wait => waits.push((order as u32, rule)),
                    Decision::Take(_) => takes.push((order as u32, rule)),
                }
            }
            waits.sort_by_key(|(order, rule)| (rule.rank, *order));
            takes.sort_by_key(|(order, rule)| (rule.rank, *order));
            let mut arena: Vec<CompiledConstraint> = Vec::new();
            let mut lower = |list: &[(u32, &crate::strategy::StrategyRule)]| -> Vec<CompiledRule> {
                list.iter()
                    .map(|(_, rule)| {
                        let lo = arena.len() as u32;
                        arena.extend(
                            rule.zone
                                .minimize()
                                .constraints()
                                .iter()
                                .filter_map(CompiledConstraint::decode),
                        );
                        CompiledRule {
                            rank: rule.rank,
                            lo,
                            hi: arena.len() as u32,
                        }
                    })
                    .collect()
            };
            let lowered_waits = lower(&waits);
            let lowered_takes = lower(&takes);
            let take_edges: Vec<JointEdge> = takes
                .iter()
                .map(|(_, rule)| match &rule.decision {
                    Decision::Take(je) => je.clone(),
                    Decision::Wait => unreachable!("takes only holds Take rules"),
                })
                .collect();
            let waits_rules: Vec<&crate::strategy::StrategyRule> =
                waits.iter().map(|(_, r)| *r).collect();
            let takes_rules: Vec<&crate::strategy::StrategyRule> =
                takes.iter().map(|(_, r)| *r).collect();
            let pivot = choose_pivot(dim, rules);
            let cuts = collect_cuts(pivot, rules);
            let (wait_offsets, wait_items) = to_csr(assign_segments(pivot, &cuts, &waits_rules));
            let (take_offsets, take_items) = to_csr(assign_segments(pivot, &cuts, &takes_rules));
            let program = StateProgram {
                arena,
                waits: lowered_waits,
                takes: lowered_takes,
                take_edges,
                pivot,
                cuts,
                wait_offsets,
                wait_items,
                take_offsets,
                take_items,
            };
            states.insert(discrete.clone(), programs.len() as u32);
            programs.push(program);
        }
        CompiledController {
            source: strategy,
            states,
            programs,
        }
    }

    /// The minimized strategy this controller was compiled from.
    #[must_use]
    pub fn source(&self) -> &Strategy {
        &self.source
    }

    /// Number of compiled discrete states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.programs.len()
    }

    /// Number of rules in the minimized source strategy.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.source.rule_count()
    }

    fn program(&self, discrete: &DiscreteState) -> Option<&StateProgram> {
        self.states
            .get(discrete)
            .map(|&index| &self.programs[index as usize])
    }
}

impl Controller for CompiledController {
    fn dim(&self) -> usize {
        self.source.dim()
    }

    fn decide(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<StrategyDecision<'_>> {
        let program = self.program(discrete)?;
        let segment = program.segment_of(ticks, scale);
        let rank = program.wait_rank(segment, ticks, scale)?;
        for &t in program.take_candidates(segment) {
            let rule = program.takes[t as usize];
            if rule.rank > rank {
                break;
            }
            if program.contains(rule, ticks, scale) {
                return Some(StrategyDecision::Take(&program.take_edges[t as usize]));
            }
        }
        Some(StrategyDecision::Wait { rank })
    }

    fn rank_of(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<u32> {
        let program = self.program(discrete)?;
        let segment = program.segment_of(ticks, scale);
        program.wait_rank(segment, ticks, scale)
    }

    fn next_take_delay(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> Option<i64> {
        let program = self.program(discrete)?;
        let segment = program.segment_of(ticks, scale);
        let rank = program.wait_rank(segment, ticks, scale)?;
        // Delays cross segments, so this walks the full rank-sorted take
        // program (early exit at the rank gate) rather than one segment.
        let mut best: Option<i64> = None;
        for &rule in &program.takes {
            if rule.rank > rank {
                break;
            }
            if let Some(window) = program.delay_window(rule, ticks, scale) {
                if let Some(delay) = window.pick() {
                    if best.is_none_or(|b| delay < b) {
                        best = Some(delay);
                    }
                }
            }
        }
        best
    }

    fn decide_with_wakeup(
        &self,
        discrete: &DiscreteState,
        ticks: &[i64],
        scale: i64,
    ) -> Option<(StrategyDecision<'_>, Option<i64>)> {
        // One state lookup and one wait-rank walk answer both halves of the
        // step: `decide`'s take walk first, then — on a wait — the wake-up
        // scan over the same rank-gated take program `next_take_delay` uses.
        let program = self.program(discrete)?;
        let segment = program.segment_of(ticks, scale);
        let rank = program.wait_rank(segment, ticks, scale)?;
        for &t in program.take_candidates(segment) {
            let rule = program.takes[t as usize];
            if rule.rank > rank {
                break;
            }
            if program.contains(rule, ticks, scale) {
                return Some((
                    StrategyDecision::Take(&program.take_edges[t as usize]),
                    None,
                ));
            }
        }
        let mut best: Option<i64> = None;
        for &rule in &program.takes {
            if rule.rank > rank {
                break;
            }
            if let Some(window) = program.delay_window(rule, ticks, scale) {
                if let Some(delay) = window.pick() {
                    if best.is_none_or(|b| delay < b) {
                        best = Some(delay);
                    }
                }
            }
        }
        Some((StrategyDecision::Wait { rank }, best))
    }
}

/// Picks the real clock with the most distinct unary bound constants across
/// the state's rules — the most discriminating axis for the interval index.
fn choose_pivot(dim: usize, rules: &[crate::strategy::StrategyRule]) -> usize {
    if dim <= 1 {
        return 0;
    }
    (1..dim)
        .max_by_key(|&clock| {
            let mut constants: Vec<i32> = Vec::new();
            for rule in rules {
                for bound in [rule.zone.at(clock, 0), rule.zone.at(0, clock)] {
                    if let Some(m) = bound.constant() {
                        constants.push(m);
                    }
                }
            }
            constants.sort_unstable();
            constants.dedup();
            constants.len()
        })
        .unwrap_or(0)
}

/// The sorted distinct segment boundaries: every unary pivot-bound constant
/// (upper bounds as-is, lower bounds negated into value space).
fn collect_cuts(pivot: usize, rules: &[crate::strategy::StrategyRule]) -> Vec<i32> {
    if pivot == 0 {
        return Vec::new();
    }
    let mut cuts: Vec<i32> = Vec::new();
    for rule in rules {
        if let Some(m) = rule.zone.at(pivot, 0).constant() {
            cuts.push(m);
        }
        if let Some(m) = rule.zone.at(0, pivot).constant() {
            cuts.push(-m);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// For each segment, the rule indices (into the rank-sorted `rules` slice)
/// whose closed pivot window intersects the closed segment range.  The
/// assignment is conservative — candidates still pass the full containment
/// check — so boundary overlaps are harmless.
fn assign_segments(
    pivot: usize,
    cuts: &[i32],
    rules: &[&crate::strategy::StrategyRule],
) -> Vec<Vec<u32>> {
    let mut segments: Vec<Vec<u32>> = vec![Vec::new(); cuts.len() + 1];
    for (index, rule) in rules.iter().enumerate() {
        let (lo, hi) = if pivot == 0 {
            (None, None)
        } else {
            (
                rule.zone.at(0, pivot).constant().map(|m| -m),
                rule.zone.at(pivot, 0).constant(),
            )
        };
        // First segment whose closed range reaches `lo`, last one that
        // starts at or below `hi`.
        let first = match lo {
            None => 0,
            Some(lo) => cuts.partition_point(|&c| c < lo),
        };
        let last = match hi {
            None => cuts.len(),
            Some(hi) => cuts.partition_point(|&c| c <= hi),
        };
        for segment in &mut segments[first..=last] {
            segment.push(index as u32);
        }
    }
    segments
}

/// Flattens per-segment candidate lists into CSR (offsets + items) form,
/// so a segment lookup is one slice into a shared allocation.
fn to_csr(segments: Vec<Vec<u32>>) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(segments.len() + 1);
    let mut items = Vec::with_capacity(segments.iter().map(Vec::len).sum());
    offsets.push(0);
    for segment in segments {
        items.extend_from_slice(&segment);
        offsets.push(items.len() as u32);
    }
    (offsets, items)
}

/// Prints a compiled controller in the versioned `tiga-controller v1`
/// format: the same body shape as [`crate::print_strategy`] (the minimized
/// source strategy, states sorted, canonical zones), under the controller
/// header.  Byte-stable and exact-inverse with [`parse_controller`].
#[must_use]
pub fn print_controller(
    model: &str,
    winning: bool,
    controller: Option<&CompiledController>,
) -> String {
    print_with_header(
        CONTROLLER_FORMAT_HEADER,
        model,
        winning,
        controller.map(CompiledController::source),
    )
}

/// A parsed controller file: the verdict plus the recompiled controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerFile {
    /// Name of the system the controller was compiled for.
    pub model: String,
    /// Whether the initial state is winning.
    pub winning: bool,
    /// The controller, when one was emitted.
    pub controller: Option<CompiledController>,
}

/// Parses a `tiga-controller v1` file and recompiles the decision
/// structure.  `parse_controller(print_controller(c)) ≡ c`, and the printer
/// is a fixpoint.
///
/// # Errors
///
/// Returns a `line N: ...` message on the first malformed line.
pub fn parse_controller(text: &str) -> Result<ControllerFile, String> {
    let StrategyFile {
        model,
        winning,
        strategy,
    } = parse_with_header(CONTROLLER_FORMAT_HEADER, text)?;
    Ok(ControllerFile {
        model,
        winning,
        controller: strategy.map(CompiledController::from_minimized),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyRule;
    use tiga_dbm::{Bound, Dbm};
    use tiga_model::{AutomatonBuilder, EdgeBuilder, SystemBuilder};

    fn tiny_system() -> (tiga_model::System, DiscreteState, JointEdge) {
        let mut b = SystemBuilder::new("t");
        let _x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let mut plant = AutomatonBuilder::new("P");
        let l0 = plant.location("L0").unwrap();
        let l1 = plant.location("L1").unwrap();
        plant.add_edge(EdgeBuilder::new(l0, l1).input(go));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("U");
        let u0 = user.location("U0").unwrap();
        user.add_edge(EdgeBuilder::new(u0, u0).output(go));
        b.add_automaton(user.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let d = sys.initial_discrete();
        let je = sys.enabled_joint_edges(&d).unwrap().remove(0);
        (sys, d, je)
    }

    fn zone_between(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::le(-lo));
        z.constrain(1, 0, Bound::le(hi));
        z
    }

    fn sample_strategy() -> (tiga_model::System, DiscreteState, Strategy) {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(4, 5),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: zone_between(2, 5),
                decision: Decision::Take(je.clone()),
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(4, 5),
                decision: Decision::Take(je),
            },
        );
        (sys, d, strat)
    }

    #[test]
    fn compiled_controller_matches_the_interpreter_pointwise() {
        let (_sys, d, strat) = sample_strategy();
        let compiled = CompiledController::compile(&strat);
        for ticks in 0..=30_i64 {
            assert_eq!(
                Controller::decide(&compiled, &d, &[ticks], 4),
                Strategy::decide(&strat, &d, &[ticks], 4),
                "decide at ticks {ticks}"
            );
            assert_eq!(
                Controller::rank_of(&compiled, &d, &[ticks], 4),
                Strategy::rank_of(&strat, &d, &[ticks], 4),
                "rank_of at ticks {ticks}"
            );
            assert_eq!(
                Controller::next_take_delay(&compiled, &d, &[ticks], 4),
                Strategy::next_take_delay(&strat, &d, &[ticks], 4),
                "next_take_delay at ticks {ticks}"
            );
        }
        // Uncovered discrete states answer None everywhere.
        let mut other = d.clone();
        other.locations[0] = tiga_model::LocationId::from_index(1);
        assert_eq!(Controller::decide(&compiled, &other, &[0], 4), None);
        assert_eq!(Controller::rank_of(&compiled, &other, &[0], 4), None);
        assert_eq!(
            Controller::next_take_delay(&compiled, &other, &[0], 4),
            None
        );
    }

    #[test]
    fn controller_files_roundtrip_exactly() {
        let (_sys, _d, strat) = sample_strategy();
        let compiled = CompiledController::compile(&strat);
        let text = print_controller("tiny", true, Some(&compiled));
        assert!(text.starts_with("tiga-controller v1\n"), "{text}");
        let file = parse_controller(&text).unwrap();
        assert_eq!(file.model, "tiny");
        assert!(file.winning);
        assert_eq!(file.controller.as_ref(), Some(&compiled));
        // Printer fixpoint.
        let again = print_controller("tiny", true, file.controller.as_ref());
        assert_eq!(again, text);
        // Verdict-only files roundtrip too.
        let none = print_controller("loser", false, None);
        let file = parse_controller(&none).unwrap();
        assert!(!file.winning);
        assert!(file.controller.is_none());
        // A strategy header is rejected.
        let wrong = crate::print_strategy("tiny", true, Some(compiled.source()));
        assert!(parse_controller(&wrong).unwrap_err().contains("line 1"));
    }

    #[test]
    fn compiling_is_idempotent_on_minimized_strategies() {
        let (_sys, _d, strat) = sample_strategy();
        let compiled = CompiledController::compile(&strat);
        let again = CompiledController::compile(compiled.source());
        assert_eq!(compiled, again);
        assert!(compiled.rule_count() <= strat.rule_count());
        assert_eq!(compiled.state_count(), 1);
    }
}
