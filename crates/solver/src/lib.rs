//! # tiga-solver — symbolic timed-game solving and strategy synthesis
//!
//! This crate is the reproduction's stand-in for UPPAAL-TIGA: given a
//! [`tiga_model::System`] (a network of timed I/O game automata) and a
//! [`tiga_tctl::TestPurpose`] — reachability (`control: A<> φ`) or safety
//! (`control: A[] φ`) — it computes the winning states of the
//! corresponding timed game with zone federations and synthesizes a
//! state-based winning [`Strategy`] — the object the paper uses as a
//! *test case*.  Safety games are solved through the dual fixpoint: the
//! complement of the tester's safe set is the environment's reachability
//! attractor into `¬φ`, computed by the very same machinery with the
//! players' roles swapped (see [`crate::solve`] and the `winning` module
//! docs); the extracted controller is safe and possibly non-terminating.
//!
//! Three engines are provided behind the [`solve`] entry point, selected by
//! [`SolveOptions::engine`]:
//!
//! * [`SolveEngine::Otfur`] (default) — on-the-fly solving: forward zone
//!   exploration and backward winning-federation propagation interleave in
//!   one waiting/passed-list search with zone subsumption, losing-subtree
//!   pruning and early termination once the initial state is decided; the
//!   [`Strategy`] is extracted during the search;
//! * [`SolveEngine::Jacobi`] — eager exploration of the full game graph
//!   ([`GameGraph`]) followed by a round-based fixpoint with rank-annotated
//!   strategy extraction (the differential-testing oracle, also reachable
//!   directly via [`solve_jacobi`]);
//! * [`SolveEngine::Worklist`] — eager exploration followed by chaotic
//!   iteration ([`solve_worklist`]); no strategy.
//!
//! All engines share the controllable-predecessor update (safe
//! time-predecessors, uncontrollable escapes and invariant-forced moves)
//! and the [`tiga_model::Explorer`] exploration core.
//!
//! # Example
//!
//! ```
//! use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
//! use tiga_solver::{solve_jacobi, SolveOptions};
//! use tiga_tctl::TestPurpose;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A plant that must reply within 3 time units of being kicked.
//! let mut b = SystemBuilder::new("demo");
//! let x = b.clock("x")?;
//! let kick = b.input_channel("kick")?;
//! let reply = b.output_channel("reply")?;
//! let mut plant = AutomatonBuilder::new("Plant");
//! let idle = plant.location("Idle")?;
//! let busy = plant.location("Busy")?;
//! let done = plant.location("Done")?;
//! plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
//! plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
//! plant.add_edge(
//!     EdgeBuilder::new(busy, done)
//!         .output(reply)
//!         .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
//! );
//! b.add_automaton(plant.build()?)?;
//! let mut user = AutomatonBuilder::new("User");
//! let u = user.location("U")?;
//! user.add_edge(EdgeBuilder::new(u, u).output(kick));
//! user.add_edge(EdgeBuilder::new(u, u).input(reply));
//! b.add_automaton(user.build()?)?;
//! let system = b.build()?;
//!
//! let purpose = TestPurpose::parse("control: A<> Plant.Done", &system)?;
//! let solution = solve_jacobi(&system, &purpose, &SolveOptions::default())?;
//! assert!(solution.winning_from_initial);
//! let strategy = solution.strategy.expect("a winning strategy is synthesized");
//! println!("{}", strategy.display(&system)); // Fig. 5 style listing
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod controller;
mod error;
mod graph;
mod minimize;
mod otfur;
mod serialize;
mod stats;
mod strategy;
mod winning;

pub use cache::{CacheEntry, CacheStats, SolveCache};
pub use controller::{
    parse_controller, print_controller, CompiledController, Controller, ControllerFile,
};
pub use error::SolverError;
pub use graph::{ExploreOptions, GameGraph, GameNode, GraphEdge, NodeId};
pub use minimize::{minimize_strategy, minimize_strategy_with_report, MinimizeReport};
pub use serialize::{
    parse_strategy, print_strategy, StrategyFile, CONTROLLER_FORMAT_HEADER, STRATEGY_FORMAT_HEADER,
};
pub use stats::{SolverStats, TimedStats};
pub use strategy::{Decision, DisplayStrategy, Strategy, StrategyDecision, StrategyRule};
pub use winning::{
    bounded_system, solve, solve_jacobi, solve_worklist, GameSolution, SolveEngine, SolveOptions,
    TICK_CLOCK,
};
