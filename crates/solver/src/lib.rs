//! # tiga-solver — symbolic timed-game solving and strategy synthesis
//!
//! This crate is the reproduction's stand-in for UPPAAL-TIGA: given a
//! [`tiga_model::System`] (a network of timed I/O game automata) and a
//! [`tiga_tctl::TestPurpose`] (`control: A<> φ`), it computes the winning
//! states of the corresponding timed reachability game with zone federations
//! and synthesizes a state-based winning [`Strategy`] — the object the paper
//! uses as a *test case*.
//!
//! The pipeline is:
//!
//! 1. forward exploration of the discrete game graph ([`GameGraph`]),
//! 2. backward fixpoint over zone federations using the controllable
//!    predecessor with safe time-predecessors, uncontrollable escapes and
//!    invariant-forced moves ([`solve_reachability`]),
//! 3. rank-annotated strategy extraction ([`Strategy`]).
//!
//! # Example
//!
//! ```
//! use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
//! use tiga_solver::{solve_reachability, SolveOptions};
//! use tiga_tctl::TestPurpose;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A plant that must reply within 3 time units of being kicked.
//! let mut b = SystemBuilder::new("demo");
//! let x = b.clock("x")?;
//! let kick = b.input_channel("kick")?;
//! let reply = b.output_channel("reply")?;
//! let mut plant = AutomatonBuilder::new("Plant");
//! let idle = plant.location("Idle")?;
//! let busy = plant.location("Busy")?;
//! let done = plant.location("Done")?;
//! plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
//! plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
//! plant.add_edge(
//!     EdgeBuilder::new(busy, done)
//!         .output(reply)
//!         .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
//! );
//! b.add_automaton(plant.build()?)?;
//! let mut user = AutomatonBuilder::new("User");
//! let u = user.location("U")?;
//! user.add_edge(EdgeBuilder::new(u, u).output(kick));
//! user.add_edge(EdgeBuilder::new(u, u).input(reply));
//! b.add_automaton(user.build()?)?;
//! let system = b.build()?;
//!
//! let purpose = TestPurpose::parse("control: A<> Plant.Done", &system)?;
//! let solution = solve_reachability(&system, &purpose, &SolveOptions::default())?;
//! assert!(solution.winning_from_initial);
//! let strategy = solution.strategy.expect("a winning strategy is synthesized");
//! println!("{}", strategy.display(&system)); // Fig. 5 style listing
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod stats;
mod strategy;
mod winning;

pub use error::SolverError;
pub use graph::{ExploreOptions, GameGraph, GameNode, GraphEdge, NodeId};
pub use stats::{SolverStats, TimedStats};
pub use strategy::{Decision, DisplayStrategy, Strategy, StrategyDecision, StrategyRule};
pub use winning::{solve_reachability, solve_reachability_worklist, GameSolution, SolveOptions};
