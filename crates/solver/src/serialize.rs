//! Stable textual serialization of verdicts and strategies.
//!
//! `tiga serve` answers from a content-hash cache and CI pins golden
//! strategies byte-for-byte, so strategies need a serialization format that
//! is *stable* (the same strategy always prints to the same bytes,
//! regardless of hash-map iteration order, `--jobs` or interning) and
//! *exact* (`parse(print(s)) ≡ s` on rules, ranks, zones and decisions).
//! crates.io is unreachable, so the format is hand-rolled in the same
//! spirit as `tiga_lang::print_system` and `crates/bench/src/baseline.rs`:
//! a versioned line-oriented text format.
//!
//! # Format (`tiga-strategy v1`)
//!
//! ```text
//! tiga-strategy v1
//! model <system name, verbatim to end of line>
//! verdict winning|losing
//! strategy none                      # when no strategy was extracted
//! dim <n>                            # otherwise: DBM dimension, then states
//! state <loc> <loc> ... / <var> ...  # location ids, `/`, variable values
//! rule <rank> wait <n·n bounds>
//! rule <rank> take tau <aut> <edge> <n·n bounds>
//! rule <rank> take sync <chan> <out-aut> <out-edge> <in-aut> <in-edge> <n·n bounds>
//! end
//! ```
//!
//! Zones are printed as the full row-major DBM matrix, one token per bound:
//! `<inf` (unconstrained), `<=m` or `<m` — exactly the [`tiga_dbm::Bound`]
//! display forms, so every canonical DBM round-trips bit-exactly.  States
//! are sorted by (locations, variables); rules keep their extraction order,
//! which the solver already guarantees is identical for any thread count.
//! Ids are raw indices (`LocationId::index` etc.); a strategy file is only
//! meaningful against the system it was extracted from.

use crate::strategy::{Decision, Strategy, StrategyRule};
use std::fmt::Write as _;
use tiga_dbm::{Bound, Dbm};
use tiga_model::{AutomatonId, ChannelId, DiscreteState, EdgeId, JointEdge, LocationId};

/// The header line every serialized strategy starts with.
pub const STRATEGY_FORMAT_HEADER: &str = "tiga-strategy v1";

/// The header line every serialized compiled controller starts with (the
/// body is the controller's minimized source strategy in the same shape;
/// see `crate::controller::print_controller`).
pub const CONTROLLER_FORMAT_HEADER: &str = "tiga-controller v1";

/// A parsed strategy file: the verdict plus the strategy it justifies (absent
/// for losing games or `--no-strategy` solves).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrategyFile {
    /// Name of the system the strategy was extracted from.
    pub model: String,
    /// Whether the initial state is winning.
    pub winning: bool,
    /// The strategy, when one was extracted.
    pub strategy: Option<Strategy>,
}

/// Prints a verdict and optional strategy in the versioned `tiga-strategy`
/// format.
///
/// The output is byte-stable: states are emitted in sorted order and every
/// zone as its full canonical bound matrix, so the same solution always
/// serializes to the same bytes.
#[must_use]
pub fn print_strategy(model: &str, winning: bool, strategy: Option<&Strategy>) -> String {
    print_with_header(STRATEGY_FORMAT_HEADER, model, winning, strategy)
}

/// Shared printer behind [`print_strategy`] and the controller format, which
/// differ only in their header line.
#[must_use]
pub(crate) fn print_with_header(
    header: &str,
    model: &str,
    winning: bool,
    strategy: Option<&Strategy>,
) -> String {
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    let _ = writeln!(out, "model {model}");
    let _ = writeln!(
        out,
        "verdict {}",
        if winning { "winning" } else { "losing" }
    );
    match strategy {
        None => out.push_str("strategy none\n"),
        Some(strategy) => {
            let _ = writeln!(out, "dim {}", strategy.dim());
            let mut states: Vec<(&DiscreteState, &[StrategyRule])> = strategy.iter().collect();
            states.sort_by(|(a, _), (b, _)| {
                a.locations
                    .cmp(&b.locations)
                    .then_with(|| a.vars.cmp(&b.vars))
            });
            for (discrete, rules) in states {
                out.push_str("state");
                for loc in &discrete.locations {
                    let _ = write!(out, " {}", loc.index());
                }
                out.push_str(" /");
                for var in &discrete.vars {
                    let _ = write!(out, " {var}");
                }
                out.push('\n');
                for rule in rules {
                    let _ = write!(out, "rule {} ", rule.rank);
                    match &rule.decision {
                        Decision::Wait => out.push_str("wait"),
                        Decision::Take(JointEdge::Internal { automaton, edge }) => {
                            let _ = write!(out, "take tau {} {}", automaton.index(), edge.index());
                        }
                        Decision::Take(JointEdge::Sync {
                            channel,
                            output,
                            input,
                        }) => {
                            let _ = write!(
                                out,
                                "take sync {} {} {} {} {}",
                                channel.index(),
                                output.0.index(),
                                output.1.index(),
                                input.0.index(),
                                input.1.index()
                            );
                        }
                    }
                    for i in 0..rule.zone.dim() {
                        for j in 0..rule.zone.dim() {
                            let _ = write!(out, " {}", rule.zone.at(i, j));
                        }
                    }
                    out.push('\n');
                }
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Parses a `tiga-strategy v1` file back into a [`StrategyFile`].
///
/// The parse is exact: zones are checked to be canonical (re-closing the
/// printed bounds must reproduce them), so `parse(print(s)) ≡ s` and any
/// hand-edited non-canonical zone is rejected instead of silently changed.
///
/// # Errors
///
/// Returns a `line N: ...` message on the first malformed line.
pub fn parse_strategy(text: &str) -> Result<StrategyFile, String> {
    parse_with_header(STRATEGY_FORMAT_HEADER, text)
}

/// Shared parser behind [`parse_strategy`] and the controller format, which
/// differ only in the expected header line.
pub(crate) fn parse_with_header(expected: &str, text: &str) -> Result<StrategyFile, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty strategy file")?;
    if header.trim_end() != expected {
        return Err(format!(
            "line 1: expected header `{expected}`, got `{header}`"
        ));
    }
    let (n, model_line) = lines.next().ok_or("missing `model` line")?;
    let model = model_line
        .strip_prefix("model ")
        .ok_or_else(|| format!("line {}: expected `model <name>`", n + 1))?
        .to_string();
    let (n, verdict_line) = lines.next().ok_or("missing `verdict` line")?;
    let winning = match verdict_line.trim_end() {
        "verdict winning" => true,
        "verdict losing" => false,
        other => {
            return Err(format!(
                "line {}: expected `verdict winning|losing`, got `{other}`",
                n + 1
            ))
        }
    };

    let (n, body_first) = lines.next().ok_or("missing strategy body")?;
    if body_first.trim_end() == "strategy none" {
        let (n, last) = lines.next().ok_or("missing `end` line")?;
        if last.trim_end() != "end" {
            return Err(format!("line {}: expected `end`, got `{last}`", n + 1));
        }
        finish(lines)?;
        return Ok(StrategyFile {
            model,
            winning,
            strategy: None,
        });
    }

    let dim: usize = body_first
        .strip_prefix("dim ")
        .and_then(|d| d.trim_end().parse().ok())
        .filter(|d| *d >= 1)
        .ok_or_else(|| format!("line {}: expected `dim <n>` or `strategy none`", n + 1))?;
    let mut strategy = Strategy::new(dim);
    let mut current: Option<DiscreteState> = None;
    while let Some((n, line)) = lines.next() {
        let line_no = n + 1;
        let line = line.trim_end();
        if line == "end" {
            finish(lines)?;
            return Ok(StrategyFile {
                model,
                winning,
                strategy: Some(strategy),
            });
        }
        if let Some(rest) = line.strip_prefix("state ") {
            current = Some(parse_state(line_no, rest)?);
        } else if let Some(rest) = line.strip_prefix("rule ") {
            let discrete = current
                .clone()
                .ok_or_else(|| format!("line {line_no}: `rule` before any `state`"))?;
            let rule = parse_rule(line_no, rest, dim)?;
            strategy.add_rule(discrete, rule);
        } else {
            return Err(format!(
                "line {line_no}: expected `state`, `rule` or `end`, got `{line}`"
            ));
        }
    }
    Err("missing `end` line".to_string())
}

/// After `end`, only blank lines may follow.
fn finish<'a>(lines: impl Iterator<Item = (usize, &'a str)>) -> Result<(), String> {
    for (n, line) in lines {
        if !line.trim().is_empty() {
            return Err(format!("line {}: trailing content `{line}`", n + 1));
        }
    }
    Ok(())
}

fn parse_state(line_no: usize, rest: &str) -> Result<DiscreteState, String> {
    let (locs, vars) = rest
        .split_once('/')
        .ok_or_else(|| format!("line {line_no}: `state` line needs a `/` separator"))?;
    let locations = locs
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map(LocationId::from_index)
                .map_err(|_| format!("line {line_no}: bad location id `{t}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if locations.is_empty() {
        return Err(format!("line {line_no}: `state` line has no locations"));
    }
    let vars = vars
        .split_whitespace()
        .map(|t| {
            t.parse::<i64>()
                .map_err(|_| format!("line {line_no}: bad variable value `{t}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DiscreteState { locations, vars })
}

fn parse_rule(line_no: usize, rest: &str, dim: usize) -> Result<StrategyRule, String> {
    let mut tokens = rest.split_whitespace();
    let rank: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {line_no}: `rule` needs a numeric rank"))?;
    let decision = match tokens.next() {
        Some("wait") => Decision::Wait,
        Some("take") => match tokens.next() {
            Some("tau") => {
                let automaton = parse_index(line_no, tokens.next(), "automaton id")?;
                let edge = parse_index(line_no, tokens.next(), "edge id")?;
                Decision::Take(JointEdge::Internal {
                    automaton: AutomatonId::from_index(automaton),
                    edge: EdgeId::from_index(edge),
                })
            }
            Some("sync") => {
                let channel = parse_index(line_no, tokens.next(), "channel id")?;
                let oa = parse_index(line_no, tokens.next(), "output automaton id")?;
                let oe = parse_index(line_no, tokens.next(), "output edge id")?;
                let ia = parse_index(line_no, tokens.next(), "input automaton id")?;
                let ie = parse_index(line_no, tokens.next(), "input edge id")?;
                Decision::Take(JointEdge::Sync {
                    channel: ChannelId::from_index(channel),
                    output: (AutomatonId::from_index(oa), EdgeId::from_index(oe)),
                    input: (AutomatonId::from_index(ia), EdgeId::from_index(ie)),
                })
            }
            other => {
                return Err(format!(
                    "line {line_no}: expected `take tau|sync`, got `{}`",
                    other.unwrap_or("<eol>")
                ))
            }
        },
        other => {
            return Err(format!(
                "line {line_no}: expected `wait` or `take`, got `{}`",
                other.unwrap_or("<eol>")
            ))
        }
    };
    let mut bounds = Vec::with_capacity(dim * dim);
    for _ in 0..dim * dim {
        let token = tokens
            .next()
            .ok_or_else(|| format!("line {line_no}: zone needs {} bounds", dim * dim))?;
        bounds.push(parse_bound(line_no, token)?);
    }
    if let Some(extra) = tokens.next() {
        return Err(format!("line {line_no}: trailing token `{extra}`"));
    }
    let zone = rebuild_zone(line_no, dim, &bounds)?;
    Ok(StrategyRule {
        rank,
        zone,
        decision,
    })
}

fn parse_index(line_no: usize, token: Option<&str>, what: &str) -> Result<usize, String> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {line_no}: bad {what} `{}`", token.unwrap_or("<eol>")))
}

fn parse_bound(line_no: usize, token: &str) -> Result<Bound, String> {
    if token == "<inf" {
        return Ok(Bound::INF);
    }
    let (m, strict) = if let Some(m) = token.strip_prefix("<=") {
        (m, false)
    } else if let Some(m) = token.strip_prefix('<') {
        (m, true)
    } else {
        return Err(format!("line {line_no}: bad bound `{token}`"));
    };
    let m: i32 = m
        .parse()
        .map_err(|_| format!("line {line_no}: bad bound `{token}`"))?;
    if !(-tiga_dbm::MAX_CONSTANT..=tiga_dbm::MAX_CONSTANT).contains(&m) {
        return Err(format!(
            "line {line_no}: bound constant out of range `{token}`"
        ));
    }
    Ok(Bound::new(m, strict))
}

/// Re-closes the printed bounds and checks the result reproduces them: a
/// serialized zone is canonical by construction, so any deviation means the
/// file was corrupted or hand-edited into a non-canonical matrix.
fn rebuild_zone(line_no: usize, dim: usize, bounds: &[Bound]) -> Result<Dbm, String> {
    let mut constraints = Vec::new();
    for i in 0..dim {
        for j in 0..dim {
            let b = bounds[i * dim + j];
            if i != j && !b.is_inf() {
                constraints.push((i, j, b));
            }
        }
    }
    let zone = Dbm::from_constraints(dim, &constraints);
    for i in 0..dim {
        for j in 0..dim {
            if zone.at(i, j) != bounds[i * dim + j] {
                return Err(format!(
                    "line {line_no}: zone is not canonical at ({i},{j}): \
                     stored {} but closure gives {}",
                    bounds[i * dim + j],
                    zone.at(i, j)
                ));
            }
        }
    }
    if zone.is_empty() {
        return Err(format!("line {line_no}: zone is empty"));
    }
    Ok(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, EdgeBuilder, SystemBuilder};

    fn tiny_system() -> (tiga_model::System, DiscreteState, JointEdge) {
        let mut b = SystemBuilder::new("t");
        let _x = b.clock("x").unwrap();
        let go = b.input_channel("go").unwrap();
        let mut plant = AutomatonBuilder::new("P");
        let l0 = plant.location("L0").unwrap();
        let l1 = plant.location("L1").unwrap();
        plant.add_edge(EdgeBuilder::new(l0, l1).input(go));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("U");
        let u0 = user.location("U0").unwrap();
        user.add_edge(EdgeBuilder::new(u0, u0).output(go));
        b.add_automaton(user.build().unwrap()).unwrap();
        let sys = b.build().unwrap();
        let d = sys.initial_discrete();
        let je = sys.enabled_joint_edges(&d).unwrap().remove(0);
        (sys, d, je)
    }

    fn zone_between(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::le(-lo));
        z.constrain(1, 0, Bound::lt(hi));
        z
    }

    fn sample_strategy() -> Strategy {
        let (sys, d, je) = tiny_system();
        let mut strat = Strategy::new(sys.dim());
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 2,
                zone: Dbm::universe(2),
                decision: Decision::Wait,
            },
        );
        strat.add_rule(
            d.clone(),
            StrategyRule {
                rank: 1,
                zone: zone_between(2, 5),
                decision: Decision::Take(je),
            },
        );
        let mut other = d;
        other.locations[0] = LocationId::from_index(1);
        strat.add_rule(
            other,
            StrategyRule {
                rank: 0,
                zone: zone_between(0, 3),
                decision: Decision::Wait,
            },
        );
        strat
    }

    #[test]
    fn roundtrip_is_exact() {
        let strat = sample_strategy();
        let text = print_strategy("tiny", true, Some(&strat));
        let file = parse_strategy(&text).unwrap();
        assert_eq!(file.model, "tiny");
        assert!(file.winning);
        assert_eq!(file.strategy.as_ref(), Some(&strat));
        // The printer is a fixpoint: print(parse(print(s))) == print(s).
        let again = print_strategy("tiny", true, file.strategy.as_ref());
        assert_eq!(again, text);
    }

    #[test]
    fn printing_is_independent_of_insertion_order() {
        let (sys, d, je) = tiny_system();
        let mut other = d.clone();
        other.locations[0] = LocationId::from_index(1);
        let wait = StrategyRule {
            rank: 1,
            zone: Dbm::universe(2),
            decision: Decision::Wait,
        };
        let take = StrategyRule {
            rank: 1,
            zone: zone_between(1, 4),
            decision: Decision::Take(je),
        };
        let mut a = Strategy::new(sys.dim());
        a.add_rule(d.clone(), wait.clone());
        a.add_rule(other.clone(), take.clone());
        let mut b = Strategy::new(sys.dim());
        b.add_rule(other, take);
        b.add_rule(d, wait);
        assert_eq!(
            print_strategy("t", true, Some(&a)),
            print_strategy("t", true, Some(&b)),
            "state order is canonicalized, not insertion-dependent"
        );
    }

    #[test]
    fn verdict_only_files_roundtrip() {
        let text = print_strategy("loser", false, None);
        assert!(text.contains("verdict losing"));
        assert!(text.contains("strategy none"));
        let file = parse_strategy(&text).unwrap();
        assert_eq!(file.model, "loser");
        assert!(!file.winning);
        assert!(file.strategy.is_none());
    }

    #[test]
    fn sync_decisions_roundtrip() {
        let strat = sample_strategy();
        let text = print_strategy("t", true, Some(&strat));
        // The `go` channel produces a sync joint edge in the sample.
        assert!(text.contains("take sync"), "{text}");
        let file = parse_strategy(&text).unwrap();
        assert_eq!(file.strategy.unwrap(), strat);
    }

    #[test]
    fn bound_tokens_roundtrip() {
        for b in [Bound::INF, Bound::le(3), Bound::lt(-2), Bound::ZERO_LE] {
            assert_eq!(parse_bound(1, &b.to_string()).unwrap(), b);
        }
        assert!(parse_bound(1, ">=3").is_err());
        assert!(parse_bound(1, "<=x").is_err());
        assert!(parse_bound(1, "<=999999999999").is_err());
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        let strat = sample_strategy();
        let good = print_strategy("t", true, Some(&strat));
        // Corrupt the header.
        let bad = good.replacen("v1", "v9", 1);
        assert!(parse_strategy(&bad).unwrap_err().contains("line 1"));
        // Drop the `end` line.
        let bad = good.replace("end\n", "");
        assert!(parse_strategy(&bad).unwrap_err().contains("end"));
        // A rule before any state.
        let bad = "tiga-strategy v1\nmodel t\nverdict winning\ndim 2\nrule 1 wait <=0 <=0 <inf <=0\nend\n";
        assert!(parse_strategy(bad)
            .unwrap_err()
            .contains("before any `state`"));
        // Wrong bound count.
        let bad = "tiga-strategy v1\nmodel t\nverdict winning\ndim 2\nstate 0 0 /\nrule 1 wait <=0\nend\n";
        assert!(parse_strategy(bad).unwrap_err().contains("4 bounds"));
        // Non-canonical zone: closure tightens the stored `(0,1)` bound.
        let bad = "tiga-strategy v1\nmodel t\nverdict winning\ndim 2\nstate 0 0 /\n\
                   rule 1 wait <=0 <inf <=5 <=0\nend\n";
        assert!(parse_strategy(bad).unwrap_err().contains("not canonical"));
        // An empty zone.
        let bad = "tiga-strategy v1\nmodel t\nverdict winning\ndim 2\nstate 0 0 /\n\
                   rule 1 wait <=0 <-1 <=0 <=0\nend\n";
        assert!(parse_strategy(bad).is_err());
        // Truncations never panic (baseline.rs discipline).
        for cut in 0..good.len() {
            let _ = parse_strategy(&good[..cut]);
        }
    }

    #[test]
    fn prefix_truncation_of_none_files_never_panics() {
        let good = print_strategy("t", false, None);
        for cut in 0..good.len() {
            let _ = parse_strategy(&good[..cut]);
        }
    }
}
