//! Content-hash solve cache.
//!
//! `tiga serve` keeps one [`SolveCache`] for the lifetime of the process:
//! repeated or duplicate submissions of the same game are answered from the
//! cache instead of re-solving.  The key is the *content* of the request —
//! the canonical serialized system (the exact-inverse `print_system` text,
//! including the `control:` objective) plus every option that can change the
//! verdict, stats or strategy.  `jobs` and `interning` are deliberately
//! excluded: results are bit-identical for any thread count and with the
//! zone store on or off (pinned by the solver's differential suites), so a
//! cache hit is exact no matter which execution mode produced the entry.

use crate::controller::CompiledController;
use crate::stats::SolverStats;
use crate::strategy::Strategy;
use crate::winning::SolveOptions;
use std::collections::HashMap;

/// A cached solve result: everything a response needs, nothing volatile.
/// Wall-clock timing is intentionally absent — it belongs to the solve that
/// produced the entry, not to the game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Whether the initial state is winning.
    pub winning: bool,
    /// The full 14-field statistics block of the original solve.
    pub stats: SolverStats,
    /// The extracted strategy, when one was requested and the game is won.
    pub strategy: Option<Strategy>,
    /// The minimized, compiled form of `strategy`.  Compiled once at store
    /// time so cache hits answer `minimized_rules`/`controller_states` and
    /// controller downloads without re-running the minimizer.
    pub controller: Option<CompiledController>,
}

/// Hit/miss counters, reported in `tiga serve` responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (the caller then solves and stores).
    pub misses: u64,
}

/// A content-addressed store of solve results.
#[derive(Debug, Default)]
pub struct SolveCache {
    entries: HashMap<String, CacheEntry>,
    stats: CacheStats,
}

impl SolveCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Builds the cache key for a canonical system text and solve options.
    ///
    /// `canonical_system` must be the exact-inverse serializer output
    /// (`tiga_lang::print_system` with the objective's `control:` line), so
    /// that textually different but semantically identical submissions —
    /// reordered flags, an inline model vs. the same file on disk — collide
    /// onto one entry.  Only semantics-relevant options participate;
    /// `jobs`/`interning` change no result and are excluded by design.
    #[must_use]
    pub fn key(canonical_system: &str, options: &SolveOptions) -> String {
        format!(
            "{canonical_system}\x1e\
             engine={engine}\n\
             extract_strategy={extract}\n\
             early_termination={early}\n\
             max_rounds={rounds}\n\
             stop_at_goal={stop}\n\
             max_states={states}\n",
            engine = options.engine.name(),
            extract = options.extract_strategy,
            early = options.early_termination,
            rounds = options.max_rounds,
            stop = options.explore.stop_at_goal,
            states = options.explore.max_states,
        )
    }

    /// A short printable digest of a key (FNV-1a 64), for response envelopes
    /// and logs.  Entries are stored under the full key, so digest
    /// collisions cannot cause wrong answers.
    #[must_use]
    pub fn fingerprint(key: &str) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Looks up a key, counting a hit or a miss, and returns a clone of the
    /// cached entry.
    pub fn lookup(&mut self, key: &str) -> Option<CacheEntry> {
        match self.entries.get(key) {
            Some(entry) => {
                self.stats.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Whether a key is present, without touching the counters (used to plan
    /// batch sharding before the in-order merge does the counted lookups).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Stores a solve result under a key.
    pub fn store(&mut self, key: String, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Number of cached games.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::winning::SolveEngine;

    fn entry(winning: bool) -> CacheEntry {
        CacheEntry {
            winning,
            stats: SolverStats {
                discrete_states: 7,
                ..SolverStats::default()
            },
            strategy: None,
            controller: None,
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = SolveCache::new();
        let key = SolveCache::key("system x", &SolveOptions::default());
        assert!(cache.lookup(&key).is_none());
        cache.store(key.clone(), entry(true));
        let hit = cache.lookup(&key).expect("stored entry");
        assert!(hit.winning);
        assert_eq!(hit.stats.discrete_states, 7);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&key));
        // `contains` does not count.
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn key_separates_semantics_relevant_options_only() {
        let base = SolveOptions::default();
        let key = SolveCache::key("m", &base);
        // jobs and interning do not change results — same key.
        let mut same = base.clone();
        same.jobs = 8;
        same.interning = false;
        assert_eq!(SolveCache::key("m", &same), key);
        // Engine, termination mode, strategy extraction and budgets do.
        let mut other = base.clone();
        other.engine = SolveEngine::Jacobi;
        assert_ne!(SolveCache::key("m", &other), key);
        let mut other = base.clone();
        other.early_termination = false;
        assert_ne!(SolveCache::key("m", &other), key);
        let mut other = base.clone();
        other.extract_strategy = false;
        assert_ne!(SolveCache::key("m", &other), key);
        let mut other = base.clone();
        other.max_rounds = 3;
        assert_ne!(SolveCache::key("m", &other), key);
        let mut other = base;
        other.explore.max_states = 42;
        assert_ne!(SolveCache::key("m", &other), key);
        // And the system text itself, of course.
        assert_ne!(SolveCache::key("m2", &SolveOptions::default()), key);
    }

    #[test]
    fn fingerprint_is_stable_and_collision_free_enough() {
        let a = SolveCache::fingerprint("a");
        assert_eq!(a.len(), 16);
        assert_eq!(a, SolveCache::fingerprint("a"));
        assert_ne!(a, SolveCache::fingerprint("b"));
        // Known FNV-1a 64 vector.
        assert_eq!(SolveCache::fingerprint(""), "cbf29ce484222325");
    }
}
