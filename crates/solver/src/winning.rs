//! Backward fixpoint computation of the winning states of a timed game
//! (reachability *and* safety), and strategy extraction.
//!
//! For a reachability purpose (`control: A<> φ`) the winning set is the
//! least fixpoint of
//!
//! ```text
//! W = Goal ∪ π(W)
//! π(W)(q) = Pred_t( W(q) ∪ cPred(W)(q) ∪ Forced(W)(q),  uPred(¬W)(q) ) ∩ Inv(q)
//! ```
//!
//! where
//!
//! * `cPred(W)(q)` are the valuations from which some **controllable** joint
//!   edge leads into `W`,
//! * `uPred(¬W)(q)` are the valuations from which some **uncontrollable**
//!   joint edge leads outside `W` (the set the delay trajectory must avoid),
//! * `Forced(W)(q)` are the valuations at the upper boundary of the invariant
//!   where at least one uncontrollable edge is enabled and *every* enabled
//!   uncontrollable edge leads into `W`: time cannot progress, so the plant is
//!   forced to move into `W` (this is what lets the tester win by waiting for
//!   outputs that the invariant forces, as in the Smart Light example), and
//! * `Pred_t` is the safe time-predecessor operator
//!   ([`tiga_dbm::Federation::pred_t`]).
//!
//! A safety purpose (`control: A[] φ`) is solved through its dual: the safe
//! set is the greatest fixpoint `νX. Safe ∩ CPred_t(X)`, whose complement is
//! the **least** fixpoint of the *environment's* reachability game into the
//! bad states `¬φ`.  The engines therefore compute the losing attractor `L`
//! with the very same `π` transformer, with the two players' roles swapped
//! (uncontrollable edges play the `cPred` part, controllable edges supply
//! the avoid-set, the urgent-state `δ = 0` degeneration is preserved) and
//! `¬φ` states seeded as absorbing targets; the winning (safe) federations
//! are then `Inv \ L` per state (`reach \ L` for the on-the-fly engine,
//! which confines every federation to its explored reach).  Strategy
//! extraction for safety yields a *safe, possibly non-terminating*
//! controller: wait where no delay can drift into `L`, take a controllable
//! escape into the safe set where delay — or an enabled plant move — could
//! reach `L` (see [`extract_safety_strategy`]).
//!
//! Three engines compute these fixpoints (see [`SolveEngine`]): the default
//! on-the-fly engine ([`crate::otfur`]) that interleaves exploration with
//! propagation, a Jacobi (round-based) solver that also extracts a
//! rank-annotated [`Strategy`] and serves as the differential-testing
//! oracle, and a worklist solver used as a decision procedure and as an
//! ablation point in the benchmarks.  This module owns the shared machinery:
//! the [`pi_update`] single-state transformer, option/selector types, and
//! the parameterized entry point that assembles every [`GameSolution`].

use crate::error::SolverError;
use crate::graph::{ExploreOptions, GameGraph, GameNode, GraphEdge, NodeId};
use crate::stats::{MemCounters, SolverStats, TimedStats};
use crate::strategy::{Decision, Strategy, StrategyRule};
use std::time::{Duration, Instant};
use tiga_dbm::{Bound, Dbm, Federation};
use tiga_model::{DiscreteState, System};
use tiga_tctl::{PathQuantifier, TestPurpose};

/// Which fixpoint engine [`solve`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolveEngine {
    /// On-the-fly (OTFUR-style): interleaves forward exploration with
    /// backward winning-federation propagation, subsumes re-reached zones,
    /// prunes provably-losing subtrees and stops as soon as the initial
    /// state is decided.  Extracts a strategy during the search.
    #[default]
    Otfur,
    /// Eager exploration followed by a round-based (Jacobi) fixpoint with
    /// rank-annotated strategy extraction.  The differential-testing oracle.
    Jacobi,
    /// Eager exploration followed by chaotic worklist iteration.  A
    /// decision procedure without strategy extraction; ablation baseline.
    Worklist,
}

impl SolveEngine {
    /// Stable lowercase name, used by benchmark reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SolveEngine::Otfur => "otfur",
            SolveEngine::Jacobi => "jacobi",
            SolveEngine::Worklist => "worklist",
        }
    }
}

/// Options controlling the game solver.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Which engine [`solve`] dispatches to.
    pub engine: SolveEngine,
    /// Forward-exploration options.
    pub explore: ExploreOptions,
    /// Whether to extract a state-based strategy (Jacobi and on-the-fly
    /// engines; the worklist engine never extracts one).
    pub extract_strategy: bool,
    /// Whether the on-the-fly engine may stop as soon as the initial state
    /// is decided winning.  Disable to force exhaustive propagation (the
    /// winning federations then coincide with the eager engines').
    pub early_termination: bool,
    /// Safety valve on the number of fixpoint rounds (eager engines) or a
    /// per-state reevaluation budget (on-the-fly engine).
    pub max_rounds: usize,
    /// Worker threads for the intra-solve parallel phases (Jacobi round
    /// updates, on-the-fly batch evaluations).  `0` means all available
    /// cores, matching `tiga fuzz --jobs`; the default `1` is sequential.
    /// Results are bit-identical for any value: state updates are computed
    /// against an immutable snapshot and merged in canonical state order.
    pub jobs: usize,
    /// Whether the passed lists use the hash-consed per-solve zone store
    /// ([`tiga_dbm::ZoneStore`]).  Interning changes no result — winning
    /// federations, stats (modulo the interning counters) and strategies are
    /// bit-identical either way — it only replaces deep zone copies and
    /// subsumption closures with id lookups.  Disable to measure the
    /// pre-interning clone pressure (`dbm_clones` then counts it).
    pub interning: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            engine: SolveEngine::default(),
            explore: ExploreOptions::default(),
            extract_strategy: true,
            early_termination: true,
            max_rounds: 10_000,
            jobs: 1,
            interning: true,
        }
    }
}

/// The result of solving a timed game.
#[derive(Clone, Debug)]
pub struct GameSolution {
    /// Whether the initial state (all clocks zero) is winning.
    pub winning_from_initial: bool,
    /// The explored game graph.
    pub graph: GameGraph,
    /// Winning federations, one per graph node.
    pub winning: Vec<Federation>,
    /// The synthesized strategy (when requested and the game is winnable).
    pub strategy: Option<Strategy>,
    /// The time bound of the purpose, if any.  Bounded games are solved on
    /// the augmented system (see [`bounded_system`]): the graph, federations
    /// and strategy all have one extra trailing [`TICK_CLOCK`] dimension, and
    /// [`GameSolution::is_winning_state`] expects the tick clock's value as
    /// the last element of `ticks`.
    pub bound: Option<i64>,
    /// Statistics and timing.
    pub timed: TimedStats,
}

impl GameSolution {
    /// Whether a concrete state (discrete part + clock ticks) is winning.
    ///
    /// States outside the explored graph are reported as not winning.
    #[must_use]
    pub fn is_winning_state(&self, discrete: &DiscreteState, ticks: &[i64], scale: i64) -> bool {
        let Some(node) = self.graph.node_of(discrete) else {
            return false;
        };
        let mut vals = Vec::with_capacity(ticks.len() + 1);
        vals.push(0);
        vals.extend_from_slice(ticks);
        self.winning[node].contains_at(&vals, scale)
    }

    /// The winning federation of a discrete state, if it was explored.
    #[must_use]
    pub fn winning_federation(&self, discrete: &DiscreteState) -> Option<&Federation> {
        self.graph.node_of(discrete).map(|id| &self.winning[id])
    }

    /// Statistics convenience accessor.
    #[must_use]
    pub fn stats(&self) -> &SolverStats {
        &self.timed.stats
    }
}

/// Solves a timed game — reachability (`control: A<> φ`) or safety
/// (`control: A[] φ`) — with the engine selected by
/// [`SolveOptions::engine`] (on-the-fly by default).
///
/// # Errors
///
/// Propagates exploration and evaluation errors.
pub fn solve(
    system: &System,
    purpose: &TestPurpose,
    options: &SolveOptions,
) -> Result<GameSolution, SolverError> {
    solve_with_engine(system, purpose, options, options.engine)
}

/// Solves a timed game (reachability or safety) with the eager Jacobi
/// engine and optionally extracts a winning strategy.
///
/// Forces [`SolveEngine::Jacobi`] regardless of [`SolveOptions::engine`];
/// use [`solve`] to honor the selector.
///
/// # Errors
///
/// Propagates exploration and evaluation errors.
pub fn solve_jacobi(
    system: &System,
    purpose: &TestPurpose,
    options: &SolveOptions,
) -> Result<GameSolution, SolverError> {
    solve_with_engine(system, purpose, options, SolveEngine::Jacobi)
}

/// Solves a timed game (reachability or safety) with the eager worklist
/// (chaotic-iteration) engine.
///
/// This variant does not extract a strategy for reachability purposes; it is
/// used as a decision procedure and as an ablation point in the benchmark
/// harness.  Forces [`SolveEngine::Worklist`] regardless of
/// [`SolveOptions::engine`].
///
/// # Errors
///
/// Same as [`solve_jacobi`].
pub fn solve_worklist(
    system: &System,
    purpose: &TestPurpose,
    options: &SolveOptions,
) -> Result<GameSolution, SolverError> {
    solve_with_engine(system, purpose, options, SolveEngine::Worklist)
}

/// What an engine hands back to the shared assembly code.
pub(crate) struct EngineOutcome {
    pub winning: Vec<Federation>,
    pub strategy: Option<Strategy>,
    pub iterations: usize,
    pub subsumed_zones: usize,
    pub pruned_evaluations: usize,
    pub early_terminated: bool,
    pub mem: MemCounters,
}

/// How a purpose maps onto the attractor computation the engines run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GameMode {
    /// `A<> φ`: the attractor *is* the tester's winning set, goal = `φ`.
    Reachability,
    /// `A[] φ`: the attractor is the *losing* set of the dual (role-swapped)
    /// reachability game into the bad states `¬φ`; the winning set is its
    /// complement within the invariant (resp. the explored reach).
    Safety,
}

impl GameMode {
    /// Whether the `π` transformer swaps the two players' edge roles.
    pub(crate) fn swap_roles(self) -> bool {
        self == GameMode::Safety
    }
}

/// Name of the auxiliary, never-reset tick clock injected for time-bounded
/// purposes (`control: A<><=T φ` / `A[]<=T φ`).  The `#` prefix cannot be
/// lexed in `.tg` models, so the name can never clash with a user clock.
pub const TICK_CLOCK: &str = "#t";

/// The augmented system a *bounded* purpose is solved on: the original
/// system plus a fresh, never-reset [`TICK_CLOCK`] clock measuring global
/// elapsed time (extrapolated up to the bound).  Returns `None` for
/// unbounded purposes, which are solved on the original system directly.
///
/// Strategies and controllers synthesized for a bounded purpose are
/// expressed over this augmented system — callers that render them
/// (clock names) or query them (one extra trailing clock value) need it.
///
/// # Errors
///
/// Returns [`SolverError::Model`] if the bound is negative or exceeds
/// [`tiga_model::MAX_CONSTANT`], or if the system already declares a clock
/// named `#t`.
pub fn bounded_system(
    system: &System,
    purpose: &TestPurpose,
) -> Result<Option<System>, SolverError> {
    match purpose.bound {
        Some(t) => bounded_parts(system, t).map(|(aug, _)| Some(aug)),
        None => Ok(None),
    }
}

/// Builds the augmented system and the clip zone `#t <= T` for a bounded
/// purpose.
fn bounded_parts(system: &System, bound: i64) -> Result<(System, Dbm), SolverError> {
    let max = i32::try_from(bound).unwrap_or(i32::MIN);
    let (aug, tick) = system.with_extra_clock(TICK_CLOCK, max)?;
    let mut clip = Dbm::universe(aug.dim());
    clip.constrain(tick.dbm_index(), 0, Bound::le(max));
    Ok((aug, clip))
}

/// The single parameterized entry point behind every public solver function:
/// derives the game mode from the purpose, runs the selected engine, and
/// assembles the solution (safety complementation, timing, statistics,
/// `winning_from_initial`, strategy gating) uniformly.
fn solve_with_engine(
    system: &System,
    purpose: &TestPurpose,
    options: &SolveOptions,
    engine: SolveEngine,
) -> Result<GameSolution, SolverError> {
    let mode = match purpose.quantifier {
        PathQuantifier::Reachability => GameMode::Reachability,
        PathQuantifier::Safety => GameMode::Safety,
    };
    // The predicate whose states seed the attractor: the goal itself for
    // reachability, the *bad* states `¬φ` for safety.
    let target = match mode {
        GameMode::Reachability => purpose.predicate.clone(),
        GameMode::Safety => purpose.predicate.clone().negated(),
    };
    // Time-bounded purposes are lowered right here: the *unbounded* fixpoint
    // runs on the augmented system (fresh never-reset tick clock), with the
    // attractor seeds clipped to `#t <= T` — goal regions past the deadline
    // are not wins (reachability), violations past the deadline are not
    // losses (safety).  `#t` only grows and goal/bad nodes are absorbing in
    // the π update, so the clipped seeds stay exact; everything downstream
    // (strategy extraction, minimization, compiled controllers) works
    // unchanged on the transformed game.
    let bounded = purpose
        .bound
        .map(|t| bounded_parts(system, t))
        .transpose()?;
    let (system, clip) = match &bounded {
        Some((aug, clip)) => (aug, Some(clip)),
        None => (system, None),
    };
    let (graph, outcome, exploration_time, fixpoint_time) = match engine {
        SolveEngine::Otfur => {
            // Exploration and propagation are interleaved: the whole search
            // is accounted to the fixpoint phase.
            let start = Instant::now();
            let (graph, outcome) = crate::otfur::run(system, &target, options, mode, clip)?;
            (graph, outcome, Duration::ZERO, start.elapsed())
        }
        SolveEngine::Jacobi | SolveEngine::Worklist => {
            let explore_start = Instant::now();
            let (graph, mut mem) = GameGraph::explore_jobs_mem(
                system,
                &target,
                &options.explore,
                options.jobs,
                options.interning,
            )?;
            let exploration_time = explore_start.elapsed();
            let fixpoint_start = Instant::now();
            let mut fixpoint = Engine::new(system, &graph, mode, clip);
            let outcome = if engine == SolveEngine::Jacobi {
                let jacobi = fixpoint.run_jacobi(options)?;
                mem.peak_live_zones = mem.peak_live_zones.max(jacobi.peak_live_zones);
                EngineOutcome {
                    winning: jacobi.winning,
                    strategy: Some(jacobi.strategy),
                    iterations: jacobi.iterations,
                    subsumed_zones: 0,
                    pruned_evaluations: 0,
                    early_terminated: false,
                    mem,
                }
            } else {
                let (winning, iterations, peak_live_zones) = fixpoint.run_worklist(options)?;
                mem.peak_live_zones = mem.peak_live_zones.max(peak_live_zones);
                EngineOutcome {
                    winning,
                    strategy: None,
                    iterations,
                    subsumed_zones: 0,
                    pruned_evaluations: 0,
                    early_terminated: false,
                    mem,
                }
            };
            (graph, outcome, exploration_time, fixpoint_start.elapsed())
        }
    };

    // For safety games the engines computed the losing attractor; the
    // winning (safe) federations are its complement — within the invariant
    // for the eager engines, within the explored reach for the on-the-fly
    // engine (which confines every federation to its reach, so the two
    // complements coincide on every reachable valuation).
    let (winning, losing) = match mode {
        GameMode::Reachability => (outcome.winning, None),
        GameMode::Safety => {
            let losing = outcome.winning;
            let winning: Vec<Federation> = graph
                .nodes()
                .iter()
                .enumerate()
                .map(|(id, node)| {
                    let mut safe = if engine == SolveEngine::Otfur {
                        node.reach.clone()
                    } else {
                        Federation::from_zone(node.invariant.clone())
                    };
                    safe.subtract(&losing[id]);
                    safe.reduce_exact();
                    safe
                })
                .collect();
            (winning, Some(losing))
        }
    };

    let winning_from_initial = initial_is_winning(system, &graph, &winning);
    let strategy = if !options.extract_strategy || !winning_from_initial {
        None
    } else {
        match &losing {
            // Reachability: the engines extracted the strategy in-search.
            None => outcome.strategy,
            // Safety: extract the safe controller from the converged sets
            // (the worklist engine never carries a strategy).
            Some(losing) => {
                if engine == SolveEngine::Worklist {
                    None
                } else {
                    Some(extract_safety_strategy(system, &graph, &winning, losing)?)
                }
            }
        }
    };
    let stats = SolverStats {
        discrete_states: graph.len(),
        graph_edges: graph.edge_count(),
        iterations: outcome.iterations,
        winning_zones: winning.iter().map(Federation::len).sum(),
        peak_federation_size: winning.iter().map(Federation::len).max().unwrap_or(0),
        reach_zones: graph.reach_zone_count(),
        subsumed_zones: outcome.subsumed_zones,
        pruned_evaluations: outcome.pruned_evaluations,
        early_terminated: outcome.early_terminated,
        interned_zones: outcome.mem.interned_zones,
        intern_hits: outcome.mem.intern_hits,
        dbm_clones: outcome.mem.dbm_clones,
        peak_live_zones: outcome.mem.peak_live_zones,
        minimized_bytes_saved: outcome.mem.minimized_bytes_saved,
    };
    Ok(GameSolution {
        winning_from_initial,
        graph,
        winning,
        strategy,
        bound: purpose.bound,
        timed: TimedStats {
            stats,
            exploration_time,
            fixpoint_time,
        },
    })
}

/// Extracts a safe (possibly non-terminating) controller from the converged
/// safe/losing federations of a safety game.
///
/// Per discrete state with a non-empty safe set `W`:
///
/// * valuations from which no delay can drift into `L` and no enabled plant
///   move leads into `L` are rank-0 *wait* regions — sitting is safe
///   forever;
/// * the remaining safe valuations (`W ∩ (L↓ ∪ uPred(L))`) are rank-1 wait
///   regions paired with rank-1 *take* regions `cPred(W) ∩ W`: the executor
///   waits until a take region is entered (its wake-up hint) and then plays
///   the escape.  Whenever an enabled plant move threatens `L` *now*
///   (`uPred(L)`), an escape is enabled at that very valuation — this is
///   exactly the `δ = 0` case of the dual `Pred_t`, which put the valuation
///   in `W` only because the escape exists.
///
/// Take rules are inserted in a canonical edge order (independent of the
/// discovery order of the producing engine), so OTFUR- and Jacobi-extracted
/// safety strategies prescribe the same moves.
fn extract_safety_strategy(
    system: &System,
    graph: &GameGraph,
    winning: &[Federation],
    losing: &[Federation],
) -> Result<Strategy, SolverError> {
    let mut strategy = Strategy::new(system.dim());
    for (id, node) in graph.nodes().iter().enumerate() {
        if node.is_goal || winning[id].is_empty() {
            // `is_goal` marks *bad* states in safety mode; nothing is safe
            // there.
            continue;
        }
        // Valuations from which pure delay can reach the losing set.
        let mut drift = losing[id].clone();
        drift.down();
        // Valuations where an enabled plant move leads into the losing set.
        let mut threat = Federation::empty(system.dim());
        // Escape regions, keyed canonically for engine-independent order.
        let mut escapes: Vec<(String, &GraphEdge, Federation)> = Vec::new();
        for edge in &node.edges {
            if edge.controllable {
                let region = system
                    .joint_pred_federation(&node.discrete, &edge.joint, &winning[edge.target])?
                    .intersection(&winning[id]);
                if !region.is_empty() {
                    let key = format!("{:?}|{:?}", edge.joint, graph.node(edge.target).discrete);
                    escapes.push((key, edge, region));
                }
            } else {
                let pred = system.joint_pred_federation(
                    &node.discrete,
                    &edge.joint,
                    &losing[edge.target],
                )?;
                threat.union_with(&pred);
            }
        }
        let danger = drift.union(&threat);
        let calm = winning[id].difference(&danger);
        for zone in &calm {
            strategy.add_rule(
                node.discrete.clone(),
                StrategyRule {
                    rank: 0,
                    zone: zone.clone(),
                    decision: Decision::Wait,
                },
            );
        }
        let alert = winning[id].intersection(&danger);
        for zone in &alert {
            strategy.add_rule(
                node.discrete.clone(),
                StrategyRule {
                    rank: 1,
                    zone: zone.clone(),
                    decision: Decision::Wait,
                },
            );
        }
        escapes.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, edge, region) in &escapes {
            for zone in region {
                strategy.add_rule(
                    node.discrete.clone(),
                    StrategyRule {
                        rank: 1,
                        zone: zone.clone(),
                        decision: Decision::Take(edge.joint.clone()),
                    },
                );
            }
        }
    }
    Ok(strategy)
}

fn initial_is_winning(system: &System, graph: &GameGraph, winning: &[Federation]) -> bool {
    let origin = vec![0i64; system.dim()];
    winning[graph.initial()].contains_scaled(&origin)
}

/// Shared machinery of the two fixpoint engines.
struct Engine<'a> {
    system: &'a System,
    graph: &'a GameGraph,
    /// Reachability (attractor = winning) or safety (attractor = losing,
    /// roles swapped in the `π` update).
    mode: GameMode,
    /// Bounded purposes: the `#t <= T` zone intersected into every attractor
    /// seed.  `None` for unbounded purposes.
    clip: Option<&'a Dbm>,
    /// Invariant-boundary federation per node (states where time cannot
    /// progress further).
    boundary: Vec<Federation>,
}

/// Result of the Jacobi engine.
struct JacobiOutcome {
    winning: Vec<Federation>,
    strategy: Strategy,
    iterations: usize,
    peak_live_zones: usize,
}

impl<'a> Engine<'a> {
    fn new(
        system: &'a System,
        graph: &'a GameGraph,
        mode: GameMode,
        clip: Option<&'a Dbm>,
    ) -> Self {
        let boundary = graph
            .nodes()
            .iter()
            .map(|n| invariant_boundary(&n.invariant, n.urgent))
            .collect();
        Engine {
            system,
            graph,
            mode,
            clip,
            boundary,
        }
    }

    fn initial_winning_sets(&self) -> Vec<Federation> {
        self.graph
            .nodes()
            .iter()
            .map(|n| {
                if n.is_goal {
                    // Bounded purposes: only the pre-deadline part of a goal
                    // (or bad) region seeds the attractor.
                    let mut seed = n.invariant.clone();
                    if let Some(clip) = self.clip {
                        seed.intersect(clip);
                    }
                    if seed.is_empty() {
                        Federation::empty(self.system.dim())
                    } else {
                        Federation::from_zone(seed)
                    }
                } else {
                    Federation::empty(self.system.dim())
                }
            })
            .collect()
    }

    /// Computes the single-node update `Goal(q) ∪ π(W)(q)` from the winning
    /// sets in `win` (see [`pi_update`]; `None` means provably unchanged).
    #[allow(clippy::type_complexity)]
    fn node_update(
        &self,
        node_id: NodeId,
        node: &GameNode,
        win: &[Federation],
    ) -> Result<Option<(Federation, Vec<(usize, Federation)>)>, SolverError> {
        pi_update(
            self.system,
            node_id,
            &node.discrete,
            &node.invariant,
            node.is_goal,
            node.urgent,
            &node.edges,
            &self.boundary[node_id],
            win,
            self.mode.swap_roles(),
            |id| &self.graph.node(id).invariant,
        )
    }

    /// Jacobi iteration: every round recomputes all nodes from the previous
    /// round's winning sets, which yields well-founded ranks for strategy
    /// extraction.
    fn run_jacobi(&mut self, options: &SolveOptions) -> Result<JacobiOutcome, SolverError> {
        let mut win = self.initial_winning_sets();
        let mut strategy = Strategy::new(self.system.dim());
        // In-search strategy recording only applies to reachability, where
        // the round number is a well-founded rank; safety strategies are
        // extracted from the converged sets by `extract_safety_strategy`.
        let record = options.extract_strategy && self.mode == GameMode::Reachability;
        // Goal regions are rank-0 wait regions (the executor detects the goal
        // via the purpose; these rules make `rank_of` total on winning states).
        if record {
            for (id, node) in self.graph.nodes().iter().enumerate() {
                if node.is_goal {
                    for zone in &win[id] {
                        strategy.add_rule(
                            node.discrete.clone(),
                            StrategyRule {
                                rank: 0,
                                zone: zone.clone(),
                                decision: Decision::Wait,
                            },
                        );
                    }
                }
            }
        }
        // Non-goal nodes, the shard units of one Jacobi round.  Every round
        // recomputes each of them from the previous round's snapshot, so the
        // per-node updates are independent and can run on any number of
        // worker threads; merging the results in canonical (node-id) order
        // below makes the outcome bit-identical for any `options.jobs`.
        let shard: Vec<NodeId> = (0..self.graph.len())
            .filter(|&id| !self.graph.node(id).is_goal)
            .collect();
        let reach_total = self.graph.reach_zone_count();
        let mut win_total: usize = win.iter().map(Federation::len).sum();
        let mut peak_live_zones = reach_total + win_total;
        let mut round: u32 = 0;
        loop {
            round += 1;
            if round as usize > options.max_rounds {
                break;
            }
            let mut changed = false;
            // The parallel updates read `win` as the immutable round
            // snapshot; the merge below only writes a node *after* its own
            // pre-round value has been consumed, so no cross-node clone of
            // the snapshot is needed.
            let updates = tiga_parallel::run_indexed(shard.clone(), options.jobs, |_, node_id| {
                self.node_update(node_id, self.graph.node(node_id), &win)
            });
            for (&node_id, update) in shard.iter().zip(updates) {
                let node = self.graph.node(node_id);
                let Some((new_win, action_regions)) = update? else {
                    continue;
                };
                if !win[node_id].includes(&new_win) {
                    changed = true;
                    if record {
                        let delta = new_win.difference(&win[node_id]);
                        for zone in &delta {
                            strategy.add_rule(
                                node.discrete.clone(),
                                StrategyRule {
                                    rank: round,
                                    zone: zone.clone(),
                                    decision: Decision::Wait,
                                },
                            );
                        }
                        for (edge_idx, region) in &action_regions {
                            let joint = node.edges[*edge_idx].joint.clone();
                            for zone in region {
                                strategy.add_rule(
                                    node.discrete.clone(),
                                    StrategyRule {
                                        rank: round,
                                        zone: zone.clone(),
                                        decision: Decision::Take(joint.clone()),
                                    },
                                );
                            }
                        }
                    }
                    win_total = win_total + new_win.len() - win[node_id].len();
                    win[node_id] = new_win;
                    peak_live_zones = peak_live_zones.max(reach_total + win_total);
                }
            }
            if !changed {
                break;
            }
        }
        Ok(JacobiOutcome {
            winning: win,
            strategy,
            iterations: round as usize,
            peak_live_zones,
        })
    }

    /// Worklist (chaotic) iteration: nodes are re-processed when one of their
    /// successors gains winning states.
    fn run_worklist(
        &mut self,
        options: &SolveOptions,
    ) -> Result<(Vec<Federation>, usize, usize), SolverError> {
        let n = self.graph.len();
        let mut win = self.initial_winning_sets();
        let reach_total = self.graph.reach_zone_count();
        let mut win_total: usize = win.iter().map(Federation::len).sum();
        let mut peak_live_zones = reach_total + win_total;
        // Predecessor lists.
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in self.graph.nodes().iter().enumerate() {
            for edge in &node.edges {
                if !preds[edge.target].contains(&id) {
                    preds[edge.target].push(id);
                }
            }
        }
        let mut in_queue = vec![false; n];
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        // Seed: all predecessors of goal nodes, plus every node with a goal
        // somewhere below (cheap approximation: all nodes).
        for (id, flag) in in_queue.iter_mut().enumerate() {
            queue.push_back(id);
            *flag = true;
        }
        let mut pops = 0usize;
        let max_pops = options.max_rounds.saturating_mul(n.max(1));
        while let Some(node_id) = queue.pop_front() {
            in_queue[node_id] = false;
            pops += 1;
            if pops > max_pops {
                break;
            }
            let node = self.graph.node(node_id);
            if node.is_goal {
                continue;
            }
            let Some((new_win, _)) = self.node_update(node_id, node, &win)? else {
                continue;
            };
            if !win[node_id].includes(&new_win) {
                win_total = win_total + new_win.len() - win[node_id].len();
                win[node_id] = new_win;
                peak_live_zones = peak_live_zones.max(reach_total + win_total);
                for &p in &preds[node_id] {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        Ok((win, pops, peak_live_zones))
    }
}

/// One step of the controllable-predecessor fixpoint, shared verbatim by the
/// Jacobi, worklist and on-the-fly engines: computes `Goal(q) ∪ π(W)(q)` for
/// a single discrete state from the winning sets in `win`, together with the
/// controllable action regions used for strategy extraction.
///
/// Returns `None` when the update is provably the identity — goal states
/// (their winning set is seeded once and never grows) and states where every
/// predecessor term came up empty.  In both cases the action regions are
/// necessarily empty too, so callers can treat `None` as "no change, no
/// rules" without cloning the current winning set.
///
/// `win` is indexed by [`NodeId`]; `inv_of` supplies the invariant of a
/// target node (the on-the-fly engine resolves it against its partial
/// passed list, the eager engines against the explored graph).  Targets that
/// have not been evaluated yet simply contribute their current — possibly
/// empty — winning set, which is sound because the fixpoint is monotone and
/// every growth re-triggers dependent updates.
///
/// `urgent` states admit no delay, so the safe time-predecessor degenerates
/// to its `δ = 0` case `targets \ bad` (found by `tiga fuzz`: applying the
/// full `Pred_t` past-closure in an urgent state claimed valuations winning
/// that can only reach the win-enabling guard by letting time pass — which
/// urgency forbids; such states are timelocks, not wins).
///
/// `swap_roles` flips the two players: with it set, *uncontrollable* edges
/// drive the attractor and *controllable* edges supply the avoid-set — this
/// turns the update into the environment's controllable predecessor, which
/// is how safety games are solved (the attractor is then the tester's
/// *losing* set).  The urgent `δ = 0` case and the invariant-boundary
/// `Forced` term apply to the swapped roles unchanged.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::type_complexity)]
pub(crate) fn pi_update<'i, F>(
    system: &System,
    node_id: NodeId,
    discrete: &DiscreteState,
    invariant: &Dbm,
    is_goal: bool,
    urgent: bool,
    edges: &[GraphEdge],
    boundary: &Federation,
    win: &[Federation],
    swap_roles: bool,
    inv_of: F,
) -> Result<Option<(Federation, Vec<(usize, Federation)>)>, SolverError>
where
    F: Fn(NodeId) -> &'i Dbm,
{
    let dim = system.dim();
    if is_goal {
        return Ok(None);
    }
    let mut cpred = Federation::empty(dim);
    let mut action_regions: Vec<(usize, Federation)> = Vec::new();
    let mut bad = Federation::empty(dim);
    // (pred of winning target, guard zone) for each uncontrollable edge,
    // used by the Forced term.
    let mut unc: Vec<(Federation, Dbm)> = Vec::new();
    for (edge_idx, edge) in edges.iter().enumerate() {
        let target_win = &win[edge.target];
        let pred_win = system.joint_pred_federation(discrete, &edge.joint, target_win)?;
        if edge.controllable ^ swap_roles {
            if !pred_win.is_empty() {
                cpred.union_with(&pred_win);
                action_regions.push((edge_idx, pred_win));
            }
        } else {
            // Complement of the target winning set within its invariant.
            let target_inv = Federation::from_zone(inv_of(edge.target).clone());
            let escape = target_inv.difference(target_win);
            if !escape.is_empty() {
                bad.union_with(&system.joint_pred_federation(discrete, &edge.joint, &escape)?);
            }
            let mut guard = system.joint_guard_zone(discrete, &edge.joint)?;
            guard.intersect(invariant);
            unc.push((pred_win, guard));
        }
    }
    // Forced moves at the invariant boundary.
    let mut forced = Federation::empty(dim);
    if !boundary.is_empty() && !unc.is_empty() {
        let mut some_enabled_good = Federation::empty(dim);
        let mut all_good = Federation::from_zone(invariant.clone());
        for (pred_win, guard) in &unc {
            some_enabled_good.union_with(pred_win);
            let mut not_guard = Federation::from_zone(invariant.clone());
            not_guard.subtract_zone(guard);
            all_good = all_good.intersection(&pred_win.union(&not_guard));
        }
        forced = boundary
            .intersection(&some_enabled_good)
            .intersection(&all_good);
    }
    let mut targets = win[node_id].clone();
    targets.absorb(cpred);
    targets.absorb(forced);
    if targets.is_empty() {
        // All predecessor terms were empty, so no action regions were
        // recorded either: the update is the identity.
        return Ok(None);
    }
    let mut new_win = if urgent {
        // No delay is possible: the tester wins exactly where it already
        // wins at δ = 0 and the plant cannot preempt into ¬W.
        let mut now = targets;
        now.subtract(&bad);
        now
    } else {
        targets.pred_t(&bad)
    };
    new_win.intersect_zone(invariant);
    new_win.union_with(&win[node_id]);
    new_win.reduce_exact();
    Ok(Some((new_win, action_regions)))
}

/// The upper boundary of an invariant zone: the valuations from which no
/// positive delay keeps the invariant satisfied.
///
/// For urgent states the whole invariant is a boundary.
pub(crate) fn invariant_boundary(invariant: &Dbm, urgent: bool) -> Federation {
    if urgent {
        return Federation::from_zone(invariant.clone());
    }
    if invariant.is_empty() {
        return Federation::empty(invariant.dim());
    }
    // States that *can* delay: every finite upper bound made strict.
    let mut can_delay = invariant.clone();
    let mut has_upper = false;
    for i in 1..invariant.dim() {
        let b = invariant.at(i, 0);
        if let Some(m) = b.constant() {
            has_upper = true;
            can_delay.constrain(i, 0, Bound::lt(m));
        }
    }
    if !has_upper {
        return Federation::empty(invariant.dim());
    }
    let mut boundary = Federation::from_zone(invariant.clone());
    boundary.subtract_zone(&can_delay);
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
    use tiga_tctl::TestPurpose;

    /// A plant that, once kicked, must reply within [1, 3] (invariant x <= 3).
    /// The tester wins `A<> Plant.Done` by kicking and waiting: the output is
    /// forced by the invariant.
    fn forced_output_system() -> System {
        let mut b = SystemBuilder::new("forced");
        let x = b.clock("x").unwrap();
        let kick = b.input_channel("kick").unwrap();
        let reply = b.output_channel("reply").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let busy = plant.location("Busy").unwrap();
        let done = plant.location("Done").unwrap();
        plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
        plant.add_edge(
            EdgeBuilder::new(busy, done)
                .output(reply)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(kick));
        user.add_edge(EdgeBuilder::new(u, u).input(reply));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// Like [`forced_output_system`] but the Busy location has no invariant:
    /// the plant may stay silent forever, so the purpose is not enforceable.
    fn silent_plant_system() -> System {
        let mut b = SystemBuilder::new("silent");
        let x = b.clock("x").unwrap();
        let kick = b.input_channel("kick").unwrap();
        let reply = b.output_channel("reply").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let busy = plant.location("Busy").unwrap();
        let done = plant.location("Done").unwrap();
        plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
        plant.add_edge(
            EdgeBuilder::new(busy, done)
                .output(reply)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(kick));
        user.add_edge(EdgeBuilder::new(u, u).input(reply));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// A plant whose uncontrollable choice can dodge the goal forever: from
    /// Busy the plant may answer `good!` (to Done) or `bad!` (back to Idle).
    fn dodging_plant_system() -> System {
        let mut b = SystemBuilder::new("dodge");
        let x = b.clock("x").unwrap();
        let kick = b.input_channel("kick").unwrap();
        let good = b.output_channel("good").unwrap();
        let bad = b.output_channel("bad").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let busy = plant.location("Busy").unwrap();
        let done = plant.location("Done").unwrap();
        plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
        plant.add_edge(EdgeBuilder::new(busy, done).output(good));
        plant.add_edge(EdgeBuilder::new(busy, idle).output(bad).reset(x));
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(kick));
        user.add_edge(EdgeBuilder::new(u, u).input(good));
        user.add_edge(EdgeBuilder::new(u, u).input(bad));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forced_output_is_winnable_and_strategy_extracted() {
        let sys = forced_output_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
        let strategy = solution.strategy.as_ref().expect("strategy");
        assert!(strategy.state_count() >= 2);
        // Initial state: the strategy should say "take kick" (immediately or
        // after some delay) — in the initial state kick is enabled everywhere.
        let d0 = sys.initial_discrete();
        let decision = strategy.decide(&d0, &[0], 4).expect("covered");
        assert!(matches!(
            decision,
            crate::strategy::StrategyDecision::Take(_)
        ));
        // The Busy state is winning for every clock value admitted by the
        // invariant: the reply is forced.
        let busy = {
            let mut d = d0.clone();
            let (aut, loc) = sys.location_by_qualified_name("Plant.Busy").unwrap();
            d.locations[aut.index()] = loc;
            d
        };
        assert!(solution.is_winning_state(&busy, &[0], 4));
        assert!(solution.is_winning_state(&busy, &[12], 4)); // x = 3 boundary
                                                             // Waiting is the prescribed move in Busy.
        let decision = strategy.decide(&busy, &[4], 4).expect("covered");
        assert!(matches!(
            decision,
            crate::strategy::StrategyDecision::Wait { .. }
        ));
    }

    #[test]
    fn silent_plant_is_not_winnable() {
        let sys = silent_plant_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(!solution.winning_from_initial);
        assert!(solution.strategy.is_none());
    }

    #[test]
    fn dodging_plant_is_not_winnable_for_reaching_done() {
        let sys = dodging_plant_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(!solution.winning_from_initial);
        // ... but reaching Busy is trivially winnable (one controllable step).
        let tp2 = TestPurpose::parse("control: A<> Plant.Busy", &sys).unwrap();
        let solution2 = solve_jacobi(&sys, &tp2, &SolveOptions::default()).unwrap();
        assert!(solution2.winning_from_initial);
    }

    /// Like [`forced_output_system`] plus a controllable decoy chain
    /// `Idle -> C1 -> ... -> C5` that never reaches the goal.  The eager
    /// engines explore the whole chain; the on-the-fly engine decides the
    /// initial state before the chain's tail is ever reached.
    fn forced_output_with_decoy_chain() -> System {
        let mut b = SystemBuilder::new("forced-decoy");
        let x = b.clock("x").unwrap();
        let kick = b.input_channel("kick").unwrap();
        let reply = b.output_channel("reply").unwrap();
        let step = b.input_channel("step").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let busy = plant.location("Busy").unwrap();
        let done = plant.location("Done").unwrap();
        plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
        plant.add_edge(
            EdgeBuilder::new(busy, done)
                .output(reply)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        let mut prev = idle;
        for i in 1..=5 {
            let c = plant.location(&format!("C{i}")).unwrap();
            plant.add_edge(EdgeBuilder::new(prev, c).input(step).reset(x));
            prev = c;
        }
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(kick));
        user.add_edge(EdgeBuilder::new(u, u).output(step));
        user.add_edge(EdgeBuilder::new(u, u).input(reply));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// Regression model for the reach-confinement soundness bug: `Q` is
    /// first reached uncontrollably at `x >= 5`, where the escape edge
    /// (guard `x <= 2`) is invisible to zone-driven edge discovery.  `Q` is
    /// later re-entered with `x = 0`, where the plant can escape to a losing
    /// sink.  An engine that evaluates `Q` over its whole invariant before
    /// the second zone arrives claims `x = 0` is winning and never retracts
    /// it, deciding the game winning; the game is actually losing.
    fn late_escape_system() -> System {
        let mut b = SystemBuilder::new("late-escape");
        let x = b.clock("x").unwrap();
        let i1 = b.input_channel("i1").unwrap();
        let i2 = b.input_channel("i2").unwrap();
        let i3 = b.input_channel("i3").unwrap();
        let u1 = b.output_channel("u1").unwrap();
        let esc = b.output_channel("esc").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let p0 = plant.location("P0").unwrap();
        let p1 = plant.location("P1").unwrap();
        let q = plant.location("Q").unwrap();
        let goal = plant.location("GoalLoc").unwrap();
        let sink = plant.location("Sink").unwrap();
        plant.add_edge(
            EdgeBuilder::new(p0, q)
                .output(u1)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 5)),
        );
        plant.add_edge(EdgeBuilder::new(p0, p1).input(i1));
        plant.add_edge(EdgeBuilder::new(p1, q).input(i2).reset(x));
        plant.add_edge(
            EdgeBuilder::new(q, goal)
                .input(i3)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 6)),
        );
        plant.add_edge(
            EdgeBuilder::new(q, sink)
                .output(esc)
                .guard_clock(ClockConstraint::new(x, CmpOp::Le, 2)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).input(u1));
        user.add_edge(EdgeBuilder::new(u, u).input(esc));
        user.add_edge(EdgeBuilder::new(u, u).output(i1));
        user.add_edge(EdgeBuilder::new(u, u).output(i2));
        user.add_edge(EdgeBuilder::new(u, u).output(i3));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// Regression model for the self-loop frontier bug (found by `tiga
    /// fuzz`, seed 0xf905de9d34fbd072): a controllable sync self-loop resets
    /// `y` only, so each round pumps the `x - y` difference until
    /// extrapolation unbounds `x` — at which point an uncontrollable tau
    /// escape (guard `x > 5`) becomes enabled.  The successor zone of the
    /// self-loop lands in the *same* state's frontier mid-expansion; an
    /// engine that evaluates the state against a reach federation containing
    /// that not-yet-expanded zone claims `x > 5` valuations winning before
    /// the escape edge is discovered, and monotone growth never retracts
    /// them.  Jacobi correctly confines the winning set to `x <= 5`.
    fn self_loop_pumping_system() -> System {
        let mut b = SystemBuilder::new("self-loop-pump");
        let x = b.clock("x").unwrap();
        let y = b.clock("y").unwrap();
        let go = b.input_channel("go").unwrap();
        let mut a0 = AutomatonBuilder::new("A0");
        let a0l0 = a0.location("L0").unwrap();
        let a0l1 = a0.location("L1").unwrap();
        a0.add_edge(EdgeBuilder::new(a0l0, a0l1).output(go));
        b.add_automaton(a0.build().unwrap()).unwrap();
        let mut a1 = AutomatonBuilder::new("A1");
        let a1l0 = a1.location("L0").unwrap();
        a1.add_edge(EdgeBuilder::new(a1l0, a1l0).output(go));
        a1.add_edge(EdgeBuilder::new(a1l0, a1l0).output(go).reset(x));
        b.add_automaton(a1.build().unwrap()).unwrap();
        let mut a2 = AutomatonBuilder::new("A2");
        let a2l0 = a2.location("L0").unwrap();
        a2.add_invariant(a2l0, ClockConstraint::new(y, CmpOp::Le, 2));
        a2.add_edge(
            EdgeBuilder::new(a2l0, a2l0).guard_clock(ClockConstraint::new(x, CmpOp::Gt, 5)),
        );
        a2.add_edge(EdgeBuilder::new(a2l0, a2l0).input(go).reset(y));
        b.add_automaton(a2.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// Regression model for the urgent-state delay bug (found by `tiga
    /// fuzz`, seed 0xa75b7d0d09348573): `Wait` is urgent and its only exit
    /// is an uncontrollable tau guarded `x == 2` into the goal.  With time
    /// frozen, `Wait` at `x < 2` is a timelock (the guard can never become
    /// enabled), so only `x == 2` is winning there — an engine that applies
    /// the full `Pred_t` past-closure in urgent states wrongly claims all of
    /// `x <= 2`.
    fn urgent_guarded_exit_system() -> System {
        let mut b = SystemBuilder::new("urgent-exit");
        let x = b.clock("x").unwrap();
        let mut a = AutomatonBuilder::new("A");
        let l0 = a.location("L0").unwrap();
        let wait = a.location("Wait").unwrap();
        let goal = a.location("GoalLoc").unwrap();
        a.set_urgent(wait);
        a.add_edge(EdgeBuilder::new(l0, wait).controllable(true));
        a.add_edge(EdgeBuilder::new(wait, goal).guard_clock(ClockConstraint::new(x, CmpOp::Eq, 2)));
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn urgent_states_admit_no_delay_in_the_fixpoint() {
        let sys = urgent_guarded_exit_system();
        let tp = TestPurpose::parse("control: A<> A.GoalLoc", &sys).unwrap();
        let wait = {
            let mut d = sys.initial_discrete();
            let (aut, loc) = sys.location_by_qualified_name("A.Wait").unwrap();
            d.locations[aut.index()] = loc;
            d
        };
        for (name, solution) in [
            (
                "jacobi",
                solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap(),
            ),
            (
                "worklist",
                solve_worklist(&sys, &tp, &SolveOptions::default()).unwrap(),
            ),
            ("otfur", solve(&sys, &tp, &otfur_options(false)).unwrap()),
        ] {
            // The game itself is winning: wait in L0 until x == 2, then step
            // into Wait, where the plant is forced into the goal.
            assert!(solution.winning_from_initial, "{name}");
            // x == 2 wins in Wait (forced move), x == 1 is a timelock.
            assert!(solution.is_winning_state(&wait, &[4], 2), "{name}");
            assert!(
                !solution.is_winning_state(&wait, &[2], 2),
                "{name}: urgent state must not delay toward the guard"
            );
        }
    }

    #[test]
    fn self_loop_frontier_zones_are_expanded_before_evaluation() {
        let sys = self_loop_pumping_system();
        let tp = TestPurpose::parse("control: A<> A0.L1", &sys).unwrap();
        let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        let otfur = solve(&sys, &tp, &otfur_options(false)).unwrap();
        assert_eq!(jacobi.winning_from_initial, otfur.winning_from_initial);
        // x = 6, y = 2: the tau escape is enabled and the plant can dodge
        // forever, so the valuation is losing — for every engine.
        let d0 = sys.initial_discrete();
        assert!(!jacobi.is_winning_state(&d0, &[12, 4], 2));
        assert!(!otfur.is_winning_state(&d0, &[12, 4], 2));
        // Full confinement agreement: exhaustive on-the-fly == jacobi ∩ reach.
        for (id, node) in jacobi.graph.nodes().iter().enumerate() {
            let other = otfur.graph.node_of(&node.discrete).unwrap();
            let expected = jacobi.winning[id].intersection(&node.reach);
            assert!(
                expected.set_equals(&otfur.winning[other]),
                "winning sets differ for {}",
                node.discrete.display(&sys)
            );
        }
    }

    #[test]
    fn late_discovered_escape_edges_do_not_fool_otfur() {
        let sys = late_escape_system();
        let tp = TestPurpose::parse("control: A<> Plant.GoalLoc", &sys).unwrap();
        let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(!jacobi.winning_from_initial, "the game is losing");
        for early in [true, false] {
            let otfur = solve(&sys, &tp, &otfur_options(early)).unwrap();
            assert!(
                !otfur.winning_from_initial,
                "on-the-fly (early_termination={early}) must agree with the oracle"
            );
        }
    }

    fn otfur_options(early_termination: bool) -> SolveOptions {
        SolveOptions {
            engine: SolveEngine::Otfur,
            early_termination,
            ..SolveOptions::default()
        }
    }

    #[test]
    fn otfur_agrees_with_jacobi_on_decisions() {
        for sys in [
            forced_output_system(),
            silent_plant_system(),
            dodging_plant_system(),
            forced_output_with_decoy_chain(),
        ] {
            for goal in ["Plant.Done", "Plant.Busy"] {
                let tp = TestPurpose::parse(&format!("control: A<> {goal}"), &sys).unwrap();
                let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
                let otfur = solve(&sys, &tp, &otfur_options(true)).unwrap();
                assert_eq!(
                    jacobi.winning_from_initial,
                    otfur.winning_from_initial,
                    "system {} goal {goal}",
                    sys.name()
                );
            }
        }
    }

    #[test]
    fn exhaustive_otfur_matches_jacobi_federations_within_reach() {
        // The on-the-fly engine confines winning sets to the explored reach
        // zones (see the otfur module docs); the eager fixpoint computes them
        // over whole invariants.  On every reachable valuation — the
        // semantically meaningful ones — they must coincide: the exhaustive
        // on-the-fly result is exactly `jacobi ∩ reach` per state.
        for sys in [
            forced_output_system(),
            silent_plant_system(),
            dodging_plant_system(),
        ] {
            for goal in ["Plant.Done", "Plant.Busy"] {
                let tp = TestPurpose::parse(&format!("control: A<> {goal}"), &sys).unwrap();
                let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
                let otfur = solve(&sys, &tp, &otfur_options(false)).unwrap();
                assert!(!otfur.stats().early_terminated);
                assert_eq!(jacobi.graph.len(), otfur.graph.len());
                for (id, node) in jacobi.graph.nodes().iter().enumerate() {
                    let other = otfur.graph.node_of(&node.discrete).unwrap();
                    let expected = jacobi.winning[id].intersection(&node.reach);
                    assert!(
                        expected.set_equals(&otfur.winning[other]),
                        "winning sets differ in {} for {}",
                        sys.name(),
                        node.discrete.display(&sys)
                    );
                }
            }
        }
    }

    #[test]
    fn otfur_terminates_early_and_explores_fewer_states() {
        let sys = forced_output_with_decoy_chain();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        let otfur = solve(&sys, &tp, &otfur_options(true)).unwrap();
        assert!(otfur.winning_from_initial);
        assert!(otfur.stats().early_terminated, "initial decided early");
        assert!(
            otfur.stats().discrete_states < jacobi.stats().discrete_states,
            "on-the-fly explored {} states, eager {}",
            otfur.stats().discrete_states,
            jacobi.stats().discrete_states
        );
    }

    #[test]
    fn otfur_extracts_a_usable_strategy() {
        let sys = forced_output_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve(&sys, &tp, &otfur_options(true)).unwrap();
        assert!(solution.winning_from_initial);
        let strategy = solution.strategy.as_ref().expect("strategy");
        assert!(strategy.state_count() >= 2);
        let d0 = sys.initial_discrete();
        let decision = strategy.decide(&d0, &[0], 4).expect("covered");
        assert!(matches!(
            decision,
            crate::strategy::StrategyDecision::Take(_)
        ));
        let busy = {
            let mut d = d0.clone();
            let (aut, loc) = sys.location_by_qualified_name("Plant.Busy").unwrap();
            d.locations[aut.index()] = loc;
            d
        };
        assert!(solution.is_winning_state(&busy, &[0], 4));
        let decision = strategy.decide(&busy, &[4], 4).expect("covered");
        assert!(matches!(
            decision,
            crate::strategy::StrategyDecision::Wait { .. }
        ));
    }

    #[test]
    fn otfur_prunes_losing_subtrees() {
        // The dodging plant never wins: everything is explored, nothing is
        // winning, and the non-goal states are recognized as losing.
        let sys = dodging_plant_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve(&sys, &tp, &otfur_options(true)).unwrap();
        assert!(!solution.winning_from_initial);
        assert!(solution.stats().pruned_evaluations > 0);
    }

    #[test]
    fn default_options_select_otfur() {
        assert_eq!(SolveOptions::default().engine, SolveEngine::Otfur);
        let sys = forced_output_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
        assert!(solution.strategy.is_some());
    }

    #[test]
    fn worklist_and_jacobi_agree() {
        for sys in [
            forced_output_system(),
            silent_plant_system(),
            dodging_plant_system(),
        ] {
            for goal in ["Plant.Done", "Plant.Busy"] {
                let tp = TestPurpose::parse(&format!("control: A<> {goal}"), &sys).unwrap();
                let a = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
                let b = solve_worklist(&sys, &tp, &SolveOptions::default()).unwrap();
                assert_eq!(
                    a.winning_from_initial,
                    b.winning_from_initial,
                    "system {} goal {goal}",
                    sys.name()
                );
                // The computed winning sets must be semantically identical.
                for (id, node) in a.graph.nodes().iter().enumerate() {
                    let other = b.graph.node_of(&node.discrete).unwrap();
                    assert!(
                        a.winning[id].set_equals(&b.winning[other]),
                        "winning sets differ in {} for {}",
                        sys.name(),
                        node.discrete.display(&sys)
                    );
                }
            }
        }
    }

    #[test]
    fn guard_lower_bound_limits_winning_region() {
        // The reply is only possible when x >= 1, and the invariant is x <= 3;
        // in Busy every x in [0, 3] is winning (wait until the window), but
        // a state with x > 3 violates the invariant and is not a state at all.
        let sys = forced_output_system();
        let tp = TestPurpose::parse("control: A<> Plant.Done", &sys).unwrap();
        let solution = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
        let mut busy = sys.initial_discrete();
        let (aut, loc) = sys.location_by_qualified_name("Plant.Busy").unwrap();
        busy.locations[aut.index()] = loc;
        assert!(solution.is_winning_state(&busy, &[2], 4)); // x = 0.5
        assert!(!solution.is_winning_state(&busy, &[16], 4)); // x = 4: outside invariant
    }

    /// A plant whose invariant forces an uncontrollable step into a bad
    /// location: Idle (inv x <= 3) --boom!{x >= 1}--> BadLoc.  The tester
    /// has no move at all, so `A[] not Plant.BadLoc` is losing.
    fn forced_violation_system() -> System {
        let mut b = SystemBuilder::new("forced-violation");
        let x = b.clock("x").unwrap();
        let boom = b.output_channel("boom").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let bad = plant.location("BadLoc").unwrap();
        plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(
            EdgeBuilder::new(idle, bad)
                .output(boom)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).input(boom));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    /// Like [`forced_violation_system`] but with a controllable escape
    /// `save?` guarded `x <= 2` into a safe sink, while `boom!` needs
    /// `x >= 2`: the tester wins `A[] not Plant.BadLoc` exactly from
    /// `x <= 2` in Idle by playing `save?` before the plant's window opens.
    fn escapable_violation_system() -> System {
        let mut b = SystemBuilder::new("escapable-violation");
        let x = b.clock("x").unwrap();
        let boom = b.output_channel("boom").unwrap();
        let save = b.input_channel("save").unwrap();
        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let bad = plant.location("BadLoc").unwrap();
        let safe = plant.location("SafeLoc").unwrap();
        plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(
            EdgeBuilder::new(idle, bad)
                .output(boom)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2)),
        );
        plant.add_edge(
            EdgeBuilder::new(idle, safe)
                .input(save)
                .guard_clock(ClockConstraint::new(x, CmpOp::Le, 2)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();
        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).input(boom));
        user.add_edge(EdgeBuilder::new(u, u).output(save));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    fn solutions_by_engine(sys: &System, tp: &TestPurpose) -> Vec<(&'static str, GameSolution)> {
        vec![
            (
                "jacobi",
                solve_jacobi(sys, tp, &SolveOptions::default()).unwrap(),
            ),
            (
                "worklist",
                solve_worklist(sys, tp, &SolveOptions::default()).unwrap(),
            ),
            ("otfur", solve(sys, tp, &otfur_options(false)).unwrap()),
            ("otfur-early", solve(sys, tp, &otfur_options(true)).unwrap()),
        ]
    }

    #[test]
    fn forced_safety_violation_is_losing_in_all_engines() {
        let sys = forced_violation_system();
        let tp = TestPurpose::parse("control: A[] not Plant.BadLoc", &sys).unwrap();
        for (name, solution) in solutions_by_engine(&sys, &tp) {
            assert!(!solution.winning_from_initial, "{name}");
            assert!(solution.strategy.is_none(), "{name}");
        }
    }

    #[test]
    fn otfur_early_terminates_on_a_losing_safety_game() {
        let sys = forced_violation_system();
        let tp = TestPurpose::parse("control: A[] not Plant.BadLoc", &sys).unwrap();
        let solution = solve(&sys, &tp, &otfur_options(true)).unwrap();
        assert!(!solution.winning_from_initial);
        assert!(
            solution.stats().early_terminated,
            "initial state should be decided losing before the waiting list drains"
        );
    }

    #[test]
    fn escapable_safety_game_is_winning_with_a_safe_strategy() {
        let sys = escapable_violation_system();
        let tp = TestPurpose::parse("control: A[] not Plant.BadLoc", &sys).unwrap();
        let idle = sys.initial_discrete();
        for (name, solution) in solutions_by_engine(&sys, &tp) {
            assert!(solution.winning_from_initial, "{name}");
            // Safe exactly on x <= 2 (x = 2.5 is losing: save? is disabled
            // and the plant may fire boom! at any moment).
            assert!(solution.is_winning_state(&idle, &[4], 2), "{name}: x = 2");
            assert!(
                !solution.is_winning_state(&idle, &[5], 2),
                "{name}: x = 2.5 must be losing"
            );
            if name != "worklist" {
                let strategy = solution.strategy.as_ref().expect("safety strategy");
                // The whole safe region can drift into the losing set, so
                // the controller plays the escape.
                let decision = strategy.decide(&idle, &[0], 2).expect("covered");
                assert!(
                    matches!(decision, crate::strategy::StrategyDecision::Take(_)),
                    "{name}: expected the save? escape, got {decision:?}"
                );
            } else {
                assert!(solution.strategy.is_none(), "worklist never extracts");
            }
        }
    }

    #[test]
    fn safety_winning_sets_agree_semantically_across_engines() {
        // worklist ≡ jacobi exactly; exhaustive otfur ≡ jacobi ∩ reach — the
        // same confinement contract as for reachability.
        for sys in [
            forced_output_system(),
            silent_plant_system(),
            dodging_plant_system(),
            forced_violation_system(),
            escapable_violation_system(),
            urgent_guarded_exit_system(),
        ] {
            let locations: Vec<String> = sys
                .automata()
                .iter()
                .flat_map(|a| {
                    a.locations()
                        .iter()
                        .map(move |l| format!("{}.{}", a.name(), l.name))
                })
                .collect();
            for loc in &locations {
                let tp = match TestPurpose::parse(&format!("control: A[] not {loc}"), &sys) {
                    Ok(tp) => tp,
                    Err(_) => continue,
                };
                let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
                let worklist = solve_worklist(&sys, &tp, &SolveOptions::default()).unwrap();
                let otfur = solve(&sys, &tp, &otfur_options(false)).unwrap();
                assert_eq!(
                    jacobi.winning_from_initial,
                    worklist.winning_from_initial,
                    "{} / A[] not {loc}",
                    sys.name()
                );
                assert_eq!(
                    jacobi.winning_from_initial,
                    otfur.winning_from_initial,
                    "{} / A[] not {loc}",
                    sys.name()
                );
                for (id, node) in jacobi.graph.nodes().iter().enumerate() {
                    let w = worklist.graph.node_of(&node.discrete).unwrap();
                    assert!(
                        jacobi.winning[id].set_equals(&worklist.winning[w]),
                        "worklist differs in {} of {} / A[] not {loc}",
                        node.discrete.display(&sys),
                        sys.name()
                    );
                    let o = otfur.graph.node_of(&node.discrete).unwrap();
                    let expected = jacobi.winning[id].intersection(&node.reach);
                    assert!(
                        expected.set_equals(&otfur.winning[o]),
                        "otfur differs in {} of {} / A[] not {loc}",
                        node.discrete.display(&sys),
                        sys.name()
                    );
                }
            }
        }
    }

    #[test]
    fn urgent_safety_games_admit_no_delay_in_the_dual_fixpoint() {
        // In the urgent Wait state the only exit is an uncontrollable tau
        // guarded x == 2 into GoalLoc.  For `A[] not A.GoalLoc`, Wait at
        // x == 2 is losing (the plant fires the move), while x < 2 is a
        // frozen timelock that never reaches the guard — safe.  An engine
        // that applied the full `Pred_t` past-closure in the swapped game
        // would wrongly mark all of x <= 2 losing.
        let sys = urgent_guarded_exit_system();
        let tp = TestPurpose::parse("control: A[] not A.GoalLoc", &sys).unwrap();
        let wait = {
            let mut d = sys.initial_discrete();
            let (aut, loc) = sys.location_by_qualified_name("A.Wait").unwrap();
            d.locations[aut.index()] = loc;
            d
        };
        for (name, solution) in solutions_by_engine(&sys, &tp) {
            assert!(solution.winning_from_initial, "{name}");
            if name == "otfur-early" {
                continue; // may stop before Wait is fully evaluated
            }
            assert!(
                solution.is_winning_state(&wait, &[2], 2),
                "{name}: urgent x = 1 is a timelock, hence safe"
            );
            assert!(
                !solution.is_winning_state(&wait, &[4], 2),
                "{name}: urgent x = 2 is lost to the forced move"
            );
        }
    }

    #[test]
    fn bounded_reachability_respects_the_deadline() {
        // The plant replies within [1, 3] of the kick (invariant x <= 3), so
        // the tester can force Done by global time 3 but no earlier than 1:
        // T >= 3 wins, T <= 2 loses (the plant may sit on the reply until
        // x = 3).
        let sys = forced_output_system();
        for (bound, expected) in [(0, false), (2, false), (3, true), (1000, true)] {
            let tp =
                TestPurpose::parse(&format!("control: A<><={bound} Plant.Done"), &sys).unwrap();
            for (name, solution) in solutions_by_engine(&sys, &tp) {
                assert_eq!(
                    solution.winning_from_initial, expected,
                    "{name}: T = {bound}"
                );
                assert_eq!(solution.bound, Some(bound));
                if expected && name != "worklist" {
                    assert!(solution.strategy.is_some(), "{name}: T = {bound}");
                }
            }
        }
    }

    #[test]
    fn bounded_matches_unbounded_beyond_the_horizon() {
        // Every play of these finite games decides the purpose well before
        // T = 1000, so the bounded verdict must equal the unbounded one.
        for sys in [
            forced_output_system(),
            silent_plant_system(),
            dodging_plant_system(),
        ] {
            for goal in ["Plant.Done", "Plant.Busy"] {
                let unbounded = TestPurpose::parse(&format!("control: A<> {goal}"), &sys).unwrap();
                let bounded =
                    TestPurpose::parse(&format!("control: A<><=1000 {goal}"), &sys).unwrap();
                let want = solve_jacobi(&sys, &unbounded, &SolveOptions::default())
                    .unwrap()
                    .winning_from_initial;
                for (name, solution) in solutions_by_engine(&sys, &bounded) {
                    assert_eq!(
                        solution.winning_from_initial,
                        want,
                        "{name}: {} / {goal}",
                        sys.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_safety_wins_exactly_until_the_plant_can_strike() {
        // boom! is forced in [1, 3] and the tester has no move at all:
        // `A[] not Plant.BadLoc` is unbounded-losing, but with a deadline
        // before the plant's window (T = 0) no violation fits, so the
        // bounded purpose is winning.  From T = 1 on the plant can violate
        // at time exactly 1 <= T (weak bound): losing again.
        let sys = forced_violation_system();
        for (bound, expected) in [(0, true), (1, false), (3, false), (1000, false)] {
            let tp = TestPurpose::parse(&format!("control: A[]<={bound} not Plant.BadLoc"), &sys)
                .unwrap();
            for (name, solution) in solutions_by_engine(&sys, &tp) {
                assert_eq!(
                    solution.winning_from_initial, expected,
                    "{name}: T = {bound}"
                );
            }
        }
        // The unbounded purpose stays losing.
        let tp = TestPurpose::parse("control: A[] not Plant.BadLoc", &sys).unwrap();
        assert!(
            !solve(&sys, &tp, &SolveOptions::default())
                .unwrap()
                .winning_from_initial
        );
    }

    #[test]
    fn bounded_winning_sets_agree_across_engines_jobs_and_interning() {
        // The same semantic contract as the unbounded suites, on bounded
        // purposes: worklist ≡ jacobi exactly, exhaustive otfur ≡ jacobi ∩
        // reach — and every combination of jobs and interning is
        // bit-identical to the sequential interned run of the same engine.
        for sys in [forced_output_system(), forced_violation_system()] {
            for line in [
                "control: A<><=3 Plant.Done",
                "control: A<><=2 Plant.Done",
                "control: A[]<=0 not Plant.BadLoc",
                "control: A[]<=2 not Plant.BadLoc",
            ] {
                let Ok(tp) = TestPurpose::parse(line, &sys) else {
                    continue; // goal location not present in this system
                };
                let jacobi = solve_jacobi(&sys, &tp, &SolveOptions::default()).unwrap();
                let worklist = solve_worklist(&sys, &tp, &SolveOptions::default()).unwrap();
                let otfur = solve(&sys, &tp, &otfur_options(false)).unwrap();
                for (id, node) in jacobi.graph.nodes().iter().enumerate() {
                    let w = worklist.graph.node_of(&node.discrete).unwrap();
                    assert!(
                        jacobi.winning[id].set_equals(&worklist.winning[w]),
                        "worklist differs in {line}"
                    );
                    let o = otfur.graph.node_of(&node.discrete).unwrap();
                    let expected = jacobi.winning[id].intersection(&node.reach);
                    assert!(
                        expected.set_equals(&otfur.winning[o]),
                        "otfur differs in {line}"
                    );
                }
                for engine in [
                    SolveEngine::Otfur,
                    SolveEngine::Jacobi,
                    SolveEngine::Worklist,
                ] {
                    let base = solve(
                        &sys,
                        &tp,
                        &SolveOptions {
                            engine,
                            early_termination: false,
                            ..SolveOptions::default()
                        },
                    )
                    .unwrap();
                    for jobs in [1, 4] {
                        for interning in [true, false] {
                            let run = solve(
                                &sys,
                                &tp,
                                &SolveOptions {
                                    engine,
                                    early_termination: false,
                                    jobs,
                                    interning,
                                    ..SolveOptions::default()
                                },
                            )
                            .unwrap();
                            assert_eq!(
                                run.winning_from_initial,
                                base.winning_from_initial,
                                "{line} {} jobs={jobs} interning={interning}",
                                engine.name()
                            );
                            for (id, win) in base.winning.iter().enumerate() {
                                assert_eq!(
                                    win,
                                    &run.winning[id],
                                    "{line} {} jobs={jobs} interning={interning}",
                                    engine.name()
                                );
                            }
                            assert_eq!(
                                base.strategy.is_some(),
                                run.strategy.is_some(),
                                "{line} {}",
                                engine.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_strategy_is_queryable_over_the_augmented_dimensions() {
        let sys = forced_output_system();
        let tp = TestPurpose::parse("control: A<><=3 Plant.Done", &sys).unwrap();
        let aug = bounded_system(&sys, &tp).unwrap().expect("augmented");
        assert_eq!(aug.dim(), sys.dim() + 1);
        assert_eq!(
            aug.clock_names().last().map(String::as_str),
            Some(TICK_CLOCK)
        );
        let solution = solve(&sys, &tp, &SolveOptions::default()).unwrap();
        assert!(solution.winning_from_initial);
        let strategy = solution.strategy.as_ref().expect("strategy");
        // Queries carry the tick clock as the trailing value.
        let d0 = sys.initial_discrete();
        let decision = strategy.decide(&d0, &[0, 0], 4).expect("covered");
        assert!(matches!(
            decision,
            crate::strategy::StrategyDecision::Take(_)
        ));
        // Busy at x = 0, #t = 0 is winning; at x = 0, #t = 2 the deadline
        // can no longer be met (the plant may sit on the reply until x = 3,
        // i.e. global time 5) — losing.
        let busy = {
            let mut d = d0.clone();
            let (aut, loc) = sys.location_by_qualified_name("Plant.Busy").unwrap();
            d.locations[aut.index()] = loc;
            d
        };
        assert!(solution.is_winning_state(&busy, &[0, 0], 4));
        assert!(!solution.is_winning_state(&busy, &[0, 8], 4));
        // An unparseable bound in a programmatic purpose is rejected, not
        // silently wrapped.
        let mut bad = tp.clone();
        bad.bound = Some(-1);
        assert!(matches!(
            solve(&sys, &bad, &SolveOptions::default()),
            Err(SolverError::Model(_))
        ));
        bad.bound = Some(i64::MAX);
        assert!(matches!(
            solve(&sys, &bad, &SolveOptions::default()),
            Err(SolverError::Model(_))
        ));
    }

    #[test]
    fn invariant_boundary_helper() {
        // Invariant x <= 3 over one clock.
        let mut inv = Dbm::universe(2);
        inv.constrain(1, 0, Bound::le(3));
        let boundary = invariant_boundary(&inv, false);
        assert!(boundary.contains_scaled(&[0, 6])); // x = 3
        assert!(!boundary.contains_scaled(&[0, 5])); // x = 2.5
                                                     // No upper bounds: no boundary.
        let open = Dbm::universe(2);
        assert!(invariant_boundary(&open, false).is_empty());
        // Urgent: everything is a boundary.
        assert!(invariant_boundary(&open, true).contains_scaled(&[0, 4]));
    }
}
