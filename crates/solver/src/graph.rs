//! Forward exploration of the symbolic game graph.
//!
//! The graph has one node per reachable *discrete* state (location vector +
//! variable valuation); each node records its invariant zone, the union of
//! zones with which it was reached (for statistics and on-the-fly pruning),
//! whether it satisfies the goal predicate, and its outgoing joint edges.

use crate::error::SolverError;
use crate::stats::MemCounters;
use std::collections::HashMap;
use tiga_dbm::{Dbm, Federation, ZoneSet, ZoneStore};
use tiga_model::{DiscreteState, Explorer, JointEdge, System};
use tiga_tctl::StatePredicate;

/// Index of a node in a [`GameGraph`].
pub type NodeId = usize;

/// An edge of the explored game graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphEdge {
    /// The joint (composed) model edge.
    pub joint: JointEdge,
    /// Target node.
    pub target: NodeId,
    /// Whether the edge is a controllable (tester) move.
    pub controllable: bool,
}

/// A node of the explored game graph.
#[derive(Clone, Debug)]
pub struct GameNode {
    /// The discrete state this node represents.
    pub discrete: DiscreteState,
    /// The invariant zone of the discrete state.
    pub invariant: Dbm,
    /// Union of the (delay-closed, extrapolated) zones with which the node
    /// was reached during forward exploration.
    pub reach: Federation,
    /// Outgoing joint edges (deduplicated).
    pub edges: Vec<GraphEdge>,
    /// Whether the goal predicate holds in this discrete state.
    pub is_goal: bool,
    /// Whether the discrete state is urgent (no delay allowed).
    pub urgent: bool,
}

/// The forward-explored symbolic game graph.
#[derive(Clone, Debug)]
pub struct GameGraph {
    nodes: Vec<GameNode>,
    index: HashMap<DiscreteState, NodeId>,
    initial: NodeId,
}

/// Options controlling forward exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Do not explore successors of goal states (sound for reachability
    /// objectives and matches UPPAAL-TIGA's pruning).
    pub stop_at_goal: bool,
    /// Hard bound on the number of discrete states, as a safety valve.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            stop_at_goal: true,
            max_states: 1_000_000,
        }
    }
}

impl GameGraph {
    /// Explores the game graph of `system` forward from the initial state,
    /// marking states that satisfy `goal`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::StateLimitExceeded`] if the number of discrete
    /// states exceeds `options.max_states`, or propagates model/purpose
    /// evaluation errors.
    pub fn explore(
        system: &System,
        goal: &StatePredicate,
        options: &ExploreOptions,
    ) -> Result<Self, SolverError> {
        Self::explore_jobs(system, goal, options, 1)
    }

    /// Like [`GameGraph::explore`], with the symbolic successor computation
    /// of each frontier batch sharded over `jobs` worker threads (`0` = all
    /// cores).
    ///
    /// The frontier is drained in deterministic batches: candidate
    /// successors of every `(node, zone)` pair are computed read-only in
    /// parallel ([`Explorer::successor_candidates`]), then interned, edge-
    /// deduplicated and subsumption-checked sequentially in batch order —
    /// the explored graph is bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`GameGraph::explore`].
    pub fn explore_jobs(
        system: &System,
        goal: &StatePredicate,
        options: &ExploreOptions,
        jobs: usize,
    ) -> Result<Self, SolverError> {
        Ok(Self::explore_jobs_mem(system, goal, options, jobs, true)?.0)
    }

    /// [`GameGraph::explore_jobs`] with explicit control over passed-list
    /// interning, reporting the memory counters of the exploration.
    ///
    /// With `interning` the per-node passed lists are kept as [`ZoneSet`]s
    /// over one shared [`ZoneStore`] — re-derived zones cost a hash probe,
    /// subsumption verdicts are memoized, and at-rest zones live in
    /// minimal-constraint form.  Without it the pre-interning clone behavior
    /// is reproduced exactly (and counted in `dbm_clones`).  The explored
    /// graph is bit-identical either way, and for any thread count: the
    /// store is only touched in the sequential merge phase.
    ///
    /// # Errors
    ///
    /// Same as [`GameGraph::explore`].
    pub(crate) fn explore_jobs_mem(
        system: &System,
        goal: &StatePredicate,
        options: &ExploreOptions,
        jobs: usize,
        interning: bool,
    ) -> Result<(Self, MemCounters), SolverError> {
        let mut explorer = Explorer::new(system);
        let mut graph = GameGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            initial: 0,
        };
        let mut mem = MemCounters::default();
        let mut reach_total = 0usize;
        let mut interned: Option<(ZoneStore, Vec<ZoneSet>)> =
            interning.then(|| (ZoneStore::new(system.dim()), Vec::new()));
        let (root_id, root_zone) = explorer.initial()?;
        graph.adopt(system, goal, &explorer, root_id)?;
        graph.initial = root_id;
        if let Some((store, sets)) = &mut interned {
            sets.resize_with(graph.nodes.len(), ZoneSet::default);
            sets[root_id].insert(store, &root_zone);
            reach_total += sets[root_id].len();
        } else {
            graph.nodes[root_id].reach.add_zone(root_zone.clone());
            mem.dbm_clones += 1;
            reach_total += 1;
        }
        mem.peak_live_zones = reach_total;

        // Work list of (node, zone) pairs still to expand, drained batchwise.
        let mut queue: Vec<(NodeId, Dbm)> = vec![(root_id, root_zone)];
        while !queue.is_empty() {
            let batch: Vec<(NodeId, Dbm)> = std::mem::take(&mut queue)
                .into_iter()
                .filter(|(node_id, _)| !(options.stop_at_goal && graph.nodes[*node_id].is_goal))
                .collect();
            let results = tiga_parallel::run_indexed(batch, jobs, |_, (node_id, zone)| {
                explorer
                    .successor_candidates(node_id, &zone)
                    .map(|steps| (node_id, steps))
            });
            for result in results {
                let (node_id, steps) = result?;
                for step in steps {
                    let target = explorer.intern(step.discrete)?;
                    let succ_id = graph.adopt(system, goal, &explorer, target)?;
                    if graph.nodes.len() > options.max_states {
                        return Err(SolverError::StateLimitExceeded {
                            limit: options.max_states,
                        });
                    }
                    // Record the edge once per (joint, target).
                    let exists = graph.nodes[node_id]
                        .edges
                        .iter()
                        .any(|e| e.joint == step.joint && e.target == succ_id);
                    if !exists {
                        graph.nodes[node_id].edges.push(GraphEdge {
                            joint: step.joint,
                            target: succ_id,
                            controllable: step.controllable,
                        });
                    }
                    // Continue exploring only if the zone adds new valuations.
                    let expand = if let Some((store, sets)) = &mut interned {
                        sets.resize_with(graph.nodes.len(), ZoneSet::default);
                        let before = sets[succ_id].len();
                        let inserted = sets[succ_id].insert(store, &step.zone);
                        reach_total = reach_total + sets[succ_id].len() - before;
                        inserted
                    } else {
                        let before = graph.nodes[succ_id].reach.len();
                        mem.dbm_clones += 1;
                        let inserted = graph.nodes[succ_id]
                            .reach
                            .insert_subsumed(step.zone.clone());
                        reach_total = reach_total + graph.nodes[succ_id].reach.len() - before;
                        inserted
                    };
                    mem.peak_live_zones = mem.peak_live_zones.max(reach_total);
                    if expand {
                        queue.push((succ_id, step.zone));
                    }
                }
            }
        }
        if let Some((store, sets)) = &interned {
            // Materialize the interned passed lists into the per-node reach
            // federations the fixpoint engines read.
            for (node, set) in graph.nodes.iter_mut().zip(sets) {
                node.reach = set.to_federation(store);
            }
            mem.interned_zones = store.len();
            mem.intern_hits = store.hits();
            // Every intern miss deep-copied the candidate into the store.
            mem.dbm_clones += store.len();
            mem.minimized_bytes_saved = store.bytes_saved();
        }
        Ok((graph, mem))
    }

    /// Mirrors an explorer state into the graph, creating the [`GameNode`]
    /// (with its goal flag) on first sight.
    ///
    /// Explorer indices and node identifiers stay aligned because the graph
    /// adopts every state the explorer interns, in interning order.
    fn adopt(
        &mut self,
        system: &System,
        goal: &StatePredicate,
        explorer: &Explorer<'_>,
        idx: NodeId,
    ) -> Result<NodeId, SolverError> {
        while self.nodes.len() <= idx {
            let state = explorer.state(self.nodes.len());
            let is_goal = goal.holds(system, &state.discrete)?;
            self.nodes.push(GameNode {
                discrete: state.discrete.clone(),
                invariant: state.invariant.clone(),
                reach: Federation::empty(system.dim()),
                edges: Vec::new(),
                is_goal,
                urgent: state.urgent,
            });
            self.index
                .insert(state.discrete.clone(), self.nodes.len() - 1);
        }
        Ok(idx)
    }

    /// Assembles a graph from nodes built elsewhere (the on-the-fly solver
    /// constructs its partial graph this way).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range.
    #[must_use]
    pub(crate) fn from_parts(nodes: Vec<GameNode>, initial: NodeId) -> Self {
        assert!(initial < nodes.len(), "initial node out of range");
        let index = nodes
            .iter()
            .enumerate()
            .map(|(id, n)| (n.discrete.clone(), id))
            .collect();
        GameGraph {
            nodes,
            index,
            initial,
        }
    }

    /// The explored nodes.
    #[must_use]
    pub fn nodes(&self) -> &[GameNode] {
        &self.nodes
    }

    /// Number of explored discrete states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes (never the case after a
    /// successful exploration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Identifier of the initial node.
    #[must_use]
    pub fn initial(&self) -> NodeId {
        self.initial
    }

    /// A node by identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &GameNode {
        &self.nodes[id]
    }

    /// Looks up the node of a discrete state, if it was explored.
    #[must_use]
    pub fn node_of(&self, discrete: &DiscreteState) -> Option<NodeId> {
        self.index.get(discrete).copied()
    }

    /// Total number of stored edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// Total number of DBMs in the forward-reachability federations.
    #[must_use]
    pub fn reach_zone_count(&self) -> usize {
        self.nodes.iter().map(|n| n.reach.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, Expr, SystemBuilder};
    use tiga_tctl::TestPurpose;

    /// Plant: Idle --start?--> Run(x<=3) --tick!{x>=1}--> Idle, counting ticks.
    /// User: can always send start and receive tick.
    fn ping_system(max_count: i64) -> System {
        let mut b = SystemBuilder::new("ping");
        let x = b.clock("x").unwrap();
        let start = b.input_channel("start").unwrap();
        let tick = b.output_channel("tick").unwrap();
        let count = b.int_var("count", 0, max_count, 0).unwrap();

        let mut plant = AutomatonBuilder::new("Plant");
        let idle = plant.location("Idle").unwrap();
        let run = plant.location("Run").unwrap();
        plant.set_invariant(run, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        plant.add_edge(EdgeBuilder::new(idle, run).input(start).reset(x));
        plant.add_edge(
            EdgeBuilder::new(run, idle)
                .output(tick)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1))
                .set(count, Expr::var(count) + Expr::constant(1)),
        );
        b.add_automaton(plant.build().unwrap()).unwrap();

        let mut user = AutomatonBuilder::new("User");
        let u = user.location("U").unwrap();
        user.add_edge(EdgeBuilder::new(u, u).output(start));
        user.add_edge(EdgeBuilder::new(u, u).input(tick));
        b.add_automaton(user.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn explores_reachable_discrete_states() {
        let sys = ping_system(2);
        let tp = TestPurpose::parse("control: A<> count == 2", &sys).unwrap();
        let graph = GameGraph::explore(&sys, &tp.predicate, &ExploreOptions::default()).unwrap();
        // Discrete states: (Idle|Run) x count in {0,1,2}, minus unreachable
        // combinations; count==2 Idle is a goal and not expanded.
        assert!(graph.len() >= 4);
        assert!(graph.len() <= 6);
        let goals: Vec<_> = graph.nodes().iter().filter(|n| n.is_goal).collect();
        assert!(!goals.is_empty());
        assert!(graph.edge_count() >= graph.len() - 1);
        assert_eq!(graph.node(graph.initial()).discrete, sys.initial_discrete());
        assert!(graph.node_of(&sys.initial_discrete()).is_some());
        assert!(graph.reach_zone_count() >= graph.len());
    }

    #[test]
    fn goal_states_are_not_expanded_when_pruning() {
        let sys = ping_system(1);
        let tp = TestPurpose::parse("control: A<> count == 1", &sys).unwrap();
        let pruned = GameGraph::explore(&sys, &tp.predicate, &ExploreOptions::default()).unwrap();
        let full = GameGraph::explore(
            &sys,
            &tp.predicate,
            &ExploreOptions {
                stop_at_goal: false,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        // Without pruning at least as many states/edges are explored.
        assert!(full.len() >= pruned.len());
        assert!(full.edge_count() >= pruned.edge_count());
        for node in pruned.nodes() {
            if node.is_goal {
                assert!(node.edges.is_empty(), "goal node should not be expanded");
            }
        }
    }

    #[test]
    fn state_limit_is_enforced() {
        let sys = ping_system(3);
        let tp = TestPurpose::parse("control: A<> count == 3", &sys).unwrap();
        let err = GameGraph::explore(
            &sys,
            &tp.predicate,
            &ExploreOptions {
                max_states: 2,
                ..ExploreOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SolverError::StateLimitExceeded { limit: 2 }));
    }

    #[test]
    fn edges_carry_controllability() {
        let sys = ping_system(1);
        let tp = TestPurpose::parse("control: A<> count == 1", &sys).unwrap();
        let graph = GameGraph::explore(&sys, &tp.predicate, &ExploreOptions::default()).unwrap();
        let init = graph.node(graph.initial());
        assert_eq!(init.edges.len(), 1);
        assert!(init.edges[0].controllable, "start is a tester input");
        let run_node = graph.node(init.edges[0].target);
        assert!(!run_node.is_goal);
        assert_eq!(run_node.edges.len(), 1);
        assert!(!run_node.edges[0].controllable, "tick is a plant output");
    }
}
