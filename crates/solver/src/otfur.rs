//! On-the-fly solving of timed reachability games (OTFUR-style).
//!
//! The eager pipeline ([`crate::solve_jacobi`]) materializes the whole
//! reachable game graph before any back-propagation runs.  This module
//! instead interleaves the two directions in a single waiting/passed-list
//! search, after the on-the-fly algorithm of Cassez, David, Fleury, Larsen
//! and Lime (CONCUR 2005) that UPPAAL-TIGA builds on:
//!
//! * **forward**: popping a state expands its not-yet-processed reach zones,
//!   interning newly discovered discrete states (hashing-based, via
//!   [`tiga_model::Explorer`]) and subsuming re-reached zones against the
//!   passed list ([`Federation::insert_subsumed`]);
//! * **backward**: the same pop re-evaluates the state's winning federation
//!   with the shared `π` update ([`crate::winning::pi_update`]); growth wakes
//!   the recorded dependents, exactly like the `Depend` sets of the paper;
//! * **pruning**: a non-goal state whose own winning set and all successor
//!   winning sets are empty provably gains nothing from an update, so the
//!   evaluation is skipped (`pruned_evaluations` counts the skips);
//! * **early termination**: as soon as the initial state is decided the
//!   search stops — the remaining waiting list is never processed, which
//!   is where the on-the-fly engine beats full-graph exploration.
//!
//! Safety games (`control: A[] φ`) run the **dual on-the-fly rule**: the
//! same search propagates *losing* federations forward from the `¬φ` states
//! (whose reach zones seed the attractor as they are discovered) with the
//! players' roles swapped in the `π` update, prunes subtrees whose losing
//! sets are empty, and early-terminates once the initial state is decided
//! *losing*.  The caller complements the confined losing sets within the
//! reach federations to obtain the safe (winning) sets.
//!
//! A winning [`Strategy`] is extracted *during* the search: every growth of a
//! winning federation records its wait/action regions at the current
//! revision counter, which plays the role of the Jacobi round number (every
//! action region recorded at revision `r` leads into regions recorded at
//! revisions `< r`, so the rank order is well-founded and the executor's
//! progress argument carries over unchanged).
//!
//! # The reach-confinement invariant
//!
//! Edges are discovered *per expanded zone*: an edge whose clock guard meets
//! none of a state's expanded reach zones is unknown to the search.  The
//! eager engines are safe against this because they finish exploration
//! before the first fixpoint step; an interleaved search is not — a state
//! evaluated early could claim winning valuations in invariant regions where
//! an undiscovered uncontrollable escape is enabled, and monotone growth
//! would never retract them.  The search therefore **confines every winning
//! federation to the state's reach federation** (goal states: their reach,
//! which is what the offered zones cover).  Expansion of all pending zones
//! happens immediately before each evaluation, so within the reach every
//! enabled edge is known; and because the reach set is closed under the game
//! dynamics (successor zones of reach zones are offered to the target,
//! delay-closed zones absorb delays), the confined fixpoint agrees with the
//! eager engines' fixpoint on every reachable valuation — in particular at
//! the initial state.  An exhaustive run computes exactly
//! `lfp ∩ reach` per state.

use crate::error::SolverError;
use crate::graph::{GameGraph, GameNode, GraphEdge, NodeId};
use crate::stats::MemCounters;
use crate::strategy::{Decision, Strategy, StrategyRule};
use crate::winning::{invariant_boundary, pi_update, EngineOutcome, GameMode, SolveOptions};
use std::collections::VecDeque;
use tiga_dbm::{Dbm, Federation, ZoneSet, ZoneStore};
use tiga_model::{Explorer, System};
use tiga_tctl::StatePredicate;

/// Per-state bookkeeping of the search, indexed like the explorer's states.
struct NodeData {
    /// Passed list: union of the delay-closed zones with which the state was
    /// reached.  Stays empty when interning is on — the authoritative passed
    /// list is then the node's [`ZoneSet`] in [`Search::reach_sets`], and
    /// [`Search::finish`] materializes the federation from it.
    reach: Federation,
    /// Reach zones not yet expanded forward.
    frontier: Vec<Dbm>,
    /// Outgoing joint edges discovered so far (deduplicated).
    edges: Vec<GraphEdge>,
    /// States to re-evaluate when this state's winning federation grows.
    depend: Vec<NodeId>,
    /// Invariant upper boundary (for the forced-move term).
    boundary: Federation,
    /// Whether the goal predicate holds here.
    is_goal: bool,
}

/// What the read-only snapshot evaluation of one batch member found.
enum EvalOutcome {
    /// Goal state, or the update did not grow the federation.
    Unchanged,
    /// Skipped by the losing-subtree prune (own and successor sets empty).
    Pruned,
    /// The federation grew; the merge phase applies the delta.
    Grown {
        /// The new (strictly larger) winning federation.
        new_win: Federation,
        /// Controllable action regions for strategy extraction, keyed by
        /// edge index.
        action_regions: Vec<(usize, Federation)>,
    },
}

struct Search<'a> {
    system: &'a System,
    goal: &'a StatePredicate,
    options: &'a SolveOptions,
    /// Reachability (propagate winning federations backward from the goal)
    /// or safety (the dual rule: propagate *losing* federations backward
    /// from the `¬φ` states, with the players' roles swapped in `π`).
    mode: GameMode,
    /// Bounded purposes: the `#t <= T` zone intersected into every attractor
    /// seed as it is reached.  `None` for unbounded purposes.
    clip: Option<&'a Dbm>,
    explorer: Explorer<'a>,
    nodes: Vec<NodeData>,
    win: Vec<Federation>,
    strategy: Strategy,
    queue: VecDeque<NodeId>,
    in_queue: Vec<bool>,
    /// Monotone revision counter used as the strategy rank.
    revision: u32,
    subsumed_zones: usize,
    pruned_evaluations: usize,
    pops: usize,
    early_terminated: bool,
    /// Hash-consing zone store for the passed lists
    /// (`Some` iff [`SolveOptions::interning`]).  Mutated only in the
    /// sequential phases, so results stay bit-identical for any `jobs`.
    store: Option<ZoneStore>,
    /// Interned passed list per node (used only when `store` is `Some`).
    reach_sets: Vec<ZoneSet>,
    /// Interning/clone/peak counters reported through the engine outcome.
    mem: MemCounters,
    /// Current total zone count across all passed lists.
    reach_total: usize,
    /// Current total zone count across all winning federations.
    win_total: usize,
}

/// Runs the on-the-fly search and returns the partial game graph together
/// with the engine outcome.
///
/// `goal` is the attractor seed: the purpose predicate for reachability,
/// its negation (the bad states) for safety.  In safety mode the returned
/// federations are the *losing* attractor; the caller complements them
/// within the reach sets.
pub(crate) fn run(
    system: &System,
    goal: &StatePredicate,
    options: &SolveOptions,
    mode: GameMode,
    clip: Option<&Dbm>,
) -> Result<(GameGraph, EngineOutcome), SolverError> {
    let mut search = Search {
        system,
        goal,
        options,
        mode,
        clip,
        explorer: Explorer::new(system),
        nodes: Vec::new(),
        win: Vec::new(),
        strategy: Strategy::new(system.dim()),
        queue: VecDeque::new(),
        in_queue: Vec::new(),
        revision: 0,
        subsumed_zones: 0,
        pruned_evaluations: 0,
        pops: 0,
        early_terminated: false,
        store: options.interning.then(|| ZoneStore::new(system.dim())),
        reach_sets: Vec::new(),
        mem: MemCounters::default(),
        reach_total: 0,
        win_total: 0,
    };
    let root = search.seed()?;
    search.run(root)?;
    search.finish(root)
}

impl Search<'_> {
    /// Interns the initial state and queues it with the root zone pending.
    fn seed(&mut self) -> Result<NodeId, SolverError> {
        let (root, root_zone) = self.explorer.initial()?;
        self.sync_nodes()?;
        self.offer_zone(root, root_zone);
        self.enqueue(root);
        Ok(root)
    }

    /// Grows the per-node vectors to cover every state the explorer has
    /// interned.  Goal states start with an empty winning federation: their
    /// wins are the *reached* goal zones, added by [`Search::offer_zone`] as
    /// they arrive (the reach-confinement invariant).
    fn sync_nodes(&mut self) -> Result<(), SolverError> {
        while self.nodes.len() < self.explorer.len() {
            let idx = self.nodes.len();
            let state = self.explorer.state(idx);
            let is_goal = self.goal.holds(self.system, &state.discrete)?;
            let boundary = invariant_boundary(&state.invariant, state.urgent);
            self.nodes.push(NodeData {
                reach: Federation::empty(self.system.dim()),
                frontier: Vec::new(),
                edges: Vec::new(),
                depend: Vec::new(),
                boundary,
                is_goal,
            });
            self.win.push(Federation::empty(self.system.dim()));
            self.in_queue.push(false);
            self.reach_sets.push(ZoneSet::default());
        }
        Ok(())
    }

    /// Offers a reach zone to a state's passed list; newly covering zones
    /// join the expansion frontier, already-covered ones count as subsumed.
    ///
    /// Reaching a goal state is what makes its zones winning, so a new goal
    /// zone immediately extends the winning federation (recorded as a rank-0
    /// wait region) and wakes the goal's dependents.
    fn offer_zone(&mut self, node: NodeId, zone: Dbm) -> bool {
        let inserted = if let Some(store) = &mut self.store {
            let set = &mut self.reach_sets[node];
            let before = set.len();
            let inserted = set.insert(store, &zone);
            self.reach_total = self.reach_total + set.len() - before;
            inserted
        } else {
            // Pre-interning representation: the passed list owns a deep copy
            // of every offered zone, counted as clone pressure.
            self.mem.dbm_clones += 1;
            let data = &mut self.nodes[node];
            let before = data.reach.len();
            let inserted = data.reach.insert_subsumed(zone.clone());
            self.reach_total = self.reach_total + data.reach.len() - before;
            inserted
        };
        if !inserted {
            self.subsumed_zones += 1;
            return false;
        }
        if self.store.is_none() {
            // The pre-interning frontier copy (with interning the frontier
            // takes the offered zone by move, below).
            self.mem.dbm_clones += 1;
        }
        if self.nodes[node].is_goal {
            // Reach zones are delay-closed within the invariant, so the zone
            // is already a valid attractor seed (goal-winning region for
            // reachability, losing region of a bad state for safety).  For
            // bounded purposes only the pre-deadline part `#t <= T` seeds —
            // the zone still joins the frontier in full, because forward
            // exploration is unaffected by the bound.
            let seed = match self.clip {
                Some(clip) => {
                    let mut s = zone.clone();
                    s.intersect(clip);
                    s
                }
                None => zone.clone(),
            };
            if !seed.is_empty() {
                let before = self.win[node].len();
                self.mem.dbm_clones += 1;
                self.win[node].add_zone(seed.clone());
                self.win_total = self.win_total + self.win[node].len() - before;
                if self.options.extract_strategy && self.mode == GameMode::Reachability {
                    self.strategy.add_rule(
                        self.explorer.state(node).discrete.clone(),
                        StrategyRule {
                            rank: 0,
                            zone: seed,
                            decision: Decision::Wait,
                        },
                    );
                }
                let dependents = std::mem::take(&mut self.nodes[node].depend);
                for d in &dependents {
                    self.enqueue(*d);
                }
                self.nodes[node].depend = dependents;
            }
        }
        self.mem.peak_live_zones = self
            .mem
            .peak_live_zones
            .max(self.reach_total + self.win_total);
        self.nodes[node].frontier.push(zone);
        true
    }

    fn enqueue(&mut self, node: NodeId) {
        if !self.in_queue[node] {
            self.in_queue[node] = true;
            self.queue.push_back(node);
        }
    }

    /// The main waiting-list loop, drained in deterministic batches so the
    /// evaluations inside one batch can run on any number of worker threads
    /// ([`SolveOptions::jobs`]) without affecting the result.
    ///
    /// Each batch runs three phases:
    ///
    /// 1. **expand** (sequential, canonical node order): every batch
    ///    member's pending reach zones are expanded, looping until *all*
    ///    batch frontiers are empty — a member expanded early may be offered
    ///    a new zone by a later member, and the reach-confinement soundness
    ///    argument requires every reach zone of an evaluated state to be
    ///    expanded first;
    /// 2. **evaluate** (parallel): the `π` update of every batch member is
    ///    computed against the immutable post-expansion snapshot of the
    ///    winning federations ([`Search::evaluate_one`] is read-only);
    /// 3. **merge** (sequential, canonical node order): growths are applied
    ///    one by one — revision bump, strategy recording, dependent wake-ups
    ///    and the early-termination check all happen in batch order.
    ///
    /// The same three phases run for every thread count (a single worker
    /// just computes phase 2 in index order), so `SolverStats`, winning
    /// federations and extracted strategies are bit-identical for any
    /// `--jobs N`.  A member evaluated against a snapshot that a batch peer
    /// outgrows during the merge is re-queued through the peer's `depend`
    /// set, exactly like any other stale evaluation.
    fn run(&mut self, root: NodeId) -> Result<(), SolverError> {
        let origin = vec![0i64; self.system.dim()];
        while !self.queue.is_empty() {
            // Draw the whole waiting list as one batch, in canonical
            // (node-id, i.e. discovery) order.  `in_queue` already
            // deduplicates.
            let mut batch: Vec<NodeId> = self.queue.drain(..).collect();
            batch.sort_unstable();
            for &node in &batch {
                self.in_queue[node] = false;
            }
            self.pops += batch.len();
            if self.pops
                > self
                    .options
                    .max_rounds
                    .saturating_mul(self.nodes.len().max(1))
            {
                break;
            }
            // Phase 1: expansion, to a cross-batch fixpoint — a member
            // expanded early may be offered a new zone by a later member
            // (self-loops included), and every reach zone of an evaluated
            // state must be expanded first.
            loop {
                let mut pending: Vec<(NodeId, Dbm)> = Vec::new();
                for &node in &batch {
                    if self.options.explore.stop_at_goal && self.nodes[node].is_goal {
                        self.nodes[node].frontier.clear();
                        continue;
                    }
                    let zones = std::mem::take(&mut self.nodes[node].frontier);
                    pending.extend(zones.into_iter().map(|zone| (node, zone)));
                }
                if pending.is_empty() {
                    break;
                }
                // Candidate successors are computed read-only in parallel;
                // interning, edge discovery and zone offers merge in batch
                // order below.
                let results =
                    tiga_parallel::run_indexed(pending, self.options.jobs, |_, (node, zone)| {
                        self.explorer
                            .successor_candidates(node, &zone)
                            .map(|steps| (node, steps))
                    });
                for result in results {
                    let (node, steps) = result?;
                    self.absorb_steps(node, steps)?;
                }
            }
            // Phase 2: parallel snapshot evaluation (read-only on `self`).
            let outcomes =
                tiga_parallel::run_indexed(batch.clone(), self.options.jobs, |_, node| {
                    self.evaluate_one(node)
                });
            // Phase 3: in-order merge.
            for (&node, outcome) in batch.iter().zip(outcomes) {
                match outcome? {
                    EvalOutcome::Unchanged => {}
                    EvalOutcome::Pruned => self.pruned_evaluations += 1,
                    EvalOutcome::Grown {
                        new_win,
                        action_regions,
                    } => {
                        self.apply_growth(node, new_win, &action_regions);
                        // Initial state decided: winning for reachability,
                        // *losing* for safety (the attractor is the losing
                        // set there) — in both cases the verdict is known
                        // and the remaining work is moot.
                        if node == root
                            && self.options.early_termination
                            && self.win[root].contains_scaled(&origin)
                        {
                            self.early_terminated = true;
                            return Ok(());
                        }
                        let dependents = std::mem::take(&mut self.nodes[node].depend);
                        for d in &dependents {
                            self.enqueue(*d);
                        }
                        self.nodes[node].depend = dependents;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge half of the forward step: interns the candidate successors of
    /// one expanded `(node, zone)` pair, discovering edges, registering
    /// dependencies and offering the successor zones.
    ///
    /// A *self-loop* candidate offers its successor zone back into this
    /// node's own frontier, so the phase-1 loop in [`Search::run`] drains
    /// until every batch frontier is genuinely empty.  Stopping early would
    /// let [`Search::evaluate_one`] run against a reach federation
    /// containing a zone whose edges are still undiscovered — the
    /// evaluation could then claim winning valuations where an unknown
    /// uncontrollable escape is enabled, and monotone growth would never
    /// retract them (the reach-confinement soundness argument requires
    /// every reach zone to be expanded before the state is evaluated).  The
    /// loop terminates because every offered zone is extrapolated (finitely
    /// many distinct zones per state) and [`Federation::insert_subsumed`]
    /// admits only zones that add coverage.
    fn absorb_steps(
        &mut self,
        node: NodeId,
        steps: Vec<tiga_model::CandidateStep>,
    ) -> Result<(), SolverError> {
        for step in steps {
            let target = self.explorer.intern(step.discrete)?;
            self.sync_nodes()?;
            if self.explorer.len() > self.options.explore.max_states {
                return Err(SolverError::StateLimitExceeded {
                    limit: self.options.explore.max_states,
                });
            }
            let exists = self.nodes[node]
                .edges
                .iter()
                .any(|e| e.joint == step.joint && e.target == target);
            if !exists {
                self.nodes[node].edges.push(GraphEdge {
                    joint: step.joint,
                    target,
                    controllable: step.controllable,
                });
            }
            // This state must be re-evaluated whenever the target's
            // winning federation grows (the `Depend` set of OTFUR).
            if !self.nodes[target].depend.contains(&node) {
                self.nodes[target].depend.push(node);
            }
            if self.offer_zone(target, step.zone) {
                self.enqueue(target);
            }
        }
        Ok(())
    }

    /// Backward step, read-only half: computes the `π` update of `node`
    /// against the current snapshot of the winning federations.  Runs on the
    /// worker threads of the batch evaluation — it must not (and cannot:
    /// `&self`) touch any search state.
    fn evaluate_one(&self, node: NodeId) -> Result<EvalOutcome, SolverError> {
        let data = &self.nodes[node];
        if data.is_goal {
            return Ok(EvalOutcome::Unchanged);
        }
        // Losing-subtree pruning: with an empty own set and empty successor
        // sets the update is provably the identity, so skip it.  The state
        // is re-queued through `depend` if a successor ever gains wins.
        if self.win[node].is_empty() && data.edges.iter().all(|e| self.win[e.target].is_empty()) {
            return Ok(EvalOutcome::Pruned);
        }
        let state = self.explorer.state(node);
        let Some((unconfined, action_regions)) = pi_update(
            self.system,
            node,
            &state.discrete,
            &state.invariant,
            data.is_goal,
            state.urgent,
            &data.edges,
            &data.boundary,
            &self.win,
            self.mode.swap_roles(),
            |id| &self.explorer.state(id).invariant,
        )?
        else {
            return Ok(EvalOutcome::Unchanged);
        };
        // Reach confinement (see the module docs): outside the expanded
        // reach zones the edge set may be incomplete, so winning valuations
        // there cannot be trusted — and are irrelevant for any reachable
        // play, because the reach set is closed under the game dynamics.
        let mut new_win = if let Some(store) = &self.store {
            unconfined.intersection_with_members(self.reach_sets[node].zones(store))
        } else {
            unconfined.intersection(&data.reach)
        };
        new_win.reduce_exact();
        if self.win[node].includes(&new_win) {
            return Ok(EvalOutcome::Unchanged);
        }
        Ok(EvalOutcome::Grown {
            new_win,
            action_regions,
        })
    }

    /// Backward step, merge half: applies a growth computed by
    /// [`Search::evaluate_one`].  Called in canonical batch order, which
    /// keeps the revision counter — and hence the strategy ranks — identical
    /// for any thread count.  Ranks stay well-founded under batching: the
    /// action regions were computed against the pre-merge snapshot, so every
    /// region recorded at the new revision leads into regions recorded at
    /// strictly earlier revisions.
    fn apply_growth(
        &mut self,
        node: NodeId,
        new_win: Federation,
        action_regions: &[(usize, Federation)],
    ) {
        self.revision = self.revision.saturating_add(1);
        if self.options.extract_strategy && self.mode == GameMode::Reachability {
            let delta = new_win.difference(&self.win[node]);
            let discrete = self.explorer.state(node).discrete.clone();
            for zone in &delta {
                self.strategy.add_rule(
                    discrete.clone(),
                    StrategyRule {
                        rank: self.revision,
                        zone: zone.clone(),
                        decision: Decision::Wait,
                    },
                );
            }
            for (edge_idx, region) in action_regions {
                let joint = self.nodes[node].edges[*edge_idx].joint.clone();
                for zone in region {
                    self.strategy.add_rule(
                        discrete.clone(),
                        StrategyRule {
                            rank: self.revision,
                            zone: zone.clone(),
                            decision: Decision::Take(joint.clone()),
                        },
                    );
                }
            }
        }
        let before = self.win[node].len();
        self.win[node] = new_win;
        self.win_total = self.win_total + self.win[node].len() - before;
        self.mem.peak_live_zones = self
            .mem
            .peak_live_zones
            .max(self.reach_total + self.win_total);
    }

    /// Assembles the partial game graph and the engine outcome,
    /// materializing the interned passed lists into reach federations.
    fn finish(self, root: NodeId) -> Result<(GameGraph, EngineOutcome), SolverError> {
        let Search {
            explorer,
            nodes,
            win,
            strategy,
            mode,
            pops,
            subsumed_zones,
            pruned_evaluations,
            early_terminated,
            store,
            reach_sets,
            mut mem,
            ..
        } = self;
        let game_nodes: Vec<GameNode> = nodes
            .into_iter()
            .enumerate()
            .map(|(idx, data)| {
                let state = explorer.state(idx);
                let reach = match &store {
                    Some(store) => reach_sets[idx].to_federation(store),
                    None => data.reach,
                };
                GameNode {
                    discrete: state.discrete.clone(),
                    invariant: state.invariant.clone(),
                    reach,
                    edges: data.edges,
                    is_goal: data.is_goal,
                    urgent: state.urgent,
                }
            })
            .collect();
        if let Some(store) = &store {
            mem.interned_zones = store.len();
            mem.intern_hits = store.hits();
            // Every intern miss deep-copied the candidate into the store.
            mem.dbm_clones += store.len();
            mem.minimized_bytes_saved = store.bytes_saved();
        }
        let graph = GameGraph::from_parts(game_nodes, root);
        Ok((
            graph,
            EngineOutcome {
                winning: win,
                // Safety strategies are extracted from the converged sets by
                // the caller; the in-search strategy only exists for
                // reachability.
                strategy: (mode == GameMode::Reachability).then_some(strategy),
                iterations: pops,
                subsumed_zones,
                pruned_evaluations,
                early_terminated,
                mem,
            },
        ))
    }
}
