//! Thread-count equivalence suite: the repo's signature invariant, extended
//! to the intra-solve parallel phases.
//!
//! For every engine × benchmark-zoo/fuzz instance, solving with
//! `jobs ∈ {1, 2, 4, 8}` must produce **bit-identical** results:
//!
//! * the verdict (`winning_from_initial`),
//! * the full per-node winning federations (structural equality, so even
//!   zone *order* inside each federation must match),
//! * every [`SolverStats`] counter,
//! * the extracted strategy decisions, state by state.
//!
//! This holds by construction — worker threads only compute updates against
//! immutable snapshots (successor candidates during exploration, π-updates
//! during the fixpoint) and the single merge thread applies them in
//! canonical state order — and this suite pins the construction.
//!
//! Mirrors `crates/core/tests/parallel_determinism.rs`, which pins the same
//! contract for the campaign/fuzz work queue.

use tiga_bench::{fuzz_matrix_instances, model_zoo, ZooInstance};
use tiga_solver::{solve, GameSolution, SolveEngine, SolveOptions, StrategyRule};

const PARALLEL_JOBS: [usize; 3] = [2, 4, 8];

/// The strategy flattened into graph-node order so two runs can be compared
/// decision by decision (the `Strategy` map itself is hash-ordered).
fn strategy_decisions(solution: &GameSolution) -> Option<Vec<Vec<StrategyRule>>> {
    let strategy = solution.strategy.as_ref()?;
    Some(
        (0..solution.graph.len())
            .map(|node| {
                strategy
                    .rules_for(&solution.graph.node(node).discrete)
                    .map(<[StrategyRule]>::to_vec)
                    .unwrap_or_default()
            })
            .collect(),
    )
}

fn assert_jobs_equivalent(instance: &ZooInstance, engine: SolveEngine) {
    let options = |jobs| SolveOptions {
        engine,
        jobs,
        ..SolveOptions::default()
    };
    let context = format!(
        "{}/{} [{}]",
        instance.model,
        instance.purpose_name,
        engine.name()
    );
    let sequential =
        solve(&instance.system, &instance.purpose, &options(1)).expect("sequential solve");
    for jobs in PARALLEL_JOBS {
        let parallel =
            solve(&instance.system, &instance.purpose, &options(jobs)).expect("parallel solve");
        assert_eq!(
            parallel.winning_from_initial, sequential.winning_from_initial,
            "{context}: verdict differs at jobs={jobs}"
        );
        assert_eq!(
            parallel.stats(),
            sequential.stats(),
            "{context}: SolverStats differ at jobs={jobs}"
        );
        assert_eq!(
            parallel.winning, sequential.winning,
            "{context}: winning federations differ at jobs={jobs}"
        );
        assert_eq!(
            strategy_decisions(&parallel),
            strategy_decisions(&sequential),
            "{context}: strategy decisions differ at jobs={jobs}"
        );
    }
}

fn sweep(engine: SolveEngine) {
    for instance in model_zoo() {
        assert_jobs_equivalent(&instance, engine);
    }
    for instance in fuzz_matrix_instances() {
        assert_jobs_equivalent(&instance, engine);
    }
}

#[test]
fn otfur_is_bit_identical_for_any_thread_count() {
    sweep(SolveEngine::Otfur);
}

#[test]
fn jacobi_is_bit_identical_for_any_thread_count() {
    sweep(SolveEngine::Jacobi);
}

#[test]
fn worklist_is_bit_identical_for_any_thread_count() {
    sweep(SolveEngine::Worklist);
}

#[test]
fn exhaustive_mode_is_bit_identical_too() {
    // Without early termination every node's final federation is reached,
    // so the very last fixpoint iteration still carries deltas — the merge
    // must not mask them regardless of the shard layout.
    let zoo = model_zoo();
    let instance = zoo
        .iter()
        .find(|i| i.model == "lep4" && i.purpose_name == "tp2")
        .expect("zoo has lep4/tp2");
    for engine in [
        SolveEngine::Otfur,
        SolveEngine::Jacobi,
        SolveEngine::Worklist,
    ] {
        let options = |jobs| SolveOptions {
            engine,
            jobs,
            early_termination: false,
            ..SolveOptions::default()
        };
        let sequential = solve(&instance.system, &instance.purpose, &options(1)).expect("solves");
        for jobs in PARALLEL_JOBS {
            let parallel =
                solve(&instance.system, &instance.purpose, &options(jobs)).expect("solves");
            assert_eq!(
                parallel.stats(),
                sequential.stats(),
                "[{}] jobs={jobs}",
                engine.name()
            );
            assert_eq!(
                parallel.winning,
                sequential.winning,
                "[{}] jobs={jobs}",
                engine.name()
            );
        }
    }
}
