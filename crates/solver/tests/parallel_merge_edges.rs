//! Edge cases of the deterministic parallel merge.
//!
//! The sharded phases must behave exactly like the sequential solver when
//! the shard layout is degenerate:
//!
//! * **empty delta batches** — a losing game whose π-update produces no
//!   growth in any round (the merge loop sees only empty updates and must
//!   still converge, not spin),
//! * **single-discrete-state games** — more worker threads than work items,
//!   so most per-thread slots stay empty,
//! * **a winning set that changes in the last sharded iteration** — a chain
//!   game whose root is decided only in the final round, pinning that merge
//!   order cannot mask (or double-report) convergence.

use tiga_model::{AutomatonBuilder, EdgeBuilder, System, SystemBuilder};
use tiga_solver::{solve, SolveEngine, SolveOptions};
use tiga_tctl::TestPurpose;

const ENGINES: [SolveEngine; 3] = [
    SolveEngine::Otfur,
    SolveEngine::Jacobi,
    SolveEngine::Worklist,
];
const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// P's `step?` edges are closed by a chaotic environment automaton offering
/// `step!` forever, mirroring the closed products of the model zoo.
fn chain_system(levels: usize) -> System {
    let mut b = SystemBuilder::new("chain");
    let step = b.input_channel("step").unwrap();
    let mut p = AutomatonBuilder::new("P");
    let locations: Vec<_> = (0..levels)
        .map(|i| p.location(&format!("L{i}")).unwrap())
        .collect();
    for pair in locations.windows(2) {
        p.add_edge(EdgeBuilder::new(pair[0], pair[1]).input(step));
    }
    // No edge ever reaches Dead: purposes naming it are losing games whose
    // π-updates produce empty deltas in every round.
    p.location("Dead").unwrap();
    b.add_automaton(p.build().unwrap()).unwrap();
    let mut u = AutomatonBuilder::new("U");
    let only = u.location("Only").unwrap();
    u.add_edge(EdgeBuilder::new(only, only).output(step));
    b.add_automaton(u.build().unwrap()).unwrap();
    b.build().unwrap()
}

fn assert_all_jobs_agree(system: &System, purpose_text: &str, expect_winning: bool) {
    let purpose = TestPurpose::parse(purpose_text, system).unwrap();
    for engine in ENGINES {
        let mut reference = None;
        for jobs in JOB_COUNTS {
            let options = SolveOptions {
                engine,
                jobs,
                ..SolveOptions::default()
            };
            let solution = solve(system, &purpose, &options).expect("solves");
            assert_eq!(
                solution.winning_from_initial,
                expect_winning,
                "[{}] jobs={jobs}: unexpected verdict for `{purpose_text}`",
                engine.name()
            );
            match &reference {
                None => reference = Some(solution),
                Some(first) => {
                    assert_eq!(
                        solution.stats(),
                        first.stats(),
                        "[{}] jobs={jobs}: stats drifted",
                        engine.name()
                    );
                    assert_eq!(
                        solution.winning,
                        first.winning,
                        "[{}] jobs={jobs}: winning federations drifted",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn losing_game_yields_empty_delta_batches() {
    // Dead has no incoming edge, so every π-update batch is empty from
    // round one and the solver must converge to LOSING at every thread
    // count instead of spinning.
    let system = chain_system(1);
    assert_all_jobs_agree(&system, "control: A<> P.Dead", false);
}

#[test]
fn single_discrete_state_game() {
    // The goal holds in the initial state: exploration stops at the goal,
    // the graph has exactly one discrete state, and the shard has fewer
    // items than worker threads (most slots stay empty).
    let system = chain_system(1);
    let purpose = TestPurpose::parse("control: A<> P.L0", &system).unwrap();
    for engine in ENGINES {
        for jobs in JOB_COUNTS {
            let options = SolveOptions {
                engine,
                jobs,
                ..SolveOptions::default()
            };
            let solution = solve(&system, &purpose, &options).expect("solves");
            assert!(
                solution.winning_from_initial,
                "[{}] jobs={jobs}",
                engine.name()
            );
            assert_eq!(
                solution.stats().discrete_states,
                1,
                "[{}] jobs={jobs}: expected a single-state game",
                engine.name()
            );
        }
    }
    assert_all_jobs_agree(&system, "control: A<> P.L0", true);
}

#[test]
fn winning_set_changes_in_the_last_sharded_iteration() {
    // A 6-level chain: the winning set grows backwards one level per
    // fixpoint round, so the root's federation changes in the very last
    // iteration that still carries a delta.  If the merge dropped or
    // reordered late deltas, either the verdict would flip or the iteration
    // count would drift between thread counts.
    let system = chain_system(6);
    assert_all_jobs_agree(&system, "control: A<> P.L5", true);

    // The same game without early termination: the final round must report
    // "no change" identically at every thread count for the loop to stop.
    let purpose = TestPurpose::parse("control: A<> P.L5", &system).unwrap();
    for engine in ENGINES {
        let mut reference = None;
        for jobs in JOB_COUNTS {
            let options = SolveOptions {
                engine,
                jobs,
                early_termination: false,
                ..SolveOptions::default()
            };
            let solution = solve(&system, &purpose, &options).expect("solves");
            assert!(solution.winning_from_initial);
            match &reference {
                None => reference = Some(solution),
                Some(first) => {
                    assert_eq!(
                        solution.stats(),
                        first.stats(),
                        "[{}] jobs={jobs}: exhaustive stats drifted",
                        engine.name()
                    );
                    assert_eq!(solution.winning, first.winning);
                }
            }
        }
    }
}
