//! Property-based tests for `tiga-dbm`.
//!
//! Zones generated here use small integer constants, so membership of
//! integer-valued clock valuations together with half-integer delays gives an
//! *exact* oracle for the delay-quantified operators (`up`, `down`,
//! `pred_t`): every relevant interval endpoint falls on the grid.

use proptest::prelude::*;
use tiga_dbm::{zone_subtract, Bound, Dbm, Federation, Relation};

/// Number of real clocks used by the random zones (dimension is CLOCKS + 1).
const CLOCKS: usize = 2;
const DIM: usize = CLOCKS + 1;
/// Constants used in generated constraints.
const MAX_CONST: i32 = 5;
/// Test points enumerate integer clock values in `0..=MAX_POINT`.
const MAX_POINT: i64 = 7;
/// Delays are enumerated on the half-integer grid up to this bound (scaled by 2).
const MAX_DELAY2: i64 = 2 * (MAX_POINT + MAX_CONST as i64 + 2);

/// A random constraint `x_i - x_j ≺ m` with small constants.
fn arb_constraint() -> impl Strategy<Value = (usize, usize, Bound)> {
    (0..DIM, 0..DIM, -MAX_CONST..=MAX_CONST, any::<bool>()).prop_filter_map(
        "skip diagonal",
        |(i, j, m, strict)| {
            if i == j {
                None
            } else {
                Some((i, j, Bound::new(m, strict)))
            }
        },
    )
}

/// A random (possibly empty) zone built from up to six constraints.
fn arb_zone() -> impl Strategy<Value = Dbm> {
    proptest::collection::vec(arb_constraint(), 0..6).prop_map(|cs| Dbm::from_constraints(DIM, &cs))
}

/// A random non-empty zone.
fn arb_nonempty_zone() -> impl Strategy<Value = Dbm> {
    arb_zone().prop_filter("non-empty", |z| !z.is_empty())
}

/// A random federation of up to three zones.
fn arb_federation() -> impl Strategy<Value = Federation> {
    proptest::collection::vec(arb_zone(), 0..3).prop_map(|zs| Federation::from_zones(DIM, zs))
}

/// All integer-valued test points (scaled by 2, so even entries).
fn grid_points() -> Vec<Vec<i64>> {
    let mut points = Vec::new();
    for a in 0..=MAX_POINT {
        for b in 0..=MAX_POINT {
            points.push(vec![0, 2 * a, 2 * b]);
        }
    }
    points
}

/// Adds a scaled delay to every real clock of a scaled valuation.
fn shifted(point: &[i64], delay2: i64) -> Vec<i64> {
    let mut out = point.to_vec();
    for v in out.iter_mut().skip(1) {
        *v += delay2;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Intersection is exactly pointwise conjunction of membership.
    #[test]
    fn intersection_membership(a in arb_zone(), b in arb_zone()) {
        let inter = a.intersection(&b);
        for p in grid_points() {
            let expected = a.contains_scaled(&p) && b.contains_scaled(&p);
            let actual = inter.as_ref().is_some_and(|z| z.contains_scaled(&p));
            prop_assert_eq!(expected, actual, "point {:?}", p);
        }
    }

    /// `intersects` agrees with the existence of a common grid point when one
    /// exists, and with the exact intersection test in general.
    #[test]
    fn intersects_consistent_with_intersection(a in arb_zone(), b in arb_zone()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    /// Zone subtraction is pointwise set difference, and its pieces are
    /// pairwise disjoint.
    #[test]
    fn subtraction_membership_and_disjointness(a in arb_nonempty_zone(), b in arb_nonempty_zone()) {
        let pieces = zone_subtract(&a, &b);
        for p in grid_points() {
            let expected = a.contains_scaled(&p) && !b.contains_scaled(&p);
            let actual = pieces.iter().any(|z| z.contains_scaled(&p));
            prop_assert_eq!(expected, actual, "point {:?}", p);
        }
        for (i, x) in pieces.iter().enumerate() {
            for y in pieces.iter().skip(i + 1) {
                prop_assert!(!x.intersects(y), "pieces overlap");
            }
        }
    }

    /// Federation difference/union/intersection are pointwise boolean algebra.
    #[test]
    fn federation_boolean_algebra(a in arb_federation(), b in arb_federation()) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        for p in grid_points() {
            let pa = a.contains_scaled(&p);
            let pb = b.contains_scaled(&p);
            prop_assert_eq!(union.contains_scaled(&p), pa || pb);
            prop_assert_eq!(inter.contains_scaled(&p), pa && pb);
            prop_assert_eq!(diff.contains_scaled(&p), pa && !pb);
        }
    }

    /// `up` is existential quantification over past delays.
    #[test]
    fn up_matches_delay_oracle(z in arb_nonempty_zone()) {
        let mut up = z.clone();
        up.up();
        for p in grid_points() {
            let oracle = (0..=MAX_DELAY2).step_by(1).any(|d2| {
                let shifted_down = shifted(&p, -d2);
                shifted_down.iter().skip(1).all(|v| *v >= 0) && z.contains_scaled(&shifted_down)
            });
            prop_assert_eq!(up.contains_scaled(&p), oracle, "point {:?}", p);
        }
    }

    /// `down` is existential quantification over future delays.
    #[test]
    fn down_matches_delay_oracle(z in arb_nonempty_zone()) {
        let mut down = z.clone();
        down.down();
        for p in grid_points() {
            let oracle = (0..=MAX_DELAY2).any(|d2| z.contains_scaled(&shifted(&p, d2)));
            prop_assert_eq!(down.contains_scaled(&p), oracle, "point {:?}", p);
        }
    }

    /// Reset fixes the clock to the value and keeps the rest reachable.
    #[test]
    fn reset_matches_oracle(z in arb_nonempty_zone(), v in 0..3i32) {
        let mut r = z.clone();
        r.reset(1, v);
        for p in grid_points() {
            // p in reset(z) iff p[1] == v and there exists w such that
            // (w, p[2]) in z (i.e. z with clock 1 freed contains p).
            let mut freed = z.clone();
            freed.free(1);
            let expected = p[1] == 2 * i64::from(v) && freed.contains_scaled(&p);
            prop_assert_eq!(r.contains_scaled(&p), expected, "point {:?}", p);
        }
    }

    /// Free is existential quantification over the freed clock.
    #[test]
    fn free_matches_oracle(z in arb_nonempty_zone()) {
        let mut f = z.clone();
        f.free(2);
        for p in grid_points() {
            // Enumerate the freed clock on the half-integer grid: with integer
            // constants every non-empty projection contains such a point.
            let oracle = (0..=MAX_DELAY2).any(|w2| {
                let mut q = p.clone();
                q[2] = w2;
                z.contains_scaled(&q)
            });
            prop_assert_eq!(f.contains_scaled(&p), oracle, "point {:?}", p);
        }
    }

    /// The relation predicate agrees with exact inclusion via subtraction.
    #[test]
    fn relation_agrees_with_subtraction(a in arb_nonempty_zone(), b in arb_nonempty_zone()) {
        let a_minus_b_empty = zone_subtract(&a, &b).is_empty();
        let b_minus_a_empty = zone_subtract(&b, &a).is_empty();
        match a.relation(&b) {
            Relation::Equal => {
                prop_assert!(a_minus_b_empty && b_minus_a_empty);
            }
            Relation::Subset => {
                prop_assert!(a_minus_b_empty && !b_minus_a_empty);
            }
            Relation::Superset => {
                prop_assert!(!a_minus_b_empty && b_minus_a_empty);
            }
            Relation::Different => {
                // The DBM-wise relation is only sufficient, but for canonical
                // DBMs it is also necessary: Different must mean neither
                // inclusion holds.
                prop_assert!(!a_minus_b_empty || !b_minus_a_empty);
            }
        }
    }

    /// Building a zone from constraints is order-insensitive (canonical form).
    #[test]
    fn constraint_order_irrelevant(cs in proptest::collection::vec(arb_constraint(), 0..6)) {
        let forward = Dbm::from_constraints(DIM, &cs);
        let mut reversed_cs = cs.clone();
        reversed_cs.reverse();
        let backward = Dbm::from_constraints(DIM, &reversed_cs);
        prop_assert_eq!(forward.is_empty(), backward.is_empty());
        if !forward.is_empty() {
            prop_assert_eq!(forward.relation(&backward), Relation::Equal);
            prop_assert_eq!(forward, backward);
        }
    }

    /// Full closure after manual recanonicalisation is idempotent.
    #[test]
    fn close_is_idempotent(z in arb_nonempty_zone()) {
        let mut once = z.clone();
        once.close();
        prop_assert_eq!(&once, &z);
        let mut twice = once.clone();
        twice.close();
        prop_assert_eq!(once, twice);
    }

    /// Extrapolation only grows the zone and is idempotent.
    #[test]
    fn extrapolation_grows_and_idempotent(z in arb_nonempty_zone(), m in 1..4i32) {
        let max = vec![0, m, m];
        let mut e = z.clone();
        e.extrapolate_max_bounds(&max);
        prop_assert!(z.is_subset_of(&e));
        let mut e2 = e.clone();
        e2.extrapolate_max_bounds(&max);
        prop_assert_eq!(e, e2);
    }

    /// `pred_t` agrees with the trajectory oracle at integer points.
    #[test]
    fn pred_t_matches_trajectory_oracle(good in arb_federation(), bad in arb_federation()) {
        let pred = good.pred_t(&bad);
        for p in grid_points() {
            let mut oracle = false;
            'delays: for d2 in 0..=MAX_DELAY2 {
                if !good.contains_scaled(&shifted(&p, d2)) {
                    continue;
                }
                for d2p in 0..=d2 {
                    if bad.contains_scaled(&shifted(&p, d2p)) {
                        continue 'delays;
                    }
                }
                oracle = true;
                break;
            }
            prop_assert_eq!(pred.contains_scaled(&p), oracle, "point {:?}", p);
        }
    }

    /// `includes_zone` is exact union coverage.
    #[test]
    fn includes_zone_matches_subtraction(fed in arb_federation(), z in arb_nonempty_zone()) {
        let expected = Federation::from_zone(z.clone()).difference(&fed).is_empty();
        prop_assert_eq!(fed.includes_zone(&z), expected);
    }

    /// `reduce_exact` preserves the denoted set.
    #[test]
    fn reduce_exact_preserves_semantics(fed in arb_federation()) {
        let mut reduced = fed.clone();
        reduced.reduce_exact();
        prop_assert!(reduced.set_equals(&fed));
        prop_assert!(reduced.len() <= fed.len());
    }

    /// The delay window is exactly the set of grid delays leading into a zone.
    #[test]
    fn delay_window_matches_membership(z in arb_nonempty_zone(), a in 0..=MAX_POINT, b in 0..=MAX_POINT) {
        let p = vec![0, 2 * a, 2 * b];
        let window = z.delay_window_at(&p, 2);
        for d2 in 0..=MAX_DELAY2 {
            let inside = z.contains_scaled(&shifted(&p, d2));
            let admitted = window.as_ref().is_some_and(|w| w.admits(d2));
            prop_assert_eq!(inside, admitted, "delay {} from {:?}", d2, p);
        }
    }
}
