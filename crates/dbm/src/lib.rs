//! # tiga-dbm — zones and federations for timed-game analysis
//!
//! This crate provides the symbolic substrate used by the
//! [TIGA reproduction](https://doi.org/10.1145/1403375.1403491) of
//! *"A Game-Theoretic Approach to Real-Time System Testing"*
//! (David, Larsen, Li, Nielsen — DATE 2008):
//!
//! * [`Bound`] — encoded difference bounds `≺ m` with `≺ ∈ {<, ≤}`;
//! * [`Dbm`] — canonical Difference Bound Matrices representing convex clock
//!   zones, with the full set of operations needed by forward reachability
//!   (`up`, `reset`, `free`, intersection, extrapolation) and by backward
//!   game solving (`down`, subtraction);
//! * [`Federation`] — finite unions of zones, including the safe
//!   time-predecessor operator [`Federation::pred_t`] at the heart of the
//!   timed-game controllable-predecessor computation.
//!
//! # Example
//!
//! ```
//! use tiga_dbm::{Bound, Dbm, Federation};
//!
//! // The zone 1 <= x <= 4 over a single clock.
//! let mut zone = Dbm::universe(2);
//! zone.constrain(0, 1, Bound::le(-1));
//! zone.constrain(1, 0, Bound::le(4));
//!
//! // All valuations that can delay into the zone: x <= 4.
//! let mut past = zone.clone();
//! past.down();
//! assert!(past.contains_scaled(&[0, 0]));
//!
//! // Winning-state sets are federations.
//! let win = Federation::from_zone(zone);
//! assert!(win.contains_scaled(&[0, 6])); // x = 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod dbm;
mod federation;
mod minimal;
mod store;

pub use bound::{Bound, MAX_CONSTANT};
pub use dbm::{Dbm, DelayWindow, DisplayZone, Relation};
pub use federation::{zone_subtract, Federation, REDUCE_THRESHOLD};
pub use minimal::{MinimalConstraint, MinimalZone};
pub use store::{ZoneId, ZoneSet, ZoneStore};
