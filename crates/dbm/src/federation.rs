//! Federations: finite unions of zones.
//!
//! Winning-state sets of timed games are in general non-convex, so the solver
//! manipulates [`Federation`]s — lists of canonical, non-empty [`Dbm`]s of the
//! same dimension.  A federation denotes the union of its member zones; the
//! zones are not required to be disjoint.

use crate::bound::Bound;
use crate::dbm::{Dbm, Relation};
use std::fmt;

/// A finite union of clock zones of a common dimension.
///
/// # Examples
///
/// ```
/// use tiga_dbm::{Bound, Dbm, Federation};
///
/// // x in [0,1] ∪ x in [3,4]
/// let mut low = Dbm::universe(2);
/// low.constrain(1, 0, Bound::le(1));
/// let mut high = Dbm::universe(2);
/// high.constrain(1, 0, Bound::le(4));
/// high.constrain(0, 1, Bound::le(-3));
///
/// let mut fed = Federation::from_zone(low);
/// fed.add_zone(high);
/// assert!(fed.contains_scaled(&[0, 1]));   // x = 0.5
/// assert!(!fed.contains_scaled(&[0, 4]));  // x = 2 in the gap
/// assert!(fed.contains_scaled(&[0, 7]));   // x = 3.5
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Federation {
    dim: usize,
    zones: Vec<Dbm>,
}

/// Member-zone count above which the per-zone transformers run the cheap
/// subsumption [`Federation::reduce`] after mapping over the members.
///
/// Below the threshold a redundant zone costs less than the `O(k²)` relation
/// sweep it would take to find it.
pub const REDUCE_THRESHOLD: usize = 8;

impl Federation {
    /// The empty federation (denoting the empty set of valuations).
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        assert!(dim >= 1, "a federation needs at least the reference clock");
        Federation {
            dim,
            zones: Vec::new(),
        }
    }

    /// The federation containing every valuation (a single universe zone).
    #[must_use]
    pub fn universe(dim: usize) -> Self {
        Federation {
            dim,
            zones: vec![Dbm::universe(dim)],
        }
    }

    /// The federation containing only the origin valuation.
    #[must_use]
    pub fn zero(dim: usize) -> Self {
        Federation {
            dim,
            zones: vec![Dbm::zero(dim)],
        }
    }

    /// Wraps a single zone.  An empty zone yields an empty federation.
    #[must_use]
    pub fn from_zone(zone: Dbm) -> Self {
        let dim = zone.dim();
        if zone.is_empty() {
            Federation::empty(dim)
        } else {
            Federation {
                dim,
                zones: vec![zone],
            }
        }
    }

    /// Builds a federation from an iterator of zones, dropping empty ones.
    ///
    /// # Panics
    ///
    /// Panics if the zones do not all have dimension `dim`.
    #[must_use]
    pub fn from_zones<I: IntoIterator<Item = Dbm>>(dim: usize, zones: I) -> Self {
        let mut fed = Federation::empty(dim);
        for z in zones {
            fed.add_zone(z);
        }
        fed
    }

    /// Dimension shared by every member zone.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of member zones.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Returns `true` if the federation denotes the empty set.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Iterates over the member zones.
    pub fn iter(&self) -> std::slice::Iter<'_, Dbm> {
        self.zones.iter()
    }

    /// Consumes the federation and returns its member zones.
    #[must_use]
    pub fn into_zones(self) -> Vec<Dbm> {
        self.zones
    }

    /// Adds a zone, skipping it if it is empty or already subsumed by a
    /// member zone, and dropping member zones it subsumes.
    ///
    /// # Panics
    ///
    /// Panics if the zone's dimension differs.
    pub fn add_zone(&mut self, zone: Dbm) {
        assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        if zone.is_empty() {
            return;
        }
        for existing in &self.zones {
            if matches!(zone.relation(existing), Relation::Subset | Relation::Equal) {
                return;
            }
        }
        self.zones.retain(|existing| {
            !matches!(existing.relation(&zone), Relation::Subset | Relation::Equal)
        });
        self.zones.push(zone);
    }

    /// Inclusion-checked insertion: adds `zone` only if it contributes new
    /// valuations, i.e. it is not already covered by the *union* of the
    /// member zones.
    ///
    /// Returns `true` if the zone was added.  This is stronger (and costlier)
    /// than the per-zone subsumption of [`Federation::add_zone`]; on-the-fly
    /// passed lists use it so that re-reached symbolic states never re-enter
    /// the waiting list.
    ///
    /// # Panics
    ///
    /// Panics if the zone's dimension differs.
    pub fn insert_subsumed(&mut self, zone: Dbm) -> bool {
        assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        if zone.is_empty() || self.includes_zone(&zone) {
            return false;
        }
        self.add_zone(zone);
        true
    }

    /// Unions another federation into this one.
    pub fn union_with(&mut self, other: &Federation) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        for z in &other.zones {
            self.add_zone(z.clone());
        }
    }

    /// Returns the union of two federations.
    #[must_use]
    pub fn union(&self, other: &Federation) -> Federation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Unions another federation into this one, consuming it so the member
    /// zones move instead of being cloned.
    pub fn absorb(&mut self, other: Federation) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        for z in other.zones {
            self.add_zone(z);
        }
    }

    /// Intersects every member zone with `zone`, dropping empty results.
    pub fn intersect_zone(&mut self, zone: &Dbm) {
        assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        let zones = std::mem::take(&mut self.zones);
        for mut z in zones {
            if z.intersect(zone) {
                self.add_zone(z);
            }
        }
    }

    /// Returns the intersection with another federation.
    #[must_use]
    pub fn intersection(&self, other: &Federation) -> Federation {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut out = Federation::empty(self.dim);
        for a in &self.zones {
            for b in &other.zones {
                if let Some(z) = a.intersection(b) {
                    out.add_zone(z);
                }
            }
        }
        out
    }

    /// Returns the intersection with a union of borrowed zones (e.g. the
    /// member sequence of an interned [`crate::ZoneSet`]).
    ///
    /// Produces exactly what [`Federation::intersection`] would for a
    /// federation holding `members` in the same order, without materializing
    /// that federation.
    #[must_use]
    pub fn intersection_with_members<'a, I>(&self, members: I) -> Federation
    where
        I: Iterator<Item = &'a Dbm> + Clone,
    {
        let mut out = Federation::empty(self.dim);
        for a in &self.zones {
            for b in members.clone() {
                if let Some(z) = a.intersection(b) {
                    out.add_zone(z);
                }
            }
        }
        out
    }

    /// Subtracts a single zone from the federation.
    pub fn subtract_zone(&mut self, zone: &Dbm) {
        assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        if zone.is_empty() || self.is_empty() {
            return;
        }
        let zones = std::mem::take(&mut self.zones);
        for z in zones {
            for piece in zone_subtract(&z, zone) {
                self.add_zone(piece);
            }
        }
    }

    /// Subtracts another federation from this one.
    pub fn subtract(&mut self, other: &Federation) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        for z in &other.zones {
            if self.is_empty() {
                return;
            }
            self.subtract_zone(z);
        }
    }

    /// Returns `self \ other` as a new federation.
    #[must_use]
    pub fn difference(&self, other: &Federation) -> Federation {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// Applies the delay (future) operator to every member zone.
    pub fn up(&mut self) {
        for z in &mut self.zones {
            z.up();
        }
        self.reduce_if_above(REDUCE_THRESHOLD);
    }

    /// Applies the past operator to every member zone.
    ///
    /// The past of a union is the union of the pasts, so this is exact.
    pub fn down(&mut self) {
        for z in &mut self.zones {
            z.down();
        }
        self.reduce_if_above(REDUCE_THRESHOLD);
    }

    /// Frees clock `k` in every member zone.
    pub fn free(&mut self, k: usize) {
        for z in &mut self.zones {
            z.free(k);
        }
        self.reduce_if_above(REDUCE_THRESHOLD);
    }

    /// Resets clock `k` to `v` in every member zone.
    pub fn reset(&mut self, k: usize, v: i32) {
        for z in &mut self.zones {
            z.reset(k, v);
        }
        self.reduce_if_above(REDUCE_THRESHOLD);
    }

    /// Applies an arbitrary zone transformation to every member zone,
    /// dropping transformed zones that become empty.
    ///
    /// Unlike the in-place transformers (`up`, `down`, `free`, `reset`),
    /// `transform` needs **no** trailing [`Federation::reduce_if_above`]
    /// sweep: it rebuilds the result through [`Federation::add_zone`], which
    /// already discards every pairwise-subsumed zone on insertion — exactly
    /// the invariant [`Federation::reduce`] restores.  The in-place
    /// transformers mutate member zones without re-insertion (that is what
    /// makes them cheap), so only they can accumulate subsumed members and
    /// only they pay for the sweep.  `transform`'s output is therefore
    /// *always* pairwise-reduced, even below [`REDUCE_THRESHOLD`]; pinned by
    /// `transform_output_is_pairwise_reduced`.
    pub fn transform<F: FnMut(&Dbm) -> Dbm>(&self, mut f: F) -> Federation {
        let mut out = Federation::empty(self.dim);
        for z in &self.zones {
            out.add_zone(f(z));
        }
        debug_assert!(out.is_pairwise_reduced());
        out
    }

    /// Returns `true` if no member zone is subsumed by another member zone
    /// (the invariant [`Federation::reduce`] restores).  Test/debug helper.
    #[must_use]
    pub fn is_pairwise_reduced(&self) -> bool {
        self.zones.iter().enumerate().all(|(i, z)| {
            self.zones.iter().enumerate().all(|(j, w)| {
                i == j || !matches!(z.relation(w), Relation::Subset | Relation::Equal)
            })
        })
    }

    /// Runs [`Federation::reduce`] only when the federation holds more than
    /// `threshold` member zones.
    ///
    /// The per-zone transformers (`up`, `down`, `free`, `reset`) call this
    /// with [`REDUCE_THRESHOLD`]: mapping a transformation over the members
    /// cannot invalidate the union semantics, so small federations skip the
    /// quadratic subsumption sweep entirely and only growth past the
    /// threshold pays for it.
    pub fn reduce_if_above(&mut self, threshold: usize) {
        if self.zones.len() > threshold {
            self.reduce();
        }
    }

    /// Removes member zones subsumed by a single other member zone.
    ///
    /// This is the cheap `O(k²)` reduction; see [`Federation::reduce_exact`]
    /// for the exact (but more expensive) variant.
    pub fn reduce(&mut self) {
        let mut kept: Vec<Dbm> = Vec::with_capacity(self.zones.len());
        'outer: for (idx, z) in self.zones.iter().enumerate() {
            for w in &kept {
                if matches!(z.relation(w), Relation::Subset | Relation::Equal) {
                    continue 'outer;
                }
            }
            for (jdx, w) in self.zones.iter().enumerate() {
                if jdx > idx && matches!(z.relation(w), Relation::Subset | Relation::Equal) {
                    continue 'outer;
                }
            }
            kept.push(z.clone());
        }
        self.zones = kept;
    }

    /// Removes member zones that are covered by the union of the remaining
    /// zones (exact but potentially expensive reduction).
    pub fn reduce_exact(&mut self) {
        self.reduce();
        let mut idx = 0;
        while idx < self.zones.len() {
            let candidate = self.zones[idx].clone();
            let rest = Federation {
                dim: self.dim,
                zones: self
                    .zones
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != idx)
                    .map(|(_, z)| z.clone())
                    .collect(),
            };
            if rest.includes_zone(&candidate) {
                self.zones.remove(idx);
            } else {
                idx += 1;
            }
        }
    }

    /// Checks whether a valuation (scaled by two) belongs to the federation.
    #[must_use]
    pub fn contains_scaled(&self, vals2: &[i64]) -> bool {
        self.zones.iter().any(|z| z.contains_scaled(vals2))
    }

    /// Checks whether a valuation on a `1/scale` fixed-point grid belongs to
    /// the federation.
    #[must_use]
    pub fn contains_at(&self, vals: &[i64], scale: i64) -> bool {
        self.zones.iter().any(|z| z.contains_at(vals, scale))
    }

    /// Returns `true` if the zone is entirely covered by this federation.
    ///
    /// This is an exact inclusion check (`zone \ self = ∅`), not a per-zone
    /// subsumption test.
    #[must_use]
    pub fn includes_zone(&self, zone: &Dbm) -> bool {
        assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        if zone.is_empty() {
            return true;
        }
        let mut remainder = vec![zone.clone()];
        for covering in &self.zones {
            let mut next = Vec::new();
            for piece in remainder {
                next.extend(zone_subtract(&piece, covering));
            }
            remainder = next;
            if remainder.is_empty() {
                return true;
            }
        }
        false
    }

    /// Returns `true` if every valuation of `other` belongs to this
    /// federation.
    #[must_use]
    pub fn includes(&self, other: &Federation) -> bool {
        other.zones.iter().all(|z| self.includes_zone(z))
    }

    /// Semantic equality: mutual inclusion of the denoted sets (member zone
    /// lists may differ).
    ///
    /// Structurally identical member lists short-circuit without any zone
    /// closures; interned passed lists get the same effect for free via
    /// [`crate::ZoneSet::set_equals_interned`], and only genuinely different
    /// member lists pay for the two `includes` sweeps.
    #[must_use]
    pub fn set_equals(&self, other: &Federation) -> bool {
        if self.dim == other.dim && self.zones == other.zones {
            return true;
        }
        self.includes(other) && other.includes(self)
    }

    /// Safe time-predecessor operator `Pred_t(self, bad)`.
    ///
    /// Returns every valuation from which some delay `δ ≥ 0` reaches `self`
    /// (the *good* set) while the whole trajectory `[0, δ]` avoids `bad`:
    ///
    /// ```text
    /// Pred_t(G, B) = { v | ∃δ ≥ 0. v+δ ∈ G ∧ ∀δ' ∈ [0, δ]. v+δ' ∉ B }
    /// ```
    ///
    /// This is the key operator of the timed-game controllable-predecessor
    /// computation (Maler–Pnueli–Sifakis; Cassez et al., CONCUR 2005).
    ///
    /// For a convex good zone `g` and convex bad zone `b`:
    /// `Pred_t(g, b) = (g↓ \ b↓) ∪ (g ∩ (b↓ \ b))↓`, and for unions of bad
    /// zones the results intersect (the set of delays staying inside a convex
    /// zone along a time trajectory is an interval).
    #[must_use]
    pub fn pred_t(&self, bad: &Federation) -> Federation {
        assert_eq!(self.dim, bad.dim, "dimension mismatch");
        let mut result = Federation::empty(self.dim);
        for g in &self.zones {
            let mut acc: Option<Federation> = None;
            if bad.is_empty() {
                let mut d = g.clone();
                d.down();
                result.add_zone(d);
                continue;
            }
            // g↓ does not depend on the bad zone; compute it once per g.
            let mut down_g = g.clone();
            down_g.down();
            for b in &bad.zones {
                let mut down_b = b.clone();
                down_b.down();
                // (g↓ \ b↓)
                let mut part = Federation::from_zone(down_g.clone());
                part.subtract_zone(&down_b);
                // (g ∩ (b↓ \ b))↓
                let mut before_b = Federation::from_zone(down_b);
                before_b.subtract_zone(b);
                before_b.intersect_zone(g);
                before_b.down();
                part.union_with(&before_b);
                acc = Some(match acc {
                    None => part,
                    Some(a) => a.intersection(&part),
                });
            }
            if let Some(a) = acc {
                result.union_with(&a);
            }
        }
        result.reduce();
        result
    }
}

impl From<Dbm> for Federation {
    fn from(zone: Dbm) -> Self {
        Federation::from_zone(zone)
    }
}

impl Extend<Dbm> for Federation {
    fn extend<T: IntoIterator<Item = Dbm>>(&mut self, iter: T) {
        for z in iter {
            self.add_zone(z);
        }
    }
}

impl<'a> IntoIterator for &'a Federation {
    type Item = &'a Dbm;
    type IntoIter = std::slice::Iter<'a, Dbm>;

    fn into_iter(self) -> Self::IntoIter {
        self.zones.iter()
    }
}

impl fmt::Debug for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Federation(dim={}, {} zones)",
            self.dim,
            self.zones.len()
        )
    }
}

/// Subtracts zone `b` from zone `a`, returning pairwise-disjoint pieces.
///
/// Uses the classical splitting along the constraints of `b`, tightening `a`
/// progressively so the produced pieces do not overlap.
#[must_use]
pub fn zone_subtract(a: &Dbm, b: &Dbm) -> Vec<Dbm> {
    assert_eq!(a.dim(), b.dim(), "dimension mismatch");
    if a.is_empty() {
        return Vec::new();
    }
    if b.is_empty() || !a.intersects(b) {
        return vec![a.clone()];
    }
    let constraints: Vec<(usize, usize, Bound)> = b.iter_constraints().collect();
    let mut rest = a.clone();
    let mut out = Vec::new();
    for (i, j, bound) in constraints {
        // Piece satisfying the *negation* of constraint (i, j).  The piece
        // is non-empty iff tightening (j, i) by the negated bound keeps the
        // opposite entry consistent — test on the bounds of `rest` before
        // paying for the matrix clone.
        let neg = bound.negated_complement();
        if rest.at(i, j) + neg >= Bound::ZERO_LE {
            let mut piece = rest.clone();
            if piece.constrain(j, i, neg) {
                out.push(piece);
            }
        }
        // Continue inside the constraint so pieces stay disjoint.
        if !rest.constrain(i, j, bound) {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zone `lo ≤ x ≤ hi` over a single clock (dimension 2).
    fn interval(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(0, 1, Bound::le(-lo)));
        assert!(z.constrain(1, 0, Bound::le(hi)));
        z
    }

    /// Zone `lo < x < hi`.
    fn open_interval(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(0, 1, Bound::lt(-lo)));
        assert!(z.constrain(1, 0, Bound::lt(hi)));
        z
    }

    #[test]
    fn add_zone_subsumes() {
        let mut fed = Federation::from_zone(interval(0, 10));
        fed.add_zone(interval(2, 3));
        assert_eq!(fed.len(), 1);
        let mut fed2 = Federation::from_zone(interval(2, 3));
        fed2.add_zone(interval(0, 10));
        assert_eq!(fed2.len(), 1);
        assert!(fed.set_equals(&fed2));
    }

    #[test]
    fn insert_subsumed_rejects_union_covered_zones() {
        // [0,6] ∪ [4,10] covers [2,8] only jointly: add_zone would keep it,
        // insert_subsumed must reject it.
        let mut fed = Federation::from_zone(interval(0, 6));
        assert!(fed.insert_subsumed(interval(4, 10)));
        assert!(!fed.insert_subsumed(interval(2, 8)));
        assert_eq!(fed.len(), 2);
        // Genuinely new valuations are accepted.
        assert!(fed.insert_subsumed(interval(12, 14)));
        assert_eq!(fed.len(), 3);
        // Empty zones are never inserted.
        let mut empty = Dbm::universe(2);
        assert!(!empty.constrain(1, 0, Bound::lt(0)) || empty.is_empty());
        assert!(!fed.insert_subsumed(empty));
    }

    #[test]
    fn reduce_if_above_only_fires_past_threshold() {
        let mut fed = Federation::empty(2);
        // Bypass add_zone's subsumption by building the zone list directly.
        fed.zones.push(interval(0, 10));
        fed.zones.push(interval(2, 3));
        fed.reduce_if_above(4);
        assert_eq!(fed.len(), 2, "below threshold: no sweep");
        fed.reduce_if_above(1);
        assert_eq!(fed.len(), 1, "above threshold: subsumed zone dropped");
    }

    #[test]
    fn transformers_preserve_semantics_without_eager_reduction() {
        let mut fed = Federation::from_zone(interval(4, 5));
        fed.add_zone(interval(1, 2));
        fed.down();
        assert!(fed.contains_scaled(&[0, 0]));
        assert!(fed.contains_scaled(&[0, 10]));
        assert!(!fed.contains_scaled(&[0, 11]));
    }

    #[test]
    fn zone_subtract_splits_interval() {
        let pieces = zone_subtract(&interval(0, 10), &interval(3, 4));
        let fed = Federation::from_zones(2, pieces);
        assert!(fed.contains_scaled(&[0, 4])); // 2
        assert!(fed.contains_scaled(&[0, 12])); // 6
        assert!(!fed.contains_scaled(&[0, 7])); // 3.5 removed
        assert!(!fed.contains_scaled(&[0, 6])); // 3 removed (closed)
        assert!(!fed.contains_scaled(&[0, 8])); // 4 removed
        assert!(fed.contains_scaled(&[0, 9])); // 4.5 kept
    }

    #[test]
    fn zone_subtract_disjoint_returns_original() {
        let pieces = zone_subtract(&interval(0, 2), &interval(5, 6));
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].relation(&interval(0, 2)), Relation::Equal);
    }

    #[test]
    fn zone_subtract_total_cover_is_empty() {
        let pieces = zone_subtract(&interval(3, 4), &interval(0, 10));
        assert!(pieces.is_empty());
    }

    #[test]
    fn subtraction_respects_strictness() {
        // [0,10] \ (3,4) leaves the boundary points 3 and 4.
        let mut fed = Federation::from_zone(interval(0, 10));
        fed.subtract_zone(&open_interval(3, 4));
        assert!(fed.contains_scaled(&[0, 6])); // x = 3 kept
        assert!(fed.contains_scaled(&[0, 8])); // x = 4 kept
        assert!(!fed.contains_scaled(&[0, 7])); // x = 3.5 removed
    }

    #[test]
    fn difference_and_includes() {
        let big = Federation::from_zone(interval(0, 10));
        let small = Federation::from_zone(interval(2, 5));
        assert!(big.includes(&small));
        assert!(!small.includes(&big));
        let diff = big.difference(&small);
        assert!(!diff.contains_scaled(&[0, 6]));
        assert!(diff.contains_scaled(&[0, 2]));
        assert!(diff.contains_scaled(&[0, 12]));
        // Union of difference and small recovers big.
        let recovered = diff.union(&small);
        assert!(recovered.set_equals(&big));
    }

    #[test]
    fn includes_zone_needs_union_cover() {
        // Two zones covering [0,10] only together.
        let mut fed = Federation::from_zone(interval(0, 6));
        fed.add_zone(interval(4, 10));
        assert_eq!(fed.len(), 2);
        assert!(fed.includes_zone(&interval(2, 8)));
        assert!(!fed.includes_zone(&interval(2, 12)));
    }

    #[test]
    fn reduce_exact_removes_union_covered_zone() {
        let mut fed = Federation::from_zone(interval(0, 6));
        fed.add_zone(interval(4, 10));
        fed.add_zone(interval(2, 8)); // covered by the union of the others
        assert_eq!(fed.len(), 3);
        fed.reduce_exact();
        assert_eq!(fed.len(), 2);
        assert!(fed.contains_scaled(&[0, 16]));
    }

    #[test]
    fn intersection_of_federations() {
        let mut a = Federation::from_zone(interval(0, 3));
        a.add_zone(interval(6, 9));
        let b = Federation::from_zone(interval(2, 7));
        let inter = a.intersection(&b);
        assert!(inter.contains_scaled(&[0, 5])); // 2.5
        assert!(inter.contains_scaled(&[0, 13])); // 6.5
        assert!(!inter.contains_scaled(&[0, 9])); // 4.5 in the gap
    }

    #[test]
    fn down_of_union_is_union_of_downs() {
        let mut fed = Federation::from_zone(interval(4, 5));
        fed.add_zone(interval(8, 9));
        fed.down();
        assert!(fed.contains_scaled(&[0, 0]));
        assert!(fed.contains_scaled(&[0, 13])); // 6.5 (past of [8,9])
        assert!(fed.contains_scaled(&[0, 18])); // 9
        assert!(!fed.contains_scaled(&[0, 20])); // 10
    }

    #[test]
    fn pred_t_with_empty_bad_is_down() {
        let good = Federation::from_zone(interval(4, 5));
        let bad = Federation::empty(2);
        let pred = good.pred_t(&bad);
        assert!(pred.contains_scaled(&[0, 0]));
        assert!(pred.contains_scaled(&[0, 10]));
        assert!(!pred.contains_scaled(&[0, 11]));
    }

    #[test]
    fn pred_t_blocked_by_earlier_bad() {
        // Good at [5,6], bad at [2,3]: only points after the bad interval can
        // safely delay into good.
        let good = Federation::from_zone(interval(5, 6));
        let bad = Federation::from_zone(interval(2, 3));
        let pred = good.pred_t(&bad);
        assert!(!pred.contains_scaled(&[0, 2])); // x=1 must cross bad
        assert!(!pred.contains_scaled(&[0, 4])); // x=2 inside bad
        assert!(!pred.contains_scaled(&[0, 6])); // x=3 inside bad
        assert!(pred.contains_scaled(&[0, 7])); // x=3.5 fine
        assert!(pred.contains_scaled(&[0, 12])); // x=6
        assert!(!pred.contains_scaled(&[0, 13])); // x=6.5 beyond good
    }

    #[test]
    fn pred_t_good_before_bad() {
        // Good at [2,3], bad at [5,6]: everything up to the good interval wins.
        let good = Federation::from_zone(interval(2, 3));
        let bad = Federation::from_zone(interval(5, 6));
        let pred = good.pred_t(&bad);
        assert!(pred.contains_scaled(&[0, 0]));
        assert!(pred.contains_scaled(&[0, 6]));
        assert!(!pred.contains_scaled(&[0, 7])); // 3.5: past good, would hit bad only later but can no longer reach good
        assert!(!pred.contains_scaled(&[0, 10])); // 5 inside bad
    }

    #[test]
    fn pred_t_good_straddling_bad() {
        // Good [2,6], bad [3,4]: win below 3 (reach good before bad) and in (4,6].
        let good = Federation::from_zone(interval(2, 6));
        let bad = Federation::from_zone(interval(3, 4));
        let pred = good.pred_t(&bad);
        assert!(pred.contains_scaled(&[0, 0]));
        assert!(pred.contains_scaled(&[0, 5])); // 2.5
        assert!(!pred.contains_scaled(&[0, 6])); // 3 is bad
        assert!(!pred.contains_scaled(&[0, 8])); // 4 is bad
        assert!(pred.contains_scaled(&[0, 9])); // 4.5 wins
        assert!(pred.contains_scaled(&[0, 12])); // 6 wins
        assert!(!pred.contains_scaled(&[0, 13])); // 6.5 loses
    }

    #[test]
    fn pred_t_union_of_bad_zones() {
        // Good [10,11], bad [2,3] ∪ [5,6]: must avoid both, so only points
        // after 6 win.
        let good = Federation::from_zone(interval(10, 11));
        let mut bad = Federation::from_zone(interval(2, 3));
        bad.add_zone(interval(5, 6));
        let pred = good.pred_t(&bad);
        assert!(!pred.contains_scaled(&[0, 0]));
        assert!(!pred.contains_scaled(&[0, 8])); // 4: would hit [5,6] later
        assert!(pred.contains_scaled(&[0, 13])); // 6.5
        assert!(pred.contains_scaled(&[0, 22])); // 11
        assert!(!pred.contains_scaled(&[0, 23]));
    }

    #[test]
    fn pred_t_open_bad_boundary_wins_at_boundary() {
        // Bad is open at 2: standing exactly at 2 with good [2,9] wins at δ=0.
        let good = Federation::from_zone(interval(2, 9));
        let bad = Federation::from_zone(open_interval(2, 3));
        let pred = good.pred_t(&bad);
        assert!(pred.contains_scaled(&[0, 4])); // x=2 wins immediately
        assert!(!pred.contains_scaled(&[0, 5])); // x=2.5 is inside bad
        assert!(pred.contains_scaled(&[0, 6])); // x=3 wins immediately (bad open at 3)
        assert!(pred.contains_scaled(&[0, 0])); // x=0 can reach 2 before bad (bad open at 2)
    }

    #[test]
    fn set_equality_is_semantic() {
        let mut split = Federation::from_zone(interval(0, 5));
        split.add_zone(interval(5, 10));
        let whole = Federation::from_zone(interval(0, 10));
        assert!(split.set_equals(&whole));
        assert_ne!(split, whole); // structural inequality is fine
    }

    #[test]
    fn transform_output_is_pairwise_reduced() {
        // Pins the documented contract: `transform` rebuilds through
        // `add_zone`, so its output never holds pairwise-subsumed members —
        // regardless of REDUCE_THRESHOLD — while the in-place transformers
        // only sweep past the threshold.  A reset collapses all disjoint
        // intervals onto one point, the canonical worst case.
        let mut fed = Federation::empty(2);
        for i in 0..2 * (REDUCE_THRESHOLD as i32) {
            fed.add_zone(interval(3 * i, 3 * i + 1));
        }
        assert!(fed.len() > REDUCE_THRESHOLD);
        let reset = fed.transform(|z| {
            let mut z = z.clone();
            z.reset(1, 0);
            z
        });
        assert_eq!(reset.len(), 1, "collapsed zones must be deduplicated");
        assert!(reset.is_pairwise_reduced());
        assert!(reset.contains_scaled(&[0, 0]));
        // Identity transform below the threshold: still reduced, nothing lost.
        let small = Federation::from_zones(2, [interval(0, 10), interval(2, 3)]);
        let copy = small.transform(Clone::clone);
        assert!(copy.is_pairwise_reduced());
        assert_eq!(copy.len(), 1, "subsumed input zones do not reappear");
        assert!(copy.set_equals(&small));
        // Contrast: the in-place `down` may keep subsumed members below the
        // threshold (that is what `reduce_if_above` is for) — but `transform`
        // with the same operation must not.
        let down = small.transform(|z| {
            let mut z = z.clone();
            z.down();
            z
        });
        assert!(down.is_pairwise_reduced());
    }

    #[test]
    fn transform_applies_operation() {
        let fed = Federation::from_zone(interval(1, 2));
        let reset = fed.transform(|z| {
            let mut z = z.clone();
            z.reset(1, 0);
            z
        });
        assert!(reset.contains_scaled(&[0, 0]));
        assert!(!reset.contains_scaled(&[0, 2]));
    }

    #[test]
    fn contains_at_scale_over_members() {
        let mut fed = Federation::from_zone(interval(3, 4));
        fed.add_zone(interval(8, 9));
        assert!(fed.contains_at(&[0, 14], 4)); // 3.5
        assert!(fed.contains_at(&[0, 34], 4)); // 8.5
        assert!(!fed.contains_at(&[0, 24], 4)); // 6
        assert!(!Federation::empty(2).contains_at(&[0, 0], 4));
    }
}
