//! Minimal-constraint form of a canonical DBM.
//!
//! A canonical (all-pairs shortest path closed) DBM of dimension `n` stores
//! `n²` bounds, but most of them are derivable from a small core: the
//! classical minimal representation of Larsen–Larsson–Pettersson–Yi (RTSS
//! 1997) keeps, per zero-equivalence class, one cycle of equality
//! constraints, plus the non-redundant bounds between class representatives.
//! [`Dbm::minimize`] extracts that core and [`MinimalZone::rehydrate`]
//! reproduces the *bit-identical* canonical matrix (closure of a constraint
//! set is unique), which is what lets the zone store drop canonical caches
//! and rebuild them on demand.
//!
//! At-rest zones (the interned passed list, see [`crate::ZoneStore`]) keep
//! only this form authoritatively: memory per zone drops from `O(n²)` to the
//! constraint count, which the solver reports as `minimized_bytes_saved`.

use crate::bound::Bound;
use crate::dbm::Dbm;

/// One kept constraint `x_i − x_j ≺ m` of a minimal form.
///
/// Clock indices are stored narrow (`u16`): DBM dimensions are the number of
/// model clocks plus one, far below `u16::MAX`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MinimalConstraint {
    /// Row clock index.
    pub i: u16,
    /// Column clock index.
    pub j: u16,
    /// The bound on `x_i − x_j`.
    pub bound: Bound,
}

/// A zone reduced to its minimal constraint system.
///
/// Produced by [`Dbm::minimize`]; [`MinimalZone::rehydrate`] restores the
/// exact canonical DBM.
///
/// # Examples
///
/// ```
/// use tiga_dbm::{Bound, Dbm};
///
/// let mut z = Dbm::universe(3);
/// z.constrain(1, 0, Bound::le(5)); // x <= 5
/// z.constrain(2, 1, Bound::le(2)); // y - x <= 2
/// let minimal = z.minimize();
/// // The derived bound y <= 7 is not stored...
/// assert!(minimal.len() < 3 * 3);
/// // ...but the canonical matrix comes back bit-identical.
/// assert_eq!(minimal.rehydrate(), z);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MinimalZone {
    dim: usize,
    empty: bool,
    constraints: Vec<MinimalConstraint>,
}

impl MinimalZone {
    /// Dimension of the zone this form was extracted from.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns `true` if the original zone was empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Number of kept constraints.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// The kept constraints, in deterministic (row-major) order.
    #[must_use]
    pub fn constraints(&self) -> &[MinimalConstraint] {
        &self.constraints
    }

    /// Heap bytes of this form's constraint list (what an at-rest zone
    /// costs once its canonical cache is dropped).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.constraints.len() * std::mem::size_of::<MinimalConstraint>()
    }

    /// Rebuilds the canonical DBM.
    ///
    /// For non-empty zones the result is bit-identical to the matrix
    /// [`Dbm::minimize`] was called on: the shortest-path closure of the
    /// minimal constraint set is unique and equals the original closure.
    #[must_use]
    pub fn rehydrate(&self) -> Dbm {
        if self.empty {
            return Dbm::empty_of(self.dim);
        }
        let mut z = Dbm::universe(self.dim);
        for c in &self.constraints {
            if !z.constrain(c.i as usize, c.j as usize, c.bound) {
                break;
            }
        }
        z
    }
}

impl Dbm {
    /// Extracts the minimal constraint system of this (canonical) zone.
    ///
    /// See the module docs for the algorithm; [`MinimalZone::rehydrate`]
    /// inverts it exactly.
    #[must_use]
    pub fn minimize(&self) -> MinimalZone {
        let dim = self.dim();
        if self.is_empty() {
            return MinimalZone {
                dim,
                empty: true,
                constraints: Vec::new(),
            };
        }
        // 1. Zero-equivalence classes: i ~ j iff the cycle i -> j -> i has
        //    weight exactly (<=, 0).  Closure makes ~ transitive.
        let mut class = vec![usize::MAX; dim];
        let mut class_members: Vec<Vec<usize>> = Vec::new();
        for i in 0..dim {
            if class[i] != usize::MAX {
                continue;
            }
            let c = class_members.len();
            class[i] = c;
            let mut members = vec![i];
            for (j, cj) in class.iter_mut().enumerate().skip(i + 1) {
                if *cj == usize::MAX && self.at(i, j) + self.at(j, i) == Bound::ZERO_LE {
                    *cj = c;
                    members.push(j);
                }
            }
            class_members.push(members);
        }
        let mut constraints = Vec::new();
        // 2. Within each class, keep the chain cycle x0 -> x1 -> ... -> x0
        //    over the ascending members; every other within-class bound is
        //    the sum of a sub-path of the cycle.
        for members in &class_members {
            if members.len() < 2 {
                continue;
            }
            for w in members.windows(2) {
                constraints.push(MinimalConstraint {
                    i: w[0] as u16,
                    j: w[1] as u16,
                    bound: self.at(w[0], w[1]),
                });
            }
            let (first, last) = (members[0], members[members.len() - 1]);
            constraints.push(MinimalConstraint {
                i: last as u16,
                j: first as u16,
                bound: self.at(last, first),
            });
        }
        // 3. Between class representatives, drop every bound witnessed by an
        //    intermediate representative.  Simultaneous greedy dropping is
        //    sound here: a cycle of mutual witnesses among >= 3 distinct
        //    representatives would be a zero cycle, forcing them into one
        //    class — a contradiction.
        let reps: Vec<usize> = class_members.iter().map(|m| m[0]).collect();
        for &i in &reps {
            for &j in &reps {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if b.is_inf() {
                    continue;
                }
                let redundant = reps
                    .iter()
                    .any(|&k| k != i && k != j && self.at(i, k) + self.at(k, j) <= b);
                if !redundant {
                    constraints.push(MinimalConstraint {
                        i: i as u16,
                        j: j as u16,
                        bound: b,
                    });
                }
            }
        }
        // Constraints already implied by the universe baseline (row-0
        // non-negativity bounds) are free: rehydration starts from
        // `Dbm::universe`, which carries them implicitly.
        constraints.retain(|c| !(c.i == 0 && c.bound == Bound::ZERO_LE));
        // Deterministic order (useful for hashing and tests).
        constraints.sort_unstable_by_key(|c| (c.i, c.j));
        MinimalZone {
            dim,
            empty: false,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(0, 1, Bound::le(-lo)));
        assert!(z.constrain(1, 0, Bound::le(hi)));
        z
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mut z = Dbm::universe(4);
        z.constrain(1, 0, Bound::le(5));
        z.constrain(2, 1, Bound::le(2));
        z.constrain(0, 3, Bound::lt(-1));
        z.constrain(3, 2, Bound::le(0));
        assert_eq!(z.minimize().rehydrate(), z);
    }

    #[test]
    fn derived_bounds_are_dropped() {
        // x <= 5 and y - x <= 2 derive y <= 7; the minimal form keeps only
        // the two written constraints.
        let mut z = Dbm::universe(3);
        z.constrain(1, 0, Bound::le(5));
        z.constrain(2, 1, Bound::le(2));
        let m = z.minimize();
        assert_eq!(m.len(), 2, "{:?}", m.constraints());
        assert_eq!(m.rehydrate(), z);
    }

    #[test]
    fn zero_cycle_classes_keep_one_cycle() {
        // x == y == 3: one class {x, y} (plus the reference class once the
        // clocks are pinned to a constant, 0 ~ x ~ y — a single chain).
        let mut z = Dbm::universe(3);
        z.constrain(1, 0, Bound::le(3));
        z.constrain(0, 1, Bound::le(-3));
        z.constrain(2, 1, Bound::le(0));
        z.constrain(1, 2, Bound::le(0));
        let m = z.minimize();
        // One equivalence class {0, x, y}: chain 0->x, x->y plus closing
        // y->0 — three constraints for a 9-entry matrix.
        assert_eq!(m.len(), 3, "{:?}", m.constraints());
        assert_eq!(m.rehydrate(), z);
    }

    #[test]
    fn empty_and_trivial_zones_roundtrip() {
        let mut empty = Dbm::universe(2);
        assert!(!empty.constrain(1, 0, Bound::lt(0)));
        let m = empty.minimize();
        assert!(m.is_empty());
        assert!(m.rehydrate().is_empty());

        let universe = Dbm::universe(3);
        let m = universe.minimize();
        assert_eq!(m.len(), 0);
        assert_eq!(m.rehydrate(), universe);

        let zero = Dbm::zero(3);
        assert_eq!(zero.minimize().rehydrate(), zero);

        let point = Dbm::zero(1);
        assert_eq!(point.minimize().rehydrate(), point);
    }

    #[test]
    fn ops_derived_zones_roundtrip() {
        let base = interval(2, 8);
        let mut up = base.clone();
        up.up();
        assert_eq!(up.minimize().rehydrate(), up);
        let mut down = base.clone();
        down.down();
        assert_eq!(down.minimize().rehydrate(), down);
        let mut reset = Dbm::universe(3);
        reset.constrain(1, 0, Bound::le(4));
        reset.reset(2, 1);
        assert_eq!(reset.minimize().rehydrate(), reset);
        let mut freed = reset.clone();
        freed.free(1);
        assert_eq!(freed.minimize().rehydrate(), freed);
    }

    #[test]
    fn byte_size_reflects_kept_constraints() {
        let z = interval(1, 5);
        let m = z.minimize();
        assert_eq!(
            m.byte_size(),
            m.len() * std::mem::size_of::<MinimalConstraint>()
        );
        assert!(m.byte_size() < z.dim() * z.dim() * std::mem::size_of::<Bound>() + 1);
    }
}
