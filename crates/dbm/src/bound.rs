//! Encoded clock-difference bounds.
//!
//! A [`Bound`] represents the right-hand side of a difference constraint
//! `x - y ≺ m` where `≺ ∈ {<, ≤}` and `m ∈ ℤ ∪ {∞}`.  Bounds are stored in the
//! classical UPPAAL "raw" encoding `raw = 2·m + weak` (`weak = 1` for `≤`,
//! `0` for `<`), which makes comparison of bounds a plain integer comparison
//! and addition a couple of integer operations.

use std::fmt;

/// Raw encoded representation of a difference bound (`x - y ≺ m`).
///
/// Two bounds compare exactly as the constraints they denote: `(m, <)` is
/// tighter (smaller) than `(m, ≤)`, and smaller constants are tighter than
/// larger ones.  [`Bound::INF`] (no constraint) is greater than every finite
/// bound.
///
/// # Examples
///
/// ```
/// use tiga_dbm::Bound;
///
/// let lt3 = Bound::lt(3);
/// let le3 = Bound::le(3);
/// assert!(lt3 < le3);
/// assert!(le3 < Bound::INF);
/// assert_eq!(lt3.constant(), Some(3));
/// assert!(lt3.is_strict());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bound(i32);

/// Largest finite constant supported by the encoding.
///
/// Constants beyond this limit would risk overflow when two bounds are added
/// during canonicalisation; model constants in practice are tiny compared to
/// this.
pub const MAX_CONSTANT: i32 = (i32::MAX / 4) - 1;

// Kept even so that `is_strict` reports `<` for the infinite bound.
const INF_RAW: i32 = (i32::MAX / 2) & !1;

impl Bound {
    /// The absence of a constraint: `x - y < ∞`.
    pub const INF: Bound = Bound(INF_RAW);

    /// The bound `≤ 0`, used pervasively on the DBM diagonal and for the
    /// reference clock.
    pub const ZERO_LE: Bound = Bound(1);

    /// The bound `< 0`, the canonical "empty" marker on a DBM diagonal.
    pub const ZERO_LT: Bound = Bound(0);

    /// Creates the non-strict bound `≤ m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[-MAX_CONSTANT, MAX_CONSTANT]`.
    #[inline]
    #[must_use]
    pub fn le(m: i32) -> Self {
        assert!(
            (-MAX_CONSTANT..=MAX_CONSTANT).contains(&m),
            "bound constant {m} out of range"
        );
        Bound(2 * m + 1)
    }

    /// Creates the strict bound `< m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[-MAX_CONSTANT, MAX_CONSTANT]`.
    #[inline]
    #[must_use]
    pub fn lt(m: i32) -> Self {
        assert!(
            (-MAX_CONSTANT..=MAX_CONSTANT).contains(&m),
            "bound constant {m} out of range"
        );
        Bound(2 * m)
    }

    /// Creates a bound from a constant and a strictness flag.
    ///
    /// ```
    /// use tiga_dbm::Bound;
    /// assert_eq!(Bound::new(4, true), Bound::lt(4));
    /// assert_eq!(Bound::new(4, false), Bound::le(4));
    /// ```
    #[inline]
    #[must_use]
    pub fn new(m: i32, strict: bool) -> Self {
        if strict {
            Bound::lt(m)
        } else {
            Bound::le(m)
        }
    }

    /// Returns `true` if this bound is `∞` (no constraint).
    #[inline]
    #[must_use]
    pub fn is_inf(self) -> bool {
        self.0 >= INF_RAW
    }

    /// Returns the finite constant `m`, or `None` for [`Bound::INF`].
    #[inline]
    #[must_use]
    pub fn constant(self) -> Option<i32> {
        if self.is_inf() {
            None
        } else {
            Some(self.0 >> 1)
        }
    }

    /// Returns `true` for a strict (`<`) bound.  [`Bound::INF`] counts as
    /// strict.
    #[inline]
    #[must_use]
    pub fn is_strict(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the bound of the *complement* constraint.
    ///
    /// The complement of `x - y ≺ m` is `y - x ≺' -m` with the dual
    /// strictness (`≤` ↔ `<`).  Used by zone subtraction.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Bound::INF`]: the complement of "no constraint"
    /// is empty and has no bound representation.
    #[inline]
    #[must_use]
    pub fn negated_complement(self) -> Bound {
        assert!(
            !self.is_inf(),
            "the complement of an infinite bound is empty"
        );
        Bound(1 - self.0)
    }

    /// Checks whether a concrete difference `d = x - y` (scaled by 2 so that
    /// half-integer valuations are exact) satisfies this bound.
    ///
    /// `d2` is `2·(x − y)`.
    #[inline]
    #[must_use]
    pub fn admits_scaled(self, d2: i64) -> bool {
        self.admits_at(d2, 2)
    }

    /// Checks whether a concrete difference `d = x - y`, given as `d · scale`,
    /// satisfies this bound.
    ///
    /// Using a scale (a positive integer) lets callers work on a fixed-point
    /// time grid (e.g. 1/8 time units) while keeping comparisons exact.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    #[inline]
    #[must_use]
    pub fn admits_at(self, diff_scaled: i64, scale: i64) -> bool {
        assert!(scale > 0, "scale must be positive");
        if self.is_inf() {
            return true;
        }
        let m = scale * i64::from(self.0 >> 1);
        if self.is_strict() {
            diff_scaled < m
        } else {
            diff_scaled <= m
        }
    }

    /// Raw encoded value (for hashing / ordering diagnostics).
    #[inline]
    #[must_use]
    pub fn raw(self) -> i32 {
        self.0
    }
}

impl std::ops::Add for Bound {
    type Output = Bound;

    /// Adds two bounds, as required when composing the constraints
    /// `x - y ≺₁ m₁` and `y - z ≺₂ m₂` into `x - z ≺ m₁ + m₂`.
    ///
    /// The result is strict if either operand is strict; `∞` absorbs.
    ///
    /// ```
    /// use tiga_dbm::Bound;
    /// assert_eq!(Bound::le(2) + Bound::lt(3), Bound::lt(5));
    /// assert_eq!(Bound::le(2) + Bound::INF, Bound::INF);
    /// ```
    #[inline]
    fn add(self, other: Bound) -> Bound {
        if self.is_inf() || other.is_inf() {
            Bound::INF
        } else {
            Bound(self.0 + other.0 - ((self.0 | other.0) & 1))
        }
    }
}

impl Default for Bound {
    /// The default bound is `∞` (unconstrained).
    fn default() -> Self {
        Bound::INF
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "<inf")
        } else if self.is_strict() {
            write!(f, "<{}", self.0 >> 1)
        } else {
            write!(f, "<={}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_constraint_tightness() {
        assert!(Bound::lt(0) < Bound::le(0));
        assert!(Bound::le(0) < Bound::lt(1));
        assert!(Bound::lt(1) < Bound::le(1));
        assert!(Bound::le(100) < Bound::INF);
        assert!(Bound::le(-5) < Bound::lt(-4));
    }

    #[test]
    fn addition_combines_strictness() {
        assert_eq!(Bound::le(2) + Bound::le(3), Bound::le(5));
        assert_eq!(Bound::le(2) + Bound::lt(3), Bound::lt(5));
        assert_eq!(Bound::lt(2) + Bound::le(3), Bound::lt(5));
        assert_eq!(Bound::lt(2) + Bound::lt(3), Bound::lt(5));
        assert_eq!(Bound::le(-2) + Bound::le(2), Bound::le(0));
    }

    #[test]
    fn addition_with_infinity_is_infinity() {
        assert_eq!(Bound::INF + Bound::le(3), Bound::INF);
        assert_eq!(Bound::lt(-7) + Bound::INF, Bound::INF);
        assert_eq!(Bound::INF + Bound::INF, Bound::INF);
    }

    #[test]
    fn negated_complement_flips_strictness_and_sign() {
        assert_eq!(Bound::le(3).negated_complement(), Bound::lt(-3));
        assert_eq!(Bound::lt(3).negated_complement(), Bound::le(-3));
        assert_eq!(Bound::le(0).negated_complement(), Bound::lt(0));
        // Involution.
        assert_eq!(
            Bound::le(7).negated_complement().negated_complement(),
            Bound::le(7)
        );
    }

    #[test]
    #[should_panic(expected = "complement of an infinite bound")]
    fn negated_complement_of_inf_panics() {
        let _ = Bound::INF.negated_complement();
    }

    #[test]
    fn constant_and_strictness_roundtrip() {
        for m in [-10, -1, 0, 1, 42] {
            assert_eq!(Bound::le(m).constant(), Some(m));
            assert_eq!(Bound::lt(m).constant(), Some(m));
            assert!(!Bound::le(m).is_strict());
            assert!(Bound::lt(m).is_strict());
        }
        assert_eq!(Bound::INF.constant(), None);
        assert!(Bound::INF.is_strict());
    }

    #[test]
    fn admits_scaled_respects_strictness() {
        // x - y <= 3, difference 3 admitted; < 3 rejects 3.
        assert!(Bound::le(3).admits_scaled(6));
        assert!(!Bound::lt(3).admits_scaled(6));
        assert!(Bound::lt(3).admits_scaled(5)); // 2.5 < 3
        assert!(Bound::INF.admits_scaled(1_000_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bound::le(4).to_string(), "<=4");
        assert_eq!(Bound::lt(-2).to_string(), "<-2");
        assert_eq!(Bound::INF.to_string(), "<inf");
    }
}
