//! Difference Bound Matrices (DBMs): the canonical symbolic representation of
//! clock zones.
//!
//! A zone over clocks `x₁ … x_{n}` is a conjunction of constraints of the form
//! `x_i - x_j ≺ m`.  A DBM of *dimension* `n + 1` stores one [`Bound`] per
//! ordered clock pair, with the pseudo-clock `0` (index `0`) permanently equal
//! to zero so that unary constraints `x ≺ m` and `-x ≺ m` are uniform
//! difference constraints.
//!
//! All public operations keep the matrix in *canonical* (all-pairs shortest
//! path closed) form unless the zone becomes empty, which is flagged by a
//! negative diagonal entry at `(0,0)`.

use crate::bound::Bound;
use std::fmt;

/// A clock zone represented as a canonical difference bound matrix.
///
/// # Examples
///
/// Build the zone `1 ≤ x ≤ 5 ∧ x - y < 2` over two clocks (`dim = 3`):
///
/// ```
/// use tiga_dbm::{Bound, Dbm};
///
/// let mut z = Dbm::universe(3);
/// z.constrain(0, 1, Bound::le(-1)); // 0 - x <= -1  i.e. x >= 1
/// z.constrain(1, 0, Bound::le(5));  // x <= 5
/// z.constrain(1, 2, Bound::lt(2));  // x - y < 2
/// assert!(!z.is_empty());
/// assert!(z.contains_scaled(&[0, 4, 2])); // x = 2, y = 1
/// assert!(!z.contains_scaled(&[0, 12, 2])); // x = 6 violates x <= 5
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dbm {
    dim: usize,
    data: Vec<Bound>,
}

/// Result of comparing two zones of the same dimension.
///
/// Produced by [`Dbm::relation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// The zones contain exactly the same valuations.
    Equal,
    /// The left zone is a strict subset of the right zone.
    Subset,
    /// The left zone is a strict superset of the right zone.
    Superset,
    /// Neither zone includes the other.
    Different,
}

impl Dbm {
    /// The zone containing only the origin (all clocks equal to `0`).
    ///
    /// This is the initial zone of a timed automaton before any delay.
    #[must_use]
    pub fn zero(dim: usize) -> Self {
        assert!(dim >= 1, "a DBM needs at least the reference clock");
        Dbm {
            dim,
            data: vec![Bound::ZERO_LE; dim * dim],
        }
    }

    /// The unconstrained zone (all clock valuations with non-negative clocks).
    #[must_use]
    pub fn universe(dim: usize) -> Self {
        assert!(dim >= 1, "a DBM needs at least the reference clock");
        let mut data = vec![Bound::INF; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = Bound::ZERO_LE;
            // 0 - x_i <= 0: clocks are non-negative.
            data[i] = Bound::ZERO_LE;
        }
        Dbm { dim, data }
    }

    /// Builds a zone from an explicit list of constraints `x_i − x_j ≺ m`.
    ///
    /// The result is canonicalised; an unsatisfiable constraint set yields an
    /// empty zone (see [`Dbm::is_empty`]).
    ///
    /// # Panics
    ///
    /// Panics if any clock index is out of range for `dim`.
    #[must_use]
    pub fn from_constraints(dim: usize, constraints: &[(usize, usize, Bound)]) -> Self {
        let mut z = Dbm::universe(dim);
        for &(i, j, b) in constraints {
            if !z.constrain(i, j, b) {
                break;
            }
        }
        z
    }

    /// Number of rows/columns, i.e. number of real clocks plus one.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The bound on `x_i − x_j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> Bound {
        self.data[i * self.dim + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, b: Bound) {
        self.data[i * self.dim + j] = b;
    }

    /// Returns `true` if the zone contains no clock valuation.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data[0] < Bound::ZERO_LE
    }

    /// Marks the zone as empty (canonical empty representation).
    fn set_empty(&mut self) {
        self.data[0] = Bound::ZERO_LT;
    }

    /// An empty zone of the given dimension (used to rehydrate minimized
    /// empty zones; empty zones are only compared via [`Dbm::is_empty`]).
    pub(crate) fn empty_of(dim: usize) -> Self {
        let mut z = Dbm::zero(dim);
        z.set_empty();
        z
    }

    /// Full Floyd–Warshall canonicalisation.
    ///
    /// Public operations maintain canonical form, so this is only needed after
    /// manual bound surgery (e.g. by extrapolation).  Returns `false` and
    /// marks the zone empty if a negative cycle is detected.
    pub fn close(&mut self) -> bool {
        let n = self.dim;
        for k in 0..n {
            for i in 0..n {
                let dik = self.at(i, k);
                if dik.is_inf() {
                    continue;
                }
                for j in 0..n {
                    let cand = dik + self.at(k, j);
                    if cand < self.at(i, j) {
                        self.set(i, j, cand);
                    }
                }
            }
            if self.at(k, k) < Bound::ZERO_LE {
                self.set_empty();
                return false;
            }
        }
        !self.is_empty()
    }

    /// Adds the constraint `x_i − x_j ≺ m` and restores canonical form
    /// incrementally (O(dim²)).
    ///
    /// Returns `false` (and leaves the zone empty) if the constraint makes the
    /// zone unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn constrain(&mut self, i: usize, j: usize, b: Bound) -> bool {
        assert!(i < self.dim && j < self.dim, "clock index out of range");
        if self.is_empty() {
            return false;
        }
        if b >= self.at(i, j) {
            return true;
        }
        // Tightening below the opposite bound's negation empties the zone.
        if self.at(j, i) + b < Bound::ZERO_LE {
            self.set_empty();
            return false;
        }
        self.set(i, j, b);
        let n = self.dim;
        // Snapshot column i and row j so the O(n²) re-closure uses the
        // pre-update values as required by the incremental closure lemma.
        let col_i: Vec<Bound> = (0..n).map(|a| self.at(a, i)).collect();
        let row_j: Vec<Bound> = (0..n).map(|c| self.at(j, c)).collect();
        for (a, &col) in col_i.iter().enumerate() {
            if col.is_inf() {
                continue;
            }
            let via_i = col + b;
            for (c, &row) in row_j.iter().enumerate() {
                let cand = via_i + row;
                if cand < self.at(a, c) {
                    self.set(a, c, cand);
                }
            }
        }
        debug_assert!(self.at(0, 0) >= Bound::ZERO_LE);
        true
    }

    /// Intersects this zone with another (same dimension), in place.
    ///
    /// Returns `false` if the intersection is empty.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersect(&mut self, other: &Dbm) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.is_empty() {
            return false;
        }
        if other.is_empty() {
            self.set_empty();
            return false;
        }
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if other.at(i, j) < self.at(i, j) {
                    self.set(i, j, other.at(i, j));
                    changed = true;
                }
            }
        }
        if changed {
            self.close()
        } else {
            true
        }
    }

    /// Returns the intersection of two zones, or `None` if it is empty.
    #[must_use]
    pub fn intersection(&self, other: &Dbm) -> Option<Dbm> {
        let mut z = self.clone();
        if z.intersect(other) {
            Some(z)
        } else {
            None
        }
    }

    /// Tests whether the two zones share at least one valuation.
    #[must_use]
    pub fn intersects(&self, other: &Dbm) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.is_empty() || other.is_empty() {
            return false;
        }
        // Quick refutation: a pair of opposite bounds summing below zero
        // already proves emptiness of the intersection.
        for i in 0..self.dim {
            for j in 0..self.dim {
                if self.at(i, j) + other.at(j, i) < Bound::ZERO_LE {
                    return false;
                }
            }
        }
        // Otherwise fall back to the exact check (closure of the pointwise
        // minimum), since longer alternating negative cycles are possible.
        self.intersection(other).is_some()
    }

    /// Delay (future) operator `Z↑`: removes all upper bounds on clocks,
    /// yielding every valuation reachable from `Z` by letting time pass.
    pub fn up(&mut self) {
        if self.is_empty() {
            return;
        }
        for i in 1..self.dim {
            self.set(i, 0, Bound::INF);
        }
        // The result is still canonical: any path i -> 0 -> j is not tighter
        // than before because row updates only relaxed entries in column 0.
    }

    /// Past operator `Z↓`: every valuation from which some delay leads into
    /// `Z` (keeping clocks non-negative).
    pub fn down(&mut self) {
        if self.is_empty() {
            return;
        }
        for j in 1..self.dim {
            let mut b = Bound::ZERO_LE;
            for i in 1..self.dim {
                if self.at(i, j) < b {
                    b = self.at(i, j);
                }
            }
            self.set(0, j, b);
        }
        // Canonical form is preserved (standard dbm_down argument).
    }

    /// Removes every constraint on clock `k` (`free`): the clock may take any
    /// non-negative value.
    ///
    /// # Panics
    ///
    /// Panics if `k` is `0` or out of range.
    pub fn free(&mut self, k: usize) {
        assert!(k > 0 && k < self.dim, "cannot free the reference clock");
        if self.is_empty() {
            return;
        }
        for i in 0..self.dim {
            if i != k {
                self.set(k, i, Bound::INF);
                self.set(i, k, self.at(i, 0));
            }
        }
        self.set(k, 0, Bound::INF);
        self.set(0, k, Bound::ZERO_LE);
    }

    /// Resets clock `k` to the non-negative integer value `v`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is `0`, out of range, or `v` is negative.
    pub fn reset(&mut self, k: usize, v: i32) {
        assert!(k > 0 && k < self.dim, "cannot reset the reference clock");
        assert!(v >= 0, "clocks cannot be reset to negative values");
        if self.is_empty() {
            return;
        }
        let pos = Bound::le(v);
        let neg = Bound::le(-v);
        for i in 0..self.dim {
            if i != k {
                self.set(k, i, pos + self.at(0, i));
                self.set(i, k, self.at(i, 0) + neg);
            }
        }
        self.set(k, k, Bound::ZERO_LE);
    }

    /// Copies the value of clock `src` into clock `dst` (`dst := src`).
    ///
    /// # Panics
    ///
    /// Panics if either clock is `0` or out of range.
    pub fn copy_clock(&mut self, dst: usize, src: usize) {
        assert!(dst > 0 && dst < self.dim && src > 0 && src < self.dim);
        if self.is_empty() || dst == src {
            return;
        }
        for i in 0..self.dim {
            if i != dst {
                self.set(dst, i, self.at(src, i));
                self.set(i, dst, self.at(i, src));
            }
        }
        self.set(dst, src, Bound::ZERO_LE);
        self.set(src, dst, Bound::ZERO_LE);
        self.set(dst, dst, Bound::ZERO_LE);
    }

    /// Compares this zone with another of the same dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn relation(&self, other: &Dbm) -> Relation {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        match (self.is_empty(), other.is_empty()) {
            (true, true) => return Relation::Equal,
            (true, false) => return Relation::Subset,
            (false, true) => return Relation::Superset,
            (false, false) => {}
        }
        let mut sub = true;
        let mut sup = true;
        for i in 0..self.dim {
            for j in 0..self.dim {
                let a = self.at(i, j);
                let b = other.at(i, j);
                if a > b {
                    sub = false;
                }
                if a < b {
                    sup = false;
                }
            }
        }
        match (sub, sup) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::Subset,
            (false, true) => Relation::Superset,
            (false, false) => Relation::Different,
        }
    }

    /// Returns `true` if every valuation of this zone belongs to `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Dbm) -> bool {
        matches!(self.relation(other), Relation::Equal | Relation::Subset)
    }

    /// Classical maximal-constant extrapolation (`k`-normalisation).
    ///
    /// `max[i]` is the largest constant clock `i` is ever compared against in
    /// the model (`max[0]` is ignored).  Bounds above `max[i]` become `∞`, and
    /// bounds below `−max[j]` are relaxed to `< −max[j]`, guaranteeing a
    /// finite number of distinct zones during forward exploration.
    ///
    /// # Panics
    ///
    /// Panics if `max.len() != self.dim()`.
    pub fn extrapolate_max_bounds(&mut self, max: &[i32]) {
        assert_eq!(max.len(), self.dim, "one max constant per clock required");
        if self.is_empty() {
            return;
        }
        let mut changed = false;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                let b = self.at(i, j);
                if b.is_inf() {
                    continue;
                }
                let m = b.constant().expect("finite bound");
                if i != 0 && m > max[i] {
                    self.set(i, j, Bound::INF);
                    changed = true;
                } else if j != 0 && m < -max[j] {
                    self.set(i, j, Bound::lt(-max[j]));
                    changed = true;
                }
            }
        }
        if changed {
            self.close();
        }
    }

    /// Checks whether a clock valuation belongs to the zone.
    ///
    /// The valuation is given *scaled by two* so that half-integer points are
    /// exact: `vals2[i]` is `2·value(x_i)`, with `vals2[0] == 0` for the
    /// reference clock.
    ///
    /// # Panics
    ///
    /// Panics if `vals2.len() != self.dim()`.
    #[must_use]
    pub fn contains_scaled(&self, vals2: &[i64]) -> bool {
        self.contains_at(vals2, 2)
    }

    /// Checks whether a clock valuation, given on a fixed-point grid of
    /// `1/scale` time units (`vals[i] = scale · value(x_i)`), belongs to the
    /// zone.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.dim()` or `scale` is not positive.
    #[must_use]
    pub fn contains_at(&self, vals: &[i64], scale: i64) -> bool {
        assert_eq!(vals.len(), self.dim, "one value per clock required");
        if self.is_empty() {
            return false;
        }
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i == j {
                    continue;
                }
                if !self.at(i, j).admits_at(vals[i] - vals[j], scale) {
                    return false;
                }
            }
        }
        true
    }

    /// Computes the window of delays `d ≥ 0` such that `v + d` belongs to this
    /// zone, for a concrete valuation `v` given on a fixed-point grid of
    /// `1/scale` time units.
    ///
    /// Returns `None` if no delay leads into the zone (in particular when the
    /// clock-difference constraints, which delays cannot change, are already
    /// violated).  The window bounds are expressed at the same scale.
    ///
    /// This is the primitive the test-execution engine uses to turn the
    /// symbolic "delay" moves of a winning strategy into concrete delays.
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.dim()` or `scale` is not positive.
    #[must_use]
    pub fn delay_window_at(&self, vals: &[i64], scale: i64) -> Option<DelayWindow> {
        assert_eq!(vals.len(), self.dim, "one value per clock required");
        assert!(scale > 0, "scale must be positive");
        if self.is_empty() {
            return None;
        }
        // Delays shift every real clock equally, so differences between real
        // clocks are invariant: they must already satisfy the zone.
        for i in 1..self.dim {
            for j in 1..self.dim {
                if i != j && !self.at(i, j).admits_at(vals[i] - vals[j], scale) {
                    return None;
                }
            }
        }
        let mut window = DelayWindow {
            min: 0,
            min_strict: false,
            max: None,
            max_strict: false,
        };
        for (i, &val) in vals.iter().enumerate().skip(1) {
            // x_i <= hi:  d <= scale*hi - v_i
            let up = self.at(i, 0);
            if let Some(m) = up.constant() {
                let cand = scale * i64::from(m) - val;
                let strict = up.is_strict();
                match window.max {
                    None => {
                        window.max = Some(cand);
                        window.max_strict = strict;
                    }
                    Some(cur) => {
                        if cand < cur || (cand == cur && strict) {
                            window.max = Some(cand);
                            window.max_strict = strict;
                        }
                    }
                }
            }
            // 0 - x_i <= m  means  x_i >= -m:  d >= -scale*m - v_i
            let low = self.at(0, i);
            if let Some(m) = low.constant() {
                let cand = -scale * i64::from(m) - val;
                let strict = low.is_strict();
                if cand > window.min || (cand == window.min && strict) {
                    window.min = cand;
                    window.min_strict = strict;
                }
            }
        }
        if window.is_empty() {
            return None;
        }
        Some(window)
    }

    /// Iterates over the finite, off-diagonal constraints of the zone as
    /// `(i, j, bound)` triples.
    pub fn iter_constraints(&self) -> impl Iterator<Item = (usize, usize, Bound)> + '_ {
        let dim = self.dim;
        (0..dim).flat_map(move |i| {
            (0..dim).filter_map(move |j| {
                if i == j {
                    return None;
                }
                let b = self.at(i, j);
                if b.is_inf() {
                    None
                } else {
                    Some((i, j, b))
                }
            })
        })
    }

    /// Formats the zone using caller-supplied clock names (index `0` is the
    /// reference clock and is rendered as `0`).
    #[must_use]
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> DisplayZone<'a> {
        DisplayZone { dbm: self, names }
    }
}

/// The set of delays leading a concrete valuation into a zone.
///
/// Produced by [`Dbm::delay_window_at`].  Bounds are expressed on the same
/// fixed-point grid as the queried valuation; `max == None` means the window
/// is unbounded above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DelayWindow {
    /// Smallest admissible delay (scaled); see `min_strict`.
    pub min: i64,
    /// Whether `min` itself is excluded (`>` rather than `≥`).
    pub min_strict: bool,
    /// Largest admissible delay (scaled), or `None` when unbounded.
    pub max: Option<i64>,
    /// Whether `max` itself is excluded (`<` rather than `≤`).
    pub max_strict: bool,
}

impl DelayWindow {
    /// Returns `true` if no delay at all is admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self.max {
            None => false,
            Some(max) => {
                max < self.min || (max == self.min && (self.max_strict || self.min_strict))
            }
        }
    }

    /// Picks a representative delay from the window on the same grid.
    ///
    /// Prefers the earliest admissible grid point: `min` when attainable,
    /// otherwise the next grid point (if still inside), otherwise `None`
    /// (the window is narrower than the grid).
    #[must_use]
    pub fn pick(&self) -> Option<i64> {
        let candidate = if self.min_strict {
            self.min + 1
        } else {
            self.min
        };
        match self.max {
            None => Some(candidate),
            Some(max) => {
                if candidate < max || (candidate == max && !self.max_strict) {
                    Some(candidate)
                } else {
                    None
                }
            }
        }
    }

    /// Picks the latest admissible grid point, or `None` if the window is
    /// unbounded above or narrower than the grid.
    #[must_use]
    pub fn pick_latest(&self) -> Option<i64> {
        let max = self.max?;
        let candidate = if self.max_strict { max - 1 } else { max };
        if candidate > self.min || (candidate == self.min && !self.min_strict) {
            Some(candidate)
        } else {
            None
        }
    }

    /// Checks whether a specific scaled delay lies inside the window.
    #[must_use]
    pub fn admits(&self, delay: i64) -> bool {
        if delay < self.min || (delay == self.min && self.min_strict) {
            return false;
        }
        match self.max {
            None => true,
            Some(max) => delay < max || (delay == max && !self.max_strict),
        }
    }
}

/// Helper returned by [`Dbm::display_with`]; formats a zone using clock names.
pub struct DisplayZone<'a> {
    dbm: &'a Dbm,
    names: &'a [String],
}

impl fmt::Display for DisplayZone<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dbm.is_empty() {
            return write!(f, "false");
        }
        let name = |i: usize| -> String {
            if i == 0 {
                "0".to_string()
            } else {
                self.names
                    .get(i - 1)
                    .cloned()
                    .unwrap_or_else(|| format!("x{i}"))
            }
        };
        let mut first = true;
        let mut non_trivial = false;
        for (i, j, b) in self.dbm.iter_constraints() {
            // Skip the implicit non-negativity constraints 0 - x <= 0.
            if i == 0 && b == Bound::ZERO_LE {
                continue;
            }
            non_trivial = true;
            if !first {
                write!(f, " && ")?;
            }
            first = false;
            let op = if b.is_strict() { "<" } else { "<=" };
            let m = b.constant().expect("finite bound");
            if j == 0 {
                write!(f, "{}{op}{m}", name(i))?;
            } else if i == 0 {
                write!(
                    f,
                    "{}{}{}",
                    name(j),
                    if b.is_strict() { ">" } else { ">=" },
                    -m
                )?;
            } else {
                write!(f, "{}-{}{op}{m}", name(i), name(j))?;
            }
        }
        if !non_trivial {
            write!(f, "true")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Dbm(dim={}, empty)", self.dim);
        }
        writeln!(f, "Dbm(dim={})", self.dim)?;
        for i in 0..self.dim {
            write!(f, "  ")?;
            for j in 0..self.dim {
                write!(f, "{:>8} ", format!("{}", self.at(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone_x_between(lo: i32, hi: i32) -> Dbm {
        // dim 2: one clock x.
        let mut z = Dbm::universe(2);
        assert!(z.constrain(0, 1, Bound::le(-lo)));
        assert!(z.constrain(1, 0, Bound::le(hi)));
        z
    }

    #[test]
    fn zero_zone_contains_only_origin() {
        let z = Dbm::zero(3);
        assert!(!z.is_empty());
        assert!(z.contains_scaled(&[0, 0, 0]));
        assert!(!z.contains_scaled(&[0, 2, 0]));
    }

    #[test]
    fn universe_contains_everything_nonnegative() {
        let z = Dbm::universe(3);
        assert!(z.contains_scaled(&[0, 0, 0]));
        assert!(z.contains_scaled(&[0, 100, 3]));
    }

    #[test]
    fn constrain_detects_emptiness() {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(1, 0, Bound::le(3))); // x <= 3
        assert!(!z.constrain(0, 1, Bound::lt(-3))); // x > 3 -> empty
        assert!(z.is_empty());
    }

    #[test]
    fn constrain_is_incrementally_canonical() {
        let mut z = Dbm::universe(3);
        z.constrain(1, 0, Bound::le(5)); // x <= 5
        z.constrain(2, 1, Bound::le(2)); // y - x <= 2
                                         // Canonicality implies y <= 7 is derived.
        assert_eq!(z.at(2, 0), Bound::le(7));
    }

    #[test]
    fn up_removes_upper_bounds_only() {
        let mut z = zone_x_between(1, 5);
        z.up();
        assert!(z.contains_scaled(&[0, 200]));
        assert!(!z.contains_scaled(&[0, 0])); // x >= 1 kept
    }

    #[test]
    fn up_preserves_differences() {
        // x = y = 0 delayed: x == y maintained.
        let mut z = Dbm::zero(3);
        z.up();
        assert!(z.contains_scaled(&[0, 6, 6]));
        assert!(!z.contains_scaled(&[0, 6, 4]));
    }

    #[test]
    fn down_adds_time_predecessors() {
        let mut z = zone_x_between(4, 5);
        z.down();
        assert!(z.contains_scaled(&[0, 0]));
        assert!(z.contains_scaled(&[0, 9])); // 4.5
        assert!(!z.contains_scaled(&[0, 11])); // 5.5 > 5
    }

    #[test]
    fn down_respects_clock_differences() {
        // Zone: x in [4,5], y = x - 3 (so y in [1,2]).
        let mut z = Dbm::universe(3);
        z.constrain(0, 1, Bound::le(-4));
        z.constrain(1, 0, Bound::le(5));
        z.constrain(1, 2, Bound::le(3));
        z.constrain(2, 1, Bound::le(-3));
        z.down();
        // Going back in time keeps x - y == 3 but y >= 0, so x >= 3.
        assert!(z.contains_scaled(&[0, 6, 0]));
        assert!(!z.contains_scaled(&[0, 4, 0])); // would need y = -1 at some point? No: x=2,y=-1 invalid, and x-y must be 3.
        assert!(!z.contains_scaled(&[0, 6, 2])); // x - y != 3
    }

    #[test]
    fn reset_sets_clock_to_value() {
        let mut z = zone_x_between(2, 8);
        let mut z3 = Dbm::universe(3);
        z3.constrain(0, 1, Bound::le(-2));
        z3.constrain(1, 0, Bound::le(8));
        z3.reset(2, 0);
        assert!(z3.contains_scaled(&[0, 10, 0]));
        assert!(!z3.contains_scaled(&[0, 10, 2]));
        // Resetting to a non-zero value.
        z3.reset(2, 3);
        assert!(z3.contains_scaled(&[0, 10, 6]));
        assert!(!z3.contains_scaled(&[0, 10, 0]));
        // One-clock sanity.
        z.reset(1, 0);
        assert!(z.contains_scaled(&[0, 0]));
        assert!(!z.contains_scaled(&[0, 4]));
    }

    #[test]
    fn free_removes_all_constraints_on_clock() {
        let mut z = Dbm::zero(3);
        z.free(2);
        assert!(z.contains_scaled(&[0, 0, 14]));
        assert!(!z.contains_scaled(&[0, 2, 14])); // x still 0
    }

    #[test]
    fn copy_clock_equates_clocks() {
        let mut z = Dbm::universe(3);
        z.constrain(1, 0, Bound::le(5));
        z.constrain(0, 1, Bound::le(-5)); // x == 5
        z.copy_clock(2, 1);
        assert!(z.contains_scaled(&[0, 10, 10]));
        assert!(!z.contains_scaled(&[0, 10, 8]));
    }

    #[test]
    fn relation_detects_subset_superset() {
        let small = zone_x_between(2, 3);
        let big = zone_x_between(1, 5);
        assert_eq!(small.relation(&big), Relation::Subset);
        assert_eq!(big.relation(&small), Relation::Superset);
        assert_eq!(big.relation(&big), Relation::Equal);
        let other = zone_x_between(4, 9);
        assert_eq!(small.relation(&other), Relation::Different);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
    }

    #[test]
    fn intersection_and_intersects_agree() {
        let a = zone_x_between(1, 5);
        let b = zone_x_between(4, 9);
        let c = zone_x_between(7, 9);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let ab = a.intersection(&b).expect("non-empty");
        assert!(ab.contains_scaled(&[0, 9])); // 4.5
        assert!(!ab.contains_scaled(&[0, 2]));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn extrapolation_widens_large_bounds() {
        let mut z = zone_x_between(100, 200);
        z.extrapolate_max_bounds(&[0, 10]);
        // Above the max constant the zone must be widened upward to infinity
        // and the lower bound relaxed to "> 10".
        assert!(z.contains_scaled(&[0, 1_000_000]));
        assert!(z.contains_scaled(&[0, 21])); // 10.5 > 10
        assert!(!z.contains_scaled(&[0, 20])); // 10 not admitted (strict)
    }

    #[test]
    fn extrapolation_is_identity_below_max() {
        let z0 = zone_x_between(2, 7);
        let mut z = z0.clone();
        z.extrapolate_max_bounds(&[0, 10]);
        assert_eq!(z.relation(&z0), Relation::Equal);
    }

    #[test]
    fn delay_window_basic() {
        let z = zone_x_between(3, 5);
        // From x = 1 (scale 2), delays in [4, 8] scaled (i.e. [2, 4] units).
        let w = z.delay_window_at(&[0, 2], 2).expect("reachable by delay");
        assert_eq!(w.min, 4);
        assert_eq!(w.max, Some(8));
        assert!(!w.min_strict && !w.max_strict);
        assert_eq!(w.pick(), Some(4));
        assert_eq!(w.pick_latest(), Some(8));
        assert!(w.admits(6));
        assert!(!w.admits(9));
        // From x = 6 the zone is already behind: no delay works.
        assert!(z.delay_window_at(&[0, 12], 2).is_none());
    }

    #[test]
    fn delay_window_respects_difference_constraints() {
        // Zone: x - y == 3, x <= 5.
        let mut z = Dbm::universe(3);
        z.constrain(1, 2, Bound::le(3));
        z.constrain(2, 1, Bound::le(-3));
        z.constrain(1, 0, Bound::le(5));
        // x = 1, y = 0: difference 1 != 3, unreachable by pure delay.
        assert!(z.delay_window_at(&[0, 2, 0], 2).is_none());
        // x = 3, y = 0: difference ok, delay window [0, 4] scaled.
        let w = z.delay_window_at(&[0, 6, 0], 2).expect("reachable");
        assert_eq!(w.min, 0);
        assert_eq!(w.max, Some(4));
    }

    #[test]
    fn delay_window_strict_bounds() {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::lt(-2)); // x > 2
        z.constrain(1, 0, Bound::lt(3)); // x < 3
                                         // From x = 0 at scale 4: delays in (8, 12) scaled.
        let w = z.delay_window_at(&[0, 0], 4).expect("reachable");
        assert_eq!(w.min, 8);
        assert!(w.min_strict);
        assert_eq!(w.max, Some(12));
        assert!(w.max_strict);
        assert_eq!(w.pick(), Some(9));
        assert_eq!(w.pick_latest(), Some(11));
        // Unbounded-above window.
        let mut open = Dbm::universe(2);
        open.constrain(0, 1, Bound::le(-1));
        let w = open.delay_window_at(&[0, 0], 4).expect("reachable");
        assert_eq!(w.max, None);
        assert_eq!(w.pick(), Some(4));
        assert_eq!(w.pick_latest(), None);
    }

    #[test]
    fn contains_at_scale_matches_scaled() {
        let z = zone_x_between(1, 3);
        assert!(z.contains_at(&[0, 8], 4)); // x = 2
        assert!(!z.contains_at(&[0, 16], 4)); // x = 4
        assert_eq!(z.contains_scaled(&[0, 4]), z.contains_at(&[0, 8], 4));
    }

    #[test]
    fn display_uses_clock_names() {
        let mut z = Dbm::universe(2);
        z.constrain(0, 1, Bound::le(-1));
        z.constrain(1, 0, Bound::lt(4));
        let names = vec!["x".to_string()];
        let s = z.display_with(&names).to_string();
        assert!(s.contains("x<4"), "got {s}");
        assert!(s.contains("x>=1"), "got {s}");
    }

    #[test]
    fn equality_and_hash_on_canonical_forms() {
        use std::collections::HashSet;
        let a = zone_x_between(1, 5);
        let mut b = Dbm::universe(2);
        b.constrain(1, 0, Bound::le(5));
        b.constrain(0, 1, Bound::le(-1));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
