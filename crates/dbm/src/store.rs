//! Hash-consed zone interning for a single solve.
//!
//! The solver engines keep re-deriving the same canonical DBMs — the
//! `subsumed_zones` counters show most offered zones were already seen. A
//! [`ZoneStore`] interns each distinct canonical matrix once and hands out a
//! cheap `Copy` handle ([`ZoneId`]); passed lists become id vectors
//! ([`ZoneSet`]), zone equality becomes id equality, and pairwise
//! subsumption checks ([`ZoneStore::relation`]) are memoized per id pair.
//!
//! Interned zones are stored authoritatively in minimal-constraint form
//! ([`crate::MinimalZone`]) with a canonical-matrix cache that
//! [`ZoneStore::compact`] can drop and [`ZoneStore::ensure_cached`] rebuilds
//! bit-identically on demand.
//!
//! The store is deliberately *not* shared across threads: engines intern
//! only in their sequential phases (offer/merge), so determinism across
//! `--jobs N` is preserved by construction.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use crate::dbm::{Dbm, Relation};
use crate::federation::Federation;
use crate::minimal::MinimalZone;

/// Cheap `Copy` handle to a zone interned in a [`ZoneStore`].
///
/// Ids are dense and allocated in interning order, so they are deterministic
/// for a deterministic offer sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(u32);

impl ZoneId {
    /// The dense index of this id (0-based interning order).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct Entry {
    minimal: MinimalZone,
    canonical: Option<Dbm>,
}

/// Per-solve interning arena for canonical DBMs.
pub struct ZoneStore {
    dim: usize,
    entries: Vec<Entry>,
    /// Dbm-hash -> candidate entry indices (collisions resolved by equality).
    index: HashMap<u64, Vec<u32>>,
    /// Memoized `zone(a).relation(zone(b))` results.
    relations: HashMap<(u32, u32), Relation>,
    hits: usize,
    bytes_saved: usize,
}

fn dbm_hash(zone: &Dbm) -> u64 {
    let mut h = DefaultHasher::new();
    zone.hash(&mut h);
    h.finish()
}

impl ZoneStore {
    /// Creates an empty store for zones of the given dimension.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        ZoneStore {
            dim,
            entries: Vec::new(),
            index: HashMap::new(),
            relations: HashMap::new(),
            hits: 0,
            bytes_saved: 0,
        }
    }

    /// Zone dimension this store interns.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct zones interned so far.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been interned yet.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many [`ZoneStore::intern`] calls found the zone already present.
    #[inline]
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Bytes saved by keeping interned zones in minimal-constraint form
    /// instead of full `n²` matrices (counted once per distinct zone).
    #[inline]
    #[must_use]
    pub fn bytes_saved(&self) -> usize {
        self.bytes_saved
    }

    /// Interns a canonical zone; returns its id and whether it was new
    /// (i.e. the store took a deep copy).
    pub fn intern(&mut self, zone: &Dbm) -> (ZoneId, bool) {
        debug_assert_eq!(zone.dim(), self.dim, "dimension mismatch");
        let key = dbm_hash(zone);
        if let Some(candidates) = self.index.get(&key) {
            let candidates = candidates.clone();
            for c in candidates {
                self.ensure_cached(ZoneId(c));
                if self.entries[c as usize].canonical.as_ref() == Some(zone) {
                    self.hits += 1;
                    return (ZoneId(c), false);
                }
            }
        }
        let minimal = zone.minimize();
        let full = self.dim * self.dim * std::mem::size_of::<crate::Bound>();
        self.bytes_saved += full.saturating_sub(minimal.byte_size());
        let id = self.entries.len() as u32;
        self.entries.push(Entry {
            minimal,
            canonical: Some(zone.clone()),
        });
        self.index.entry(key).or_default().push(id);
        (ZoneId(id), true)
    }

    /// The canonical matrix for an id. Panics if the cache was dropped —
    /// call [`ZoneStore::ensure_cached`] first after a `compact`.
    #[inline]
    #[must_use]
    pub fn zone(&self, id: ZoneId) -> &Dbm {
        self.entries[id.index()]
            .canonical
            .as_ref()
            .expect("canonical cache dropped; call ensure_cached")
    }

    /// The minimal-constraint form for an id.
    #[inline]
    #[must_use]
    pub fn minimal(&self, id: ZoneId) -> &MinimalZone {
        &self.entries[id.index()].minimal
    }

    /// Rebuilds the canonical cache for an id if it was dropped.
    pub fn ensure_cached(&mut self, id: ZoneId) {
        let entry = &mut self.entries[id.index()];
        if entry.canonical.is_none() {
            entry.canonical = Some(entry.minimal.rehydrate());
        }
    }

    /// Drops every canonical cache, keeping only the minimal forms.
    /// Subsequent reads rehydrate (bit-identically) on demand.
    pub fn compact(&mut self) {
        for entry in &mut self.entries {
            entry.canonical = None;
        }
    }

    /// Memoized `zone(a).relation(zone(b))`.
    pub fn relation(&mut self, a: ZoneId, b: ZoneId) -> Relation {
        if a == b {
            return Relation::Equal;
        }
        let key = (a.0, b.0);
        if let Some(&r) = self.relations.get(&key) {
            return r;
        }
        self.ensure_cached(a);
        self.ensure_cached(b);
        let r = self.zone(a).relation(self.zone(b));
        let mirror = match r {
            Relation::Subset => Relation::Superset,
            Relation::Superset => Relation::Subset,
            other => other,
        };
        self.relations.insert(key, r);
        self.relations.insert((b.0, a.0), mirror);
        r
    }
}

/// A passed list held as interned ids, mirroring
/// [`Federation::insert_subsumed`] verdict-for-verdict and member-for-member.
///
/// The extra `ever` set exploits monotone coverage: once a zone has been
/// offered, the union only ever grows, so re-offering the same interned id
/// can be rejected in O(1) without re-running the subsumption sweep.
#[derive(Default)]
pub struct ZoneSet {
    ids: Vec<ZoneId>,
    ever: HashSet<ZoneId>,
}

impl ZoneSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        ZoneSet::default()
    }

    /// Current member count (non-subsumed zones).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the set denotes the empty union.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member ids in insertion (federation member) order.
    #[inline]
    #[must_use]
    pub fn ids(&self) -> &[ZoneId] {
        &self.ids
    }

    /// The members as borrowed canonical matrices.
    pub fn zones<'a>(&'a self, store: &'a ZoneStore) -> impl Iterator<Item = &'a Dbm> + Clone + 'a {
        self.ids.iter().map(move |&id| store.zone(id))
    }

    /// Offers a zone, mirroring [`Federation::insert_subsumed`] exactly:
    /// returns `false` for empty or already-covered zones, otherwise adds
    /// the zone, drops members it subsumes, and returns `true`.
    pub fn insert(&mut self, store: &mut ZoneStore, zone: &Dbm) -> bool {
        if zone.is_empty() {
            return false;
        }
        let (id, _) = store.intern(zone);
        if self.ever.contains(&id) {
            // Monotone coverage: this exact zone was offered before, so the
            // union already covers it — same verdict the full sweep gives.
            return false;
        }
        self.ever.insert(id);
        // includes_zone sweep, verbatim against the interned members.
        let mut remainder = vec![zone.clone()];
        for &m in &self.ids {
            let covering = store.zone(m);
            if remainder.iter().all(|piece| !piece.intersects(covering)) {
                continue;
            }
            remainder = remainder
                .iter()
                .flat_map(|piece| crate::federation::zone_subtract(piece, covering))
                .collect();
            if remainder.is_empty() {
                return false;
            }
        }
        // add_zone: the early subset return cannot fire (a single member
        // covering `zone` would have emptied the remainder above); drop
        // members the new zone subsumes, then append.
        self.ids
            .retain(|&m| !matches!(store.relation(m, id), Relation::Subset | Relation::Equal));
        self.ids.push(id);
        true
    }

    /// Materializes the members into an owned [`Federation`] with the exact
    /// member sequence the plain (non-interned) path would hold.
    #[must_use]
    pub fn to_federation(&self, store: &ZoneStore) -> Federation {
        Federation::from_zones(
            store.dim(),
            self.ids.iter().map(|&id| store.zone(id).clone()),
        )
    }

    /// Set equality against another `ZoneSet` of the same store: id-set
    /// comparison, no zone closures.
    #[must_use]
    pub fn set_equals_interned(&self, other: &ZoneSet) -> bool {
        if self.ids == other.ids {
            return true;
        }
        let mut a = self.ids.clone();
        let mut b = other.ids.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::Bound;

    fn interval(dim: usize, clock: usize, lo: i32, hi: i32) -> Dbm {
        let mut z = Dbm::universe(dim);
        assert!(z.constrain(0, clock, Bound::le(-lo)));
        assert!(z.constrain(clock, 0, Bound::le(hi)));
        z
    }

    #[test]
    fn intern_dedups_and_counts_hits() {
        let mut store = ZoneStore::new(3);
        let a = interval(3, 1, 0, 5);
        let b = interval(3, 1, 2, 7);
        let (ia, new_a) = store.intern(&a);
        let (ib, new_b) = store.intern(&b);
        let (ia2, again) = store.intern(&a.clone());
        assert!(new_a && new_b && !again);
        assert_eq!(ia, ia2);
        assert_ne!(ia, ib);
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits(), 1);
        assert!(store.bytes_saved() > 0);
    }

    #[test]
    fn compact_then_read_rehydrates_bit_identically() {
        let mut store = ZoneStore::new(4);
        let mut z = interval(4, 1, 1, 9);
        z.constrain(2, 1, Bound::lt(3));
        let (id, _) = store.intern(&z);
        store.compact();
        store.ensure_cached(id);
        assert_eq!(store.zone(id), &z);
        // Interning after a compact still finds the existing entry.
        let (id2, fresh) = store.intern(&z);
        assert_eq!(id, id2);
        assert!(!fresh);
    }

    #[test]
    fn relation_is_memoized_with_mirror() {
        let mut store = ZoneStore::new(2);
        let small = interval(2, 1, 2, 3);
        let big = interval(2, 1, 0, 5);
        let (s, _) = store.intern(&small);
        let (b, _) = store.intern(&big);
        assert_eq!(store.relation(s, b), Relation::Subset);
        assert_eq!(store.relation(b, s), Relation::Superset);
        assert_eq!(store.relation(s, s), Relation::Equal);
    }

    /// The ZoneSet must agree with Federation::insert_subsumed on every
    /// verdict and keep the identical member sequence.
    #[test]
    fn zone_set_mirrors_insert_subsumed() {
        let mut store = ZoneStore::new(3);
        let mut set = ZoneSet::new();
        let mut fed = Federation::empty(3);
        let offers = vec![
            interval(3, 1, 0, 5),
            interval(3, 1, 2, 3),  // subsumed
            interval(3, 1, 0, 5),  // duplicate
            interval(3, 2, 1, 4),  // incomparable
            interval(3, 1, 0, 9),  // subsumes the first
            interval(3, 1, 2, 3),  // still subsumed
            interval(3, 2, 0, 10), // subsumes the clock-2 member
        ];
        for zone in &offers {
            let expect = fed.insert_subsumed(zone.clone());
            let got = set.insert(&mut store, zone);
            assert_eq!(got, expect, "verdict diverged on {zone:?}");
            assert_eq!(set.to_federation(&store), fed, "members diverged");
        }
        assert_eq!(set.len(), fed.len());
    }

    #[test]
    fn empty_zone_is_rejected_without_interning() {
        let mut store = ZoneStore::new(2);
        let mut set = ZoneSet::new();
        let mut empty = Dbm::universe(2);
        assert!(!empty.constrain(1, 0, Bound::lt(0)));
        assert!(!set.insert(&mut store, &empty));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn interned_set_equality_ignores_member_order() {
        let mut store = ZoneStore::new(3);
        let a = interval(3, 1, 0, 3);
        let b = interval(3, 2, 5, 9);
        let mut s1 = ZoneSet::new();
        let mut s2 = ZoneSet::new();
        s1.insert(&mut store, &a);
        s1.insert(&mut store, &b);
        s2.insert(&mut store, &b);
        s2.insert(&mut store, &a);
        assert!(s1.set_equals_interned(&s2));
        let mut s3 = ZoneSet::new();
        s3.insert(&mut store, &a);
        assert!(!s1.set_equals_interned(&s3));
    }
}
