//! Property-based soundness check (Theorem 10 in practice): whatever
//! deterministic output schedule a *conformant* implementation picks inside
//! the windows the specification allows, strategy-driven test execution never
//! reports `fail`, and always reaches the purpose.

use proptest::prelude::*;
use std::sync::OnceLock;
use tiga_models::{coffee_machine, smart_light};
use tiga_testing::{OutputPolicy, SimulatedIut, TestConfig, TestHarness, Verdict};

fn light_harness() -> &'static TestHarness {
    static HARNESS: OnceLock<TestHarness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        TestHarness::synthesize(
            smart_light::product().expect("product builds"),
            smart_light::plant().expect("plant builds"),
            smart_light::PURPOSE_BRIGHT,
            TestConfig::default(),
        )
        .expect("enforceable")
    })
}

fn coffee_harness() -> &'static TestHarness {
    static HARNESS: OnceLock<TestHarness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        TestHarness::synthesize(
            coffee_machine::product().expect("product builds"),
            coffee_machine::plant().expect("plant builds"),
            coffee_machine::PURPOSE_COFFEE,
            TestConfig::default(),
        )
        .expect("enforceable")
    })
}

fn arb_policy() -> impl Strategy<Value = OutputPolicy> {
    prop_oneof![
        Just(OutputPolicy::Eager),
        Just(OutputPolicy::Lazy),
        (0..8i64).prop_map(OutputPolicy::Offset),
        any::<u64>().prop_map(|seed| OutputPolicy::Jittery { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Smart Light: conformant implementations always pass `A<> IUT.Bright`.
    #[test]
    fn conformant_smart_light_never_fails(policy in arb_policy()) {
        let harness = light_harness();
        let plant = smart_light::plant().expect("plant builds");
        let mut iut = SimulatedIut::new("light", plant, harness.config().scale, policy);
        let report = harness.execute(&mut iut).expect("executes");
        prop_assert_eq!(
            report.verdict.clone(),
            Verdict::Pass,
            "policy {:?}, trace {}",
            policy,
            report.trace.display(report.scale)
        );
        // The test is targeted: it must reach Bright, so the trace ends with
        // the bright! output and is reasonably short.
        prop_assert!(report.trace.action_count() <= 20);
    }

    /// Coffee machine: conformant implementations always pass
    /// `A<> Machine.Served`.
    #[test]
    fn conformant_coffee_machine_never_fails(policy in arb_policy()) {
        let harness = coffee_harness();
        let plant = coffee_machine::plant().expect("plant builds");
        let mut iut = SimulatedIut::new("machine", plant, harness.config().scale, policy);
        let report = harness.execute(&mut iut).expect("executes");
        prop_assert_eq!(report.verdict.clone(), Verdict::Pass, "policy {:?}", policy);
    }

    /// Implementations that systematically answer later than the
    /// specification allows are always caught (a guaranteed-fail companion
    /// property: the verdict is FAIL, never a false PASS).
    #[test]
    fn sluggish_coffee_machine_always_fails(extra in 2..6i64, policy_seed in any::<u64>()) {
        use tiga_model::{ClockConstraint, CmpOp};
        use tiga_testing::rebuild_system;

        let harness = coffee_harness();
        let plant = coffee_machine::plant().expect("plant builds");
        let x = plant.clock_by_name("x").expect("clock");
        let sluggish = rebuild_system(
            &plant,
            |_, _, l| {
                let mut l = l.clone();
                if l.name == "Brewing" {
                    l.invariant =
                        vec![ClockConstraint::new(x, CmpOp::Le, coffee_machine::BREW_MAX + extra)];
                }
                l
            },
            |_, _, e| Some(e.clone()),
        )
        .expect("rebuild");
        // Lazy or sufficiently delayed scheduling makes the fault observable
        // on this run; eager scheduling would mask it (the fault is about
        // *allowed* lateness), so we only quantify over schedules that
        // exercise it.  Offsets are expressed in ticks.
        let policy = if policy_seed % 2 == 0 {
            OutputPolicy::Lazy
        } else {
            OutputPolicy::Offset((coffee_machine::BREW_MAX + extra) * harness.config().scale)
        };
        let mut iut = SimulatedIut::new("sluggish", sluggish, harness.config().scale, policy);
        let report = harness.execute(&mut iut).expect("executes");
        prop_assert!(
            report.verdict.is_fail(),
            "expected FAIL, got {} under {:?}",
            report.verdict,
            policy
        );
    }
}
