//! End-to-end execution of *time-bounded* test purposes
//! (`control: A<><=T φ` and `control: A[]<=T φ`).
//!
//! * a bounded reachability purpose synthesizes through [`TestHarness`] when
//!   the deadline is generous enough, and the controller — playing on the
//!   `#t`-augmented product — drives conformant implementations to `Pass`
//!   within the deadline;
//! * a deadline tighter than the plant's worst-case response time makes the
//!   same purpose `NotEnforceable`;
//! * a run that exhausts the purpose's bound without reaching the goal ends
//!   `Inconclusive(BoundExceeded)` — attributed to the purpose's deadline,
//!   not the executor's own `max_ticks` budget, which keeps its
//!   `TimeBudgetExhausted` attribution when it is the tighter of the two;
//! * a bounded safety purpose passes at the deadline with `φ` still holding
//!   even when the unbounded purpose is unenforceable, and a violation at
//!   exactly `T` still fails (the bound is weak).

use tiga_dbm::Dbm;
use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, System, SystemBuilder};
use tiga_solver::{Decision, Strategy, StrategyRule};
use tiga_tctl::TestPurpose;
use tiga_testing::{
    FailReason, HarnessError, InconclusiveReason, OutputPolicy, SimulatedIut, TestConfig,
    TestExecutor, TestHarness, Verdict,
};

/// Plant: Idle --kick?--> Busy (inv x <= 3) --reply!{x >= 1}--> Done, closed
/// with a User that kicks and listens.  `A<> Plant.Done` is winning; the
/// worst-case conformant reply arrives at x = 3, so the bounded variant
/// `A<><=T Plant.Done` is winning iff `T >= 3`.
fn responder_product() -> System {
    let mut b = SystemBuilder::new("responder");
    let x = b.clock("x").unwrap();
    let kick = b.input_channel("kick").unwrap();
    let reply = b.output_channel("reply").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let idle = plant.location("Idle").unwrap();
    let busy = plant.location("Busy").unwrap();
    let done = plant.location("Done").unwrap();
    plant.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
    plant.add_edge(EdgeBuilder::new(idle, busy).input(kick).reset(x));
    plant.add_edge(
        EdgeBuilder::new(busy, done)
            .output(reply)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).output(kick));
    user.add_edge(EdgeBuilder::new(u, u).input(reply));
    b.add_automaton(user.build().unwrap()).unwrap();
    b.build().unwrap()
}

/// Plant: Idle (inv x <= 8) --boom!{x >= 5}--> BadLoc, with no controllable
/// escape.  Unbounded `A[] not Plant.BadLoc` is losing (the boom is forced),
/// but the earliest violation is at time 5, so the weak-bounded variant
/// `A[]<=T not Plant.BadLoc` is winning iff `T <= 4`.
fn late_boom_product() -> System {
    let mut b = SystemBuilder::new("late-boom");
    let x = b.clock("x").unwrap();
    let boom = b.output_channel("boom").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let idle = plant.location("Idle").unwrap();
    let bad = plant.location("BadLoc").unwrap();
    plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 8)]);
    plant.add_edge(
        EdgeBuilder::new(idle, bad)
            .output(boom)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 5)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).input(boom));
    b.add_automaton(user.build().unwrap()).unwrap();
    b.build().unwrap()
}

/// A maximally permissive specification over `boom`: the tioco monitor never
/// fires, so failures are attributable to the purpose check alone.
fn permissive_boom_spec() -> System {
    let mut b = SystemBuilder::new("permissive");
    let boom = b.output_channel("boom").unwrap();
    let mut spec = AutomatonBuilder::new("Spec");
    let s = spec.location("S").unwrap();
    spec.add_edge(EdgeBuilder::new(s, s).output(boom));
    b.add_automaton(spec.build().unwrap()).unwrap();
    b.build().unwrap()
}

fn small_budgets() -> TestConfig {
    TestConfig {
        max_steps: 200,
        max_ticks: 2_000,
        ..TestConfig::default()
    }
}

/// A wait-only strategy over the `#t`-augmented product (one extra trailing
/// clock dimension), for driving the executor off the synthesized path.
fn augmented_wait_only(product: &System) -> Strategy {
    let mut strategy = Strategy::new(product.dim() + 1);
    strategy.add_rule(
        product.initial_discrete(),
        StrategyRule {
            rank: 0,
            zone: Dbm::universe(product.dim() + 1),
            decision: Decision::Wait,
        },
    );
    strategy
}

#[test]
fn bounded_reachability_passes_within_the_deadline() {
    let product = responder_product();
    let harness = TestHarness::synthesize(
        product.clone(),
        product.clone(),
        "control: A<><=5 Plant.Done",
        small_budgets(),
    )
    .expect("T = 5 exceeds the worst-case response time of 3");
    assert_eq!(harness.purpose().bound, Some(5));
    for policy in [OutputPolicy::Eager, OutputPolicy::Lazy] {
        let mut iut = SimulatedIut::new("conformant", product.clone(), 4, policy);
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "policy {policy:?}: a conformant run must reach Done within the bound"
        );
        assert!(
            report.trace.total_ticks() <= 5 * report.scale,
            "policy {policy:?}: the run must finish within T = 5 time units, took {} ticks",
            report.trace.total_ticks()
        );
    }
}

#[test]
fn too_tight_a_bound_is_not_enforceable() {
    let product = responder_product();
    let err = TestHarness::synthesize(
        product.clone(),
        product,
        "control: A<><=2 Plant.Done",
        small_budgets(),
    )
    .unwrap_err();
    assert!(
        matches!(err, HarnessError::NotEnforceable { .. }),
        "a lazy implementation may reply only at x = 3 > T = 2: {err}"
    );
}

#[test]
fn bound_exhaustion_is_attributed_to_the_bound() {
    // A wait-only strategy never kicks the plant, so the goal is out of
    // reach and the run idles until a budget expires.  When the purpose's
    // bound is the tighter budget the verdict names it; when the executor's
    // own `max_ticks` is tighter the classic attribution is kept.
    let product = responder_product();
    let strategy = augmented_wait_only(&product);
    let mut iut = SimulatedIut::new("quiet", product.clone(), 4, OutputPolicy::Lazy);

    let bounded = TestPurpose::parse("control: A<><=3 Plant.Done", &product).unwrap();
    let executor =
        TestExecutor::new(&product, &product, &strategy, &bounded, small_budgets()).unwrap();
    let report = executor.run(&mut iut).expect("executes");
    assert_eq!(
        report.verdict,
        Verdict::Inconclusive(InconclusiveReason::BoundExceeded { bound: 3 }),
        "the purpose's own deadline expired first"
    );
    assert_eq!(
        report.trace.total_ticks(),
        3 * report.scale,
        "the run must stop waiting exactly at the bound"
    );

    // Bound far beyond max_ticks: the executor budget is the tighter one.
    let distant = TestPurpose::parse("control: A<><=600 Plant.Done", &product).unwrap();
    let executor =
        TestExecutor::new(&product, &product, &strategy, &distant, small_budgets()).unwrap();
    let report = executor.run(&mut iut).expect("executes");
    assert_eq!(
        report.verdict,
        Verdict::Inconclusive(InconclusiveReason::TimeBudgetExhausted),
        "max_ticks = 2000 < T·scale = 2400 expired first"
    );
}

#[test]
fn bounded_safety_passes_at_the_deadline() {
    let product = late_boom_product();
    // The unbounded purpose is hopeless: the boom is forced by the invariant.
    let err = TestHarness::synthesize(
        product.clone(),
        product.clone(),
        "control: A[] not Plant.BadLoc",
        small_budgets(),
    )
    .unwrap_err();
    assert!(matches!(err, HarnessError::NotEnforceable { .. }));

    // Bounded at T = 4 < earliest violation time 5, it synthesizes and the
    // run passes at the deadline with the predicate still holding.
    let harness = TestHarness::synthesize(
        product.clone(),
        product.clone(),
        "control: A[]<=4 not Plant.BadLoc",
        small_budgets(),
    )
    .expect("no violation can occur by time 4");
    for policy in [OutputPolicy::Eager, OutputPolicy::Lazy] {
        let mut iut = SimulatedIut::new("conformant", product.clone(), 4, policy);
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "policy {policy:?}: the deadline is reached strictly before the boom window"
        );
        assert!(
            report.trace.total_ticks() <= 4 * report.scale,
            "policy {policy:?}: a bounded safety run ends at its deadline, took {} ticks",
            report.trace.total_ticks()
        );
    }
}

#[test]
fn safety_violation_at_exactly_the_bound_fails() {
    // The bound is weak: `A[]<=5` still covers a violation at exactly time 5.
    // An eager implementation fires boom! the moment the guard opens (x = 5),
    // which is exactly the deadline; the permissive spec keeps the monitor
    // quiet, so the purpose check must report the violation instead of the
    // deadline pass.
    let product = late_boom_product();
    let spec = permissive_boom_spec();
    let purpose = TestPurpose::parse("control: A[]<=5 not Plant.BadLoc", &product).unwrap();
    let strategy = augmented_wait_only(&product);
    let executor =
        TestExecutor::new(&product, &spec, &strategy, &purpose, small_budgets()).unwrap();
    let mut iut = SimulatedIut::new("deviant", product.clone(), 4, OutputPolicy::Eager);
    let report = executor.run(&mut iut).expect("executes");
    match report.verdict {
        Verdict::Fail(FailReason::SafetyViolation {
            ref state,
            at_ticks,
        }) => {
            assert!(state.contains("BadLoc"), "unexpected state: {state}");
            assert_eq!(
                at_ticks,
                5 * report.scale,
                "the violation lands exactly on the deadline"
            );
        }
        other => panic!("expected Fail(SafetyViolation), got {other}"),
    }
}
