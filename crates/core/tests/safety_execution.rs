//! End-to-end execution of *safety* test cases (`control: A[] φ`).
//!
//! * a winning safety purpose synthesizes through [`TestHarness`] and the
//!   safe controller passes against conformant implementations — the run is
//!   non-terminating and ends by budget exhaustion, which for safety is a
//!   `Pass`;
//! * an unenforceable safety purpose is rejected as `NotEnforceable`;
//! * entering a `¬φ` state mid-run yields `Fail(SafetyViolation)` — pinned
//!   with a deliberately unsafe (wait-only) hand-made strategy and a
//!   permissive specification, the only way to smuggle the product into a
//!   bad state past the tioco monitor.

use tiga_dbm::Dbm;
use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, System, SystemBuilder};
use tiga_solver::{Decision, Strategy, StrategyRule};
use tiga_tctl::TestPurpose;
use tiga_testing::{
    FailReason, HarnessError, OutputPolicy, SimulatedIut, TestConfig, TestExecutor, TestHarness,
    Verdict,
};

/// Plant: Idle (inv x <= 3) --boom!{x >= 2}--> BadLoc, with a controllable
/// escape save?{x <= 2} into a safe sink.  `A[] not Plant.BadLoc` is
/// winning: play save? before the boom window opens.
fn escapable_product() -> System {
    let mut b = SystemBuilder::new("escapable");
    let x = b.clock("x").unwrap();
    let boom = b.output_channel("boom").unwrap();
    let save = b.input_channel("save").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let idle = plant.location("Idle").unwrap();
    let bad = plant.location("BadLoc").unwrap();
    let safe = plant.location("SafeLoc").unwrap();
    plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
    plant.add_edge(
        EdgeBuilder::new(idle, bad)
            .output(boom)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2)),
    );
    plant.add_edge(
        EdgeBuilder::new(idle, safe)
            .input(save)
            .guard_clock(ClockConstraint::new(x, CmpOp::Le, 2)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).input(boom));
    user.add_edge(EdgeBuilder::new(u, u).output(save));
    b.add_automaton(user.build().unwrap()).unwrap();
    b.build().unwrap()
}

/// A maximally permissive specification over the same channels: every
/// output is allowed at any time, so the tioco monitor never fires and a
/// safety violation is attributable to the purpose check alone.
fn permissive_spec() -> System {
    let mut b = SystemBuilder::new("permissive");
    let boom = b.output_channel("boom").unwrap();
    let save = b.input_channel("save").unwrap();
    let mut spec = AutomatonBuilder::new("Spec");
    let s = spec.location("S").unwrap();
    spec.add_edge(EdgeBuilder::new(s, s).output(boom));
    spec.add_edge(EdgeBuilder::new(s, s).input(save));
    b.add_automaton(spec.build().unwrap()).unwrap();
    b.build().unwrap()
}

fn small_budgets() -> TestConfig {
    TestConfig {
        max_steps: 100,
        max_ticks: 2_000,
        ..TestConfig::default()
    }
}

#[test]
fn safe_controller_passes_on_conformant_implementations() {
    let product = escapable_product();
    let harness = TestHarness::synthesize(
        product.clone(),
        product.clone(),
        "control: A[] not Plant.BadLoc",
        small_budgets(),
    )
    .expect("the safety purpose is enforceable");
    for policy in [OutputPolicy::Eager, OutputPolicy::Lazy] {
        let mut iut = SimulatedIut::new("conformant", product.clone(), 4, policy);
        let report = harness.execute(&mut iut).expect("executes");
        assert_eq!(
            report.verdict,
            Verdict::Pass,
            "policy {policy:?}: a safe controller must keep the run in φ until the budget"
        );
    }
}

#[test]
fn unenforceable_safety_purpose_is_rejected() {
    // Without the escape edge the plant's forced boom! cannot be avoided.
    let mut b = SystemBuilder::new("doomed");
    let x = b.clock("x").unwrap();
    let boom = b.output_channel("boom").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let idle = plant.location("Idle").unwrap();
    let bad = plant.location("BadLoc").unwrap();
    plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
    plant.add_edge(
        EdgeBuilder::new(idle, bad)
            .output(boom)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).input(boom));
    b.add_automaton(user.build().unwrap()).unwrap();
    let product = b.build().unwrap();
    let err = TestHarness::synthesize(
        product.clone(),
        product,
        "control: A[] not Plant.BadLoc",
        small_budgets(),
    )
    .unwrap_err();
    assert!(matches!(err, HarnessError::NotEnforceable { .. }));
}

#[test]
fn entering_a_bad_state_fails_with_a_safety_violation() {
    // A wait-only strategy never plays the save? escape, so an eager
    // implementation fires boom! at x = 2; the permissive spec keeps the
    // monitor quiet and the purpose check reports the violation.
    let product = escapable_product();
    let spec = permissive_spec();
    let purpose = TestPurpose::parse("control: A[] not Plant.BadLoc", &product).unwrap();
    let mut strategy = Strategy::new(product.dim());
    strategy.add_rule(
        product.initial_discrete(),
        StrategyRule {
            rank: 0,
            zone: Dbm::universe(product.dim()),
            decision: Decision::Wait,
        },
    );
    let executor =
        TestExecutor::new(&product, &spec, &strategy, &purpose, small_budgets()).unwrap();
    let mut iut = SimulatedIut::new("deviant", product.clone(), 4, OutputPolicy::Eager);
    let report = executor.run(&mut iut).expect("executes");
    match report.verdict {
        Verdict::Fail(FailReason::SafetyViolation { ref state, .. }) => {
            assert!(state.contains("BadLoc"), "unexpected state: {state}");
        }
        other => panic!("expected Fail(SafetyViolation), got {other}"),
    }
}
