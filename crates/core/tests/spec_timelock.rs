//! Deadline attribution when the specification cannot progress.
//!
//! Shaken out by the test-execution fuzz oracle: a generated specification
//! whose invariant expires while *no* output can discharge the deadline is
//! timelocked — no implementation can be blamed for staying quiet.  The
//! executor must then
//!
//! * **pass** a safety run (a forever-blocked run trivially maintains `φ`),
//! * report a reachability run as `Inconclusive(SpecTimelock)`,
//! * and still **fail** a quiet implementation when the specification *does*
//!   offer an output at the deadline (the genuine `MissedDeadline` case).

use tiga_dbm::Dbm;
use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, System, SystemBuilder};
use tiga_solver::{Decision, Strategy, StrategyRule};
use tiga_tctl::TestPurpose;
use tiga_testing::{
    FailReason, InconclusiveReason, OutputPolicy, SimulatedIut, TestConfig, TestExecutor,
    TestHarness, Verdict,
};

/// A timelocked plant: `Stuck` has invariant `x <= 2` but its only edge
/// (into `Exit`) needs `x >= 5`, so neither time nor any action can ever
/// progress past `x = 2`.  `Bad` is unreachable.
fn timelocked_system() -> System {
    let mut b = SystemBuilder::new("timelocked");
    let x = b.clock("x").unwrap();
    let go = b.input_channel("go").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let stuck = plant.location("Stuck").unwrap();
    let exit = plant.location("Exit").unwrap();
    plant.location("Bad").unwrap();
    plant.set_invariant(stuck, vec![ClockConstraint::new(x, CmpOp::Le, 2)]);
    plant.add_edge(
        EdgeBuilder::new(stuck, exit)
            .input(go)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 5)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).output(go));
    b.add_automaton(user.build().unwrap()).unwrap();
    b.build().unwrap()
}

fn small_budgets() -> TestConfig {
    TestConfig {
        max_steps: 100,
        max_ticks: 2_000,
        ..TestConfig::default()
    }
}

fn wait_only_strategy(product: &System) -> Strategy {
    let mut strategy = Strategy::new(product.dim());
    strategy.add_rule(
        product.initial_discrete(),
        StrategyRule {
            rank: 0,
            zone: Dbm::universe(product.dim()),
            decision: Decision::Wait,
        },
    );
    strategy
}

#[test]
fn blocked_safety_run_passes() {
    // `A[] not Plant.Bad` is trivially winning (Bad is unreachable), so the
    // full harness synthesizes; the conformant run then gets stuck at x = 2
    // with nothing to blame on the implementation — that is a pass, not a
    // missed deadline.
    let product = timelocked_system();
    let harness = TestHarness::synthesize(
        product.clone(),
        product.clone(),
        "control: A[] not Plant.Bad",
        small_budgets(),
    )
    .expect("the safety purpose is enforceable");
    let mut iut = SimulatedIut::new("conformant", product.clone(), 4, OutputPolicy::Eager);
    let report = harness.execute(&mut iut).expect("executes");
    assert_eq!(
        report.verdict,
        Verdict::Pass,
        "trace: {}",
        report.trace.display(4)
    );
}

#[test]
fn blocked_reachability_run_is_inconclusive_with_spec_timelock() {
    // A wait-only strategy against the timelocked product: the goal can
    // never be reached once the specification is stuck, and the quiet
    // implementation must not be failed for it.
    let product = timelocked_system();
    let purpose = TestPurpose::parse("control: A<> Plant.Exit", &product).unwrap();
    let strategy = wait_only_strategy(&product);
    let executor =
        TestExecutor::new(&product, &product, &strategy, &purpose, small_budgets()).unwrap();
    let mut iut = SimulatedIut::new("conformant", product.clone(), 4, OutputPolicy::Eager);
    let report = executor.run(&mut iut).expect("executes");
    assert_eq!(
        report.verdict,
        // x = 2 at scale 4.
        Verdict::Inconclusive(InconclusiveReason::SpecTimelock { at_ticks: 8 }),
        "trace: {}",
        report.trace.display(4)
    );
}

#[test]
fn quiet_implementation_still_fails_a_real_deadline() {
    // Here the specification *does* offer `out!` when the invariant expires,
    // so an implementation that stays quiet misses a genuine deadline.
    let mut b = SystemBuilder::new("deadline");
    let x = b.clock("x").unwrap();
    let out = b.output_channel("out").unwrap();
    let mut plant = AutomatonBuilder::new("Plant");
    let idle = plant.location("Idle").unwrap();
    let done = plant.location("Done").unwrap();
    plant.set_invariant(idle, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
    plant.add_edge(
        EdgeBuilder::new(idle, done)
            .output(out)
            .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 2)),
    );
    b.add_automaton(plant.build().unwrap()).unwrap();
    let mut user = AutomatonBuilder::new("User");
    let u = user.location("U").unwrap();
    user.add_edge(EdgeBuilder::new(u, u).input(out));
    b.add_automaton(user.build().unwrap()).unwrap();
    let product = b.build().unwrap();

    // A broken implementation: same interface, but its output is never
    // enabled and no invariant forces it, so it idles forever.
    let mut bb = SystemBuilder::new("broken");
    let bx = bb.clock("x").unwrap();
    let bout = bb.output_channel("out").unwrap();
    let mut bplant = AutomatonBuilder::new("Plant");
    let bidle = bplant.location("Idle").unwrap();
    let bdone = bplant.location("Done").unwrap();
    bplant.add_edge(
        EdgeBuilder::new(bidle, bdone)
            .output(bout)
            .guard_clock(ClockConstraint::new(bx, CmpOp::Ge, 1_000)),
    );
    bb.add_automaton(bplant.build().unwrap()).unwrap();
    let mut buser = AutomatonBuilder::new("User");
    let bu = buser.location("U").unwrap();
    buser.add_edge(EdgeBuilder::new(bu, bu).input(bout));
    bb.add_automaton(buser.build().unwrap()).unwrap();
    let broken = bb.build().unwrap();

    let purpose = TestPurpose::parse("control: A<> Plant.Done", &product).unwrap();
    let strategy = wait_only_strategy(&product);
    let executor =
        TestExecutor::new(&product, &product, &strategy, &purpose, small_budgets()).unwrap();
    let mut iut = SimulatedIut::new("broken", broken, 4, OutputPolicy::Eager);
    let report = executor.run(&mut iut).expect("executes");
    assert_eq!(
        report.verdict,
        // x = 3 at scale 4.
        Verdict::Fail(FailReason::MissedDeadline { at_ticks: 12 }),
        "trace: {}",
        report.trace.display(4)
    );
}
