//! Dedicated coverage for the verdict classification table and the timed
//! trace append/delay invariants.

use tiga_testing::{FailReason, InconclusiveReason, TimedTrace, TraceStep, Verdict};

fn all_fail_reasons() -> Vec<FailReason> {
    vec![
        FailReason::UnexpectedOutput {
            channel: "dim".to_string(),
            at_ticks: 8,
        },
        FailReason::MissedDeadline { at_ticks: 12 },
        FailReason::IllegalDelay {
            delay_ticks: 4,
            at_ticks: 2,
        },
        FailReason::EnvironmentRefusedOutput {
            channel: "bright".to_string(),
            at_ticks: 3,
        },
    ]
}

fn all_inconclusive_reasons() -> Vec<InconclusiveReason> {
    vec![
        InconclusiveReason::OffStrategy {
            state: "(Idle)".to_string(),
        },
        InconclusiveReason::StepBudgetExhausted,
        InconclusiveReason::TimeBudgetExhausted,
        InconclusiveReason::UnboundedWait,
        InconclusiveReason::SpecTimelock { at_ticks: 16 },
    ]
}

#[test]
fn classification_table_is_total_and_exclusive() {
    // Every verdict is exactly one of pass / fail / inconclusive.
    let mut verdicts = vec![Verdict::Pass];
    verdicts.extend(all_fail_reasons().into_iter().map(Verdict::Fail));
    verdicts.extend(
        all_inconclusive_reasons()
            .into_iter()
            .map(Verdict::Inconclusive),
    );
    for v in &verdicts {
        let classes = usize::from(v.is_pass())
            + usize::from(v.is_fail())
            + usize::from(!v.is_pass() && !v.is_fail());
        match v {
            Verdict::Pass => assert!(v.is_pass() && !v.is_fail()),
            Verdict::Fail(_) => assert!(v.is_fail() && !v.is_pass()),
            Verdict::Inconclusive(_) => assert!(!v.is_pass() && !v.is_fail()),
        }
        assert_eq!(classes, 1, "verdict {v} in more than one class");
    }
}

#[test]
fn every_fail_reason_displays_its_evidence() {
    for reason in all_fail_reasons() {
        let rendered = Verdict::Fail(reason.clone()).to_string();
        assert!(rendered.starts_with("FAIL"), "{rendered}");
        match reason {
            FailReason::UnexpectedOutput { channel, at_ticks }
            | FailReason::EnvironmentRefusedOutput { channel, at_ticks } => {
                assert!(rendered.contains(&channel), "{rendered}");
                assert!(rendered.contains(&format!("t={at_ticks}")), "{rendered}");
            }
            FailReason::MissedDeadline { at_ticks } => {
                assert!(rendered.contains(&format!("t={at_ticks}")), "{rendered}");
            }
            FailReason::IllegalDelay {
                delay_ticks,
                at_ticks,
            } => {
                assert!(rendered.contains(&delay_ticks.to_string()), "{rendered}");
                assert!(rendered.contains(&format!("t={at_ticks}")), "{rendered}");
            }
            // FailReason is #[non_exhaustive].
            other => panic!("unknown reason {other:?}"),
        }
    }
    for reason in all_inconclusive_reasons() {
        let rendered = Verdict::Inconclusive(reason).to_string();
        assert!(rendered.starts_with("INCONCLUSIVE"), "{rendered}");
    }
    assert_eq!(Verdict::Pass.to_string(), "PASS");
}

#[test]
fn verdict_equality_distinguishes_reasons() {
    let fails: Vec<Verdict> = all_fail_reasons().into_iter().map(Verdict::Fail).collect();
    for (i, a) in fails.iter().enumerate() {
        for (j, b) in fails.iter().enumerate() {
            assert_eq!(a == b, i == j, "{a} vs {b}");
        }
    }
}

#[test]
fn adjacent_delays_merge_and_zero_delays_vanish() {
    let mut trace = TimedTrace::new();
    assert!(trace.is_empty());
    trace.push_delay(0);
    assert!(trace.is_empty(), "zero delay must not create a step");
    trace.push_delay(2);
    trace.push_delay(3);
    assert_eq!(trace.steps(), &[TraceStep::Delay(5)], "delays must merge");
    trace.push_input("touch");
    trace.push_delay(0);
    trace.push_delay(1);
    trace.push_output("dim");
    // The zero delay after the input must not break merging of the next one.
    assert_eq!(
        trace.steps(),
        &[
            TraceStep::Delay(5),
            TraceStep::Input("touch".to_string()),
            TraceStep::Delay(1),
            TraceStep::Output("dim".to_string()),
        ]
    );
    assert_eq!(trace.len(), 4);
    assert_eq!(trace.action_count(), 2);
}

#[test]
fn total_ticks_is_invariant_under_delay_splitting() {
    // However a delay is split into chunks, the trace observes the same
    // total duration and the same canonical step sequence.
    let mut chunked = TimedTrace::new();
    for _ in 0..10 {
        chunked.push_delay(1);
    }
    chunked.push_output("done");
    let mut whole = TimedTrace::new();
    whole.push_delay(10);
    whole.push_output("done");
    assert_eq!(chunked, whole);
    assert_eq!(chunked.total_ticks(), 10);
}

#[test]
fn total_ticks_counts_only_delays() {
    let trace: TimedTrace = vec![
        TraceStep::Delay(4),
        TraceStep::Input("touch".to_string()),
        TraceStep::Delay(2),
        TraceStep::Output("dim".to_string()),
        TraceStep::Delay(1),
    ]
    .into_iter()
    .collect();
    assert_eq!(trace.total_ticks(), 7);
    assert_eq!(trace.action_count(), 2);
    assert_eq!(trace.len(), 5);
}

#[test]
fn extend_preserves_merge_invariant_across_boundaries() {
    let mut trace = TimedTrace::new();
    trace.push_delay(2);
    // Extending with a leading delay must merge it into the trailing one.
    trace.extend(vec![
        TraceStep::Delay(3),
        TraceStep::Output("out".to_string()),
    ]);
    assert_eq!(
        trace.steps(),
        &[TraceStep::Delay(5), TraceStep::Output("out".to_string())]
    );
    // Collecting from an iterator applies the same normalization.
    let collected: TimedTrace = vec![
        TraceStep::Delay(1),
        TraceStep::Delay(4),
        TraceStep::Output("out".to_string()),
    ]
    .into_iter()
    .collect();
    assert_eq!(collected.steps(), trace.steps());
}

#[test]
fn display_scales_delays_and_marks_directions() {
    let trace: TimedTrace = vec![
        TraceStep::Delay(6),
        TraceStep::Input("touch".to_string()),
        TraceStep::Delay(3),
        TraceStep::Output("bright".to_string()),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        format!("{}", trace.display(2)),
        "3 · touch? · 1.5 · bright!"
    );
    assert_eq!(format!("{}", TimedTrace::new().display(2)), "ε");
}
