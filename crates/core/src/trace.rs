//! Observable timed traces.

use std::fmt;

/// One observable step of a test run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceStep {
    /// Time passed (in ticks) with no observable action.
    Delay(i64),
    /// The tester sent this input to the implementation.
    Input(String),
    /// The implementation produced this output.
    Output(String),
}

/// An observable timed trace `d₁ a₁ d₂ a₂ …` recorded during test execution.
///
/// Delays are in ticks; the owning [`crate::TestReport`] records the tick
/// scale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimedTrace {
    steps: Vec<TraceStep>,
}

impl TimedTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        TimedTrace::default()
    }

    /// Appends a delay, merging it with a preceding delay step.
    pub fn push_delay(&mut self, ticks: i64) {
        if ticks == 0 {
            return;
        }
        if let Some(TraceStep::Delay(d)) = self.steps.last_mut() {
            *d += ticks;
        } else {
            self.steps.push(TraceStep::Delay(ticks));
        }
    }

    /// Appends an input action.
    pub fn push_input(&mut self, channel: &str) {
        self.steps.push(TraceStep::Input(channel.to_string()));
    }

    /// Appends an output action.
    pub fn push_output(&mut self, channel: &str) {
        self.steps.push(TraceStep::Output(channel.to_string()));
    }

    /// The recorded steps.
    #[must_use]
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total time elapsed along the trace, in ticks.
    #[must_use]
    pub fn total_ticks(&self) -> i64 {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::Delay(d) => *d,
                _ => 0,
            })
            .sum()
    }

    /// Number of observable actions (inputs + outputs).
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| !matches!(s, TraceStep::Delay(_)))
            .count()
    }

    /// Renders the trace with delays converted to time units.
    #[must_use]
    pub fn display(&self, scale: i64) -> DisplayTrace<'_> {
        DisplayTrace { trace: self, scale }
    }
}

impl Extend<TraceStep> for TimedTrace {
    fn extend<T: IntoIterator<Item = TraceStep>>(&mut self, iter: T) {
        for step in iter {
            match step {
                TraceStep::Delay(d) => self.push_delay(d),
                TraceStep::Input(c) => self.steps.push(TraceStep::Input(c)),
                TraceStep::Output(c) => self.steps.push(TraceStep::Output(c)),
            }
        }
    }
}

impl FromIterator<TraceStep> for TimedTrace {
    fn from_iter<T: IntoIterator<Item = TraceStep>>(iter: T) -> Self {
        let mut t = TimedTrace::new();
        t.extend(iter);
        t
    }
}

/// Helper returned by [`TimedTrace::display`].
pub struct DisplayTrace<'a> {
    trace: &'a TimedTrace,
    scale: i64,
}

impl fmt::Display for DisplayTrace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for step in &self.trace.steps {
            if !first {
                write!(f, " · ")?;
            }
            first = false;
            match step {
                TraceStep::Delay(d) => write!(f, "{}", *d as f64 / self.scale as f64)?,
                TraceStep::Input(c) => write!(f, "{c}?")?,
                TraceStep::Output(c) => write!(f, "{c}!")?,
            }
        }
        if first {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_merged() {
        let mut t = TimedTrace::new();
        t.push_delay(2);
        t.push_delay(3);
        t.push_input("touch");
        t.push_delay(0);
        t.push_delay(1);
        t.push_output("bright");
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_ticks(), 6);
        assert_eq!(t.action_count(), 2);
    }

    #[test]
    fn display_converts_to_time_units() {
        let t: TimedTrace = vec![
            TraceStep::Delay(4),
            TraceStep::Input("touch".into()),
            TraceStep::Delay(2),
            TraceStep::Output("dim".into()),
        ]
        .into_iter()
        .collect();
        let s = format!("{}", t.display(4));
        assert_eq!(s, "1 · touch? · 0.5 · dim!");
        assert_eq!(format!("{}", TimedTrace::new().display(4)), "ε");
    }
}
