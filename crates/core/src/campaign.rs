//! Test campaigns: running a synthesized test case against pools of
//! implementations (mutants), and a random-testing baseline for the
//! fault-detection comparison (future-work item 3 of the paper).

use crate::exec::{TestConfig, TestReport};
use crate::harness::TestHarness;
use crate::iut::{DelayOutcome, Iut, OutputPolicy, SimulatedIut};
use crate::monitor::{MonitorOutcome, SpecMonitor};
use crate::mutation::Mutant;
use crate::trace::TimedTrace;
use crate::verdict::{InconclusiveReason, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use tiga_model::{ChannelKind, ModelError, System};

/// The result of running one implementation through a campaign.
#[derive(Clone, Debug)]
pub struct CampaignRun {
    /// Implementation name (mutant name or "conformant").
    pub iut_name: String,
    /// Whether the implementation is expected to conform (true for the
    /// unmutated plant).
    pub expected_conformant: bool,
    /// The report of the run.
    pub report: TestReport,
}

/// Aggregate results of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Individual runs.
    pub runs: Vec<CampaignRun>,
}

impl CampaignSummary {
    /// Number of mutants whose fault was detected (verdict `fail`).
    #[must_use]
    pub fn detected(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| !r.expected_conformant && r.report.verdict.is_fail())
            .count()
    }

    /// Number of mutants in the campaign.
    #[must_use]
    pub fn mutant_count(&self) -> usize {
        self.runs.iter().filter(|r| !r.expected_conformant).count()
    }

    /// Number of expected-conformant implementations that (incorrectly)
    /// failed — this must be zero by the soundness theorem.
    #[must_use]
    pub fn false_alarms(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.expected_conformant && r.report.verdict.is_fail())
            .count()
    }

    /// Mutation score: detected / mutants.
    #[must_use]
    pub fn mutation_score(&self) -> f64 {
        let m = self.mutant_count();
        if m == 0 {
            return 1.0;
        }
        self.detected() as f64 / m as f64
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} runs, {} mutants, {} detected (score {:.2}), {} false alarms",
            self.runs.len(),
            self.mutant_count(),
            self.detected(),
            self.mutation_score(),
            self.false_alarms()
        )?;
        for run in &self.runs {
            writeln!(
                f,
                "  {:<40} {:<12} {}",
                run.iut_name,
                if run.expected_conformant { "conformant" } else { "mutant" },
                run.report.verdict
            )?;
        }
        Ok(())
    }
}

/// Output-scheduling policies used for the simulated implementations of a
/// campaign.
#[must_use]
pub fn default_policies() -> Vec<OutputPolicy> {
    vec![
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Jittery { seed: 2008 },
    ]
}

/// Runs a synthesized test case against the conformant plant and a pool of
/// mutants, each simulated under several output policies.
///
/// `repetitions` controls how many times each implementation is exercised
/// (useful for jittery policies).
///
/// # Errors
///
/// Propagates internal model-evaluation errors.
pub fn run_mutation_campaign(
    harness: &TestHarness,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    repetitions: usize,
) -> Result<CampaignSummary, ModelError> {
    let scale = harness.config().scale;
    let mut summary = CampaignSummary::default();
    for policy in policies {
        let mut conformant = SimulatedIut::new(
            &format!("conformant-{policy:?}"),
            plant.clone(),
            scale,
            *policy,
        );
        let report = harness.execute_repeated(&mut conformant, repetitions)?;
        summary.runs.push(CampaignRun {
            iut_name: conformant.name().to_string(),
            expected_conformant: true,
            report,
        });
        for mutant in mutants {
            let mut iut = SimulatedIut::new(
                &format!("{}-{policy:?}", mutant.name),
                mutant.system.clone(),
                scale,
                *policy,
            );
            let report = harness.execute_repeated(&mut iut, repetitions)?;
            summary.runs.push(CampaignRun {
                iut_name: iut.name().to_string(),
                expected_conformant: false,
                report,
            });
        }
    }
    Ok(summary)
}

/// A baseline tester that sends random inputs at random times while
/// monitoring tioco, used to compare fault-detection capability against
/// strategy-based testing.
#[derive(Clone, Debug)]
pub struct RandomTester<'a> {
    spec: &'a System,
    config: TestConfig,
    seed: u64,
}

impl<'a> RandomTester<'a> {
    /// Creates a random tester monitoring conformance against `spec`.
    #[must_use]
    pub fn new(spec: &'a System, config: TestConfig, seed: u64) -> Self {
        RandomTester { spec, config, seed }
    }

    /// Drives the implementation with random stimuli, returning `Fail` on the
    /// first tioco violation and `Inconclusive` when the budget is exhausted
    /// (a random tester has no test purpose to `Pass`).
    ///
    /// # Errors
    ///
    /// Propagates internal model-evaluation errors.
    pub fn run(&self, iut: &mut dyn Iut) -> Result<TestReport, ModelError> {
        iut.reset();
        let scale = self.config.scale;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut monitor = SpecMonitor::new(self.spec, scale)?;
        let mut trace = TimedTrace::new();
        let inputs: Vec<String> = self
            .spec
            .channels()
            .iter()
            .filter(|c| c.kind() == ChannelKind::Input)
            .map(|c| c.name().to_string())
            .collect();
        let mut now = 0i64;
        let mut steps = 0usize;
        while steps < self.config.max_steps && now < self.config.max_ticks {
            steps += 1;
            // Randomly either send an input (if any) or wait a random amount.
            let send_input = !inputs.is_empty() && rng.gen_bool(0.5);
            if send_input {
                let channel = &inputs[rng.gen_range(0..inputs.len())];
                iut.offer_input(channel);
                monitor.observe_input(channel)?;
                trace.push_input(channel);
            } else {
                let wait = rng.gen_range(1..=self.config.default_wait.max(1));
                match iut.delay(wait) {
                    DelayOutcome::Quiet => {
                        if let MonitorOutcome::Violation(fail) = monitor.observe_delay(wait)? {
                            trace.push_delay(wait);
                            return Ok(TestReport {
                                verdict: Verdict::Fail(fail),
                                trace,
                                scale,
                                steps,
                                iut_name: iut.name().to_string(),
                            });
                        }
                        trace.push_delay(wait);
                        now += wait;
                    }
                    DelayOutcome::Output { after, channel } => {
                        if after > 0 {
                            if let MonitorOutcome::Violation(fail) = monitor.observe_delay(after)? {
                                trace.push_delay(after);
                                return Ok(TestReport {
                                    verdict: Verdict::Fail(fail),
                                    trace,
                                    scale,
                                    steps,
                                    iut_name: iut.name().to_string(),
                                });
                            }
                            trace.push_delay(after);
                            now += after;
                        }
                        trace.push_output(&channel);
                        if let MonitorOutcome::Violation(fail) = monitor.observe_output(&channel)? {
                            return Ok(TestReport {
                                verdict: Verdict::Fail(fail),
                                trace,
                                scale,
                                steps,
                                iut_name: iut.name().to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(TestReport {
            verdict: Verdict::Inconclusive(InconclusiveReason::StepBudgetExhausted),
            trace,
            scale,
            steps,
            iut_name: iut.name().to_string(),
        })
    }
}

/// Runs the random-tester baseline against the same pool of implementations
/// as [`run_mutation_campaign`], for fault-detection comparison.
///
/// # Errors
///
/// Propagates internal model-evaluation errors.
pub fn run_random_campaign(
    spec: &System,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    config: &TestConfig,
    seed: u64,
) -> Result<CampaignSummary, ModelError> {
    let mut summary = CampaignSummary::default();
    let tester = RandomTester::new(spec, config.clone(), seed);
    for policy in policies {
        let mut conformant =
            SimulatedIut::new(&format!("conformant-{policy:?}"), plant.clone(), config.scale, *policy);
        let report = tester.run(&mut conformant)?;
        summary.runs.push(CampaignRun {
            iut_name: conformant.name().to_string(),
            expected_conformant: true,
            report,
        });
        for mutant in mutants {
            let mut iut = SimulatedIut::new(
                &format!("{}-{policy:?}", mutant.name),
                mutant.system.clone(),
                config.scale,
                *policy,
            );
            let report = tester.run(&mut iut)?;
            summary.runs.push(CampaignRun {
                iut_name: iut.name().to_string(),
                expected_conformant: false,
                report,
            });
        }
    }
    Ok(summary)
}
