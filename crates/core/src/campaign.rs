//! Test campaigns: running a synthesized test case against pools of
//! implementations (mutants), and a random-testing baseline for the
//! fault-detection comparison (future-work item 3 of the paper).
//!
//! # Parallel execution and determinism
//!
//! Campaigns are embarrassingly parallel — every `(policy, implementation)`
//! pair is an independent run — and are executed on a sharded work queue
//! ([`crate::parallel`]): workers claim jobs dynamically, so a slow mutant
//! does not serialize the pool.  Results are nevertheless **bit-identical
//! for any thread count**, because
//!
//! 1. every job carries a stable index, and aggregation merges per-job
//!    summaries in index order ([`CampaignSummary::merge`]);
//! 2. all randomness is derived ahead of scheduling: job `i` runs with
//!    `run_seed = mix64(master_seed, i)` (a SplitMix64 finalizer), which
//!    reseeds jittery output policies and the random tester — never a
//!    shared, order-dependent RNG.
//!
//! The master seed lives in [`CampaignOptions::master_seed`]; two campaigns
//! with the same master seed, pool and policies produce the same summary
//! whether they run on 1 or 64 threads.

use crate::exec::{TestConfig, TestReport};
use crate::harness::TestHarness;
use crate::iut::{DelayOutcome, Iut, OutputPolicy, SimulatedIut};
use crate::monitor::{MonitorOutcome, SpecMonitor};
use crate::mutation::Mutant;
use crate::parallel::run_indexed;
use crate::trace::TimedTrace;
use crate::verdict::{InconclusiveReason, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use tiga_model::{ChannelKind, ModelError, System};

/// The result of running one implementation through a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignRun {
    /// Implementation name (mutant name or "conformant").
    pub iut_name: String,
    /// Whether the implementation is expected to conform (true for the
    /// unmutated plant).
    pub expected_conformant: bool,
    /// The report of the run.
    pub report: TestReport,
}

/// Aggregate results of a campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Individual runs.
    pub runs: Vec<CampaignRun>,
}

impl CampaignSummary {
    /// Absorbs another summary's runs (merge-based aggregation: the parallel
    /// engine folds per-job summaries together in job order).
    pub fn merge(&mut self, other: CampaignSummary) {
        self.runs.extend(other.runs);
    }

    /// Number of mutants whose fault was detected (verdict `fail`).
    #[must_use]
    pub fn detected(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| !r.expected_conformant && r.report.verdict.is_fail())
            .count()
    }

    /// Number of mutants in the campaign.
    #[must_use]
    pub fn mutant_count(&self) -> usize {
        self.runs.iter().filter(|r| !r.expected_conformant).count()
    }

    /// Number of expected-conformant implementations that (incorrectly)
    /// failed — this must be zero by the soundness theorem.
    #[must_use]
    pub fn false_alarms(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.expected_conformant && r.report.verdict.is_fail())
            .count()
    }

    /// Mutation score: detected / mutants.
    #[must_use]
    pub fn mutation_score(&self) -> f64 {
        let m = self.mutant_count();
        if m == 0 {
            return 1.0;
        }
        self.detected() as f64 / m as f64
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} runs, {} mutants, {} detected (score {:.2}), {} false alarms",
            self.runs.len(),
            self.mutant_count(),
            self.detected(),
            self.mutation_score(),
            self.false_alarms()
        )?;
        for run in &self.runs {
            writeln!(
                f,
                "  {:<40} {:<12} {}",
                run.iut_name,
                if run.expected_conformant {
                    "conformant"
                } else {
                    "mutant"
                },
                run.report.verdict
            )?;
        }
        Ok(())
    }
}

/// Options controlling how a campaign is scheduled and seeded.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// How many times each implementation is exercised per job.
    pub repetitions: usize,
    /// Worker threads; `0` uses all available parallelism.
    pub threads: usize,
    /// Master seed from which every job's run seed is derived.
    pub master_seed: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            repetitions: 1,
            threads: 0,
            master_seed: 0x2008_D47E,
        }
    }
}

impl CampaignOptions {
    /// Sets the repetition count.
    #[must_use]
    pub fn repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Sets the worker thread count (`0` = all available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }
}

/// SplitMix64 finalizer: a bijective mixer with good avalanche behaviour.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of job `index` under `master_seed` — a pure function of the
/// two, independent of scheduling.
#[must_use]
pub fn derive_run_seed(master_seed: u64, index: usize) -> u64 {
    mix64(master_seed ^ mix64(index as u64))
}

/// Reseeds policies that carry randomness with the job's derived seed;
/// deterministic policies pass through untouched.
fn reseeded(policy: OutputPolicy, run_seed: u64) -> OutputPolicy {
    match policy {
        OutputPolicy::Jittery { seed } => OutputPolicy::Jittery {
            seed: mix64(seed ^ run_seed),
        },
        other => other,
    }
}

/// One schedulable unit: an implementation to exercise under one policy.
struct CampaignJob {
    /// Report name (uses the caller's policy, not the reseeded one, so names
    /// stay stable across master seeds).
    iut_name: String,
    system: System,
    policy: OutputPolicy,
    expected_conformant: bool,
}

/// Builds the job list for a pool: for every policy, the conformant plant
/// followed by each mutant — the same order the sequential engine used.
fn build_jobs(
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    master_seed: u64,
) -> Vec<CampaignJob> {
    let mut jobs = Vec::with_capacity(policies.len() * (mutants.len() + 1));
    for policy in policies {
        let index = jobs.len();
        jobs.push(CampaignJob {
            iut_name: format!("conformant-{policy:?}"),
            system: plant.clone(),
            policy: reseeded(*policy, derive_run_seed(master_seed, index)),
            expected_conformant: true,
        });
        for mutant in mutants {
            let index = jobs.len();
            jobs.push(CampaignJob {
                iut_name: format!("{}-{policy:?}", mutant.name),
                system: mutant.system.clone(),
                policy: reseeded(*policy, derive_run_seed(master_seed, index)),
                expected_conformant: false,
            });
        }
    }
    jobs
}

/// Folds per-job summaries (in job order) into one, propagating the first
/// error — deterministic because the job order is.
fn merge_job_summaries(
    results: Vec<Result<CampaignSummary, ModelError>>,
) -> Result<CampaignSummary, ModelError> {
    let mut summary = CampaignSummary::default();
    for result in results {
        summary.merge(result?);
    }
    Ok(summary)
}

/// Output-scheduling policies used for the simulated implementations of a
/// campaign.
#[must_use]
pub fn default_policies() -> Vec<OutputPolicy> {
    vec![
        OutputPolicy::Eager,
        OutputPolicy::Lazy,
        OutputPolicy::Jittery { seed: 2008 },
    ]
}

/// Runs a synthesized test case against the conformant plant and a pool of
/// mutants, each simulated under several output policies, with default
/// scheduling (all cores) and seeding.
///
/// `repetitions` controls how many times each implementation is exercised
/// (useful for jittery policies).  See [`run_mutation_campaign_with`] for
/// full control.
///
/// # Errors
///
/// Propagates internal model-evaluation errors.
pub fn run_mutation_campaign(
    harness: &TestHarness,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    repetitions: usize,
) -> Result<CampaignSummary, ModelError> {
    run_mutation_campaign_with(
        harness,
        plant,
        mutants,
        policies,
        &CampaignOptions::default().repetitions(repetitions),
    )
}

/// Runs a strategy-based mutation campaign on the parallel engine.
///
/// The summary is identical for any [`CampaignOptions::threads`] value (see
/// the module docs for the seeding scheme).
///
/// # Errors
///
/// Propagates internal model-evaluation errors (first failing job in job
/// order).
pub fn run_mutation_campaign_with(
    harness: &TestHarness,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    options: &CampaignOptions,
) -> Result<CampaignSummary, ModelError> {
    let scale = harness.config().scale;
    let jobs = build_jobs(plant, mutants, policies, options.master_seed);
    let results = run_indexed(jobs, options.threads, |_, job| {
        let mut iut = SimulatedIut::new(&job.iut_name, job.system, scale, job.policy);
        let report = harness.execute_repeated(&mut iut, options.repetitions)?;
        Ok(CampaignSummary {
            runs: vec![CampaignRun {
                iut_name: job.iut_name,
                expected_conformant: job.expected_conformant,
                report,
            }],
        })
    });
    merge_job_summaries(results)
}

/// A baseline tester that sends random inputs at random times while
/// monitoring tioco, used to compare fault-detection capability against
/// strategy-based testing.
#[derive(Clone, Debug)]
pub struct RandomTester<'a> {
    spec: &'a System,
    config: TestConfig,
    seed: u64,
}

impl<'a> RandomTester<'a> {
    /// Creates a random tester monitoring conformance against `spec`.
    #[must_use]
    pub fn new(spec: &'a System, config: TestConfig, seed: u64) -> Self {
        RandomTester { spec, config, seed }
    }

    /// Drives the implementation with random stimuli, returning `Fail` on the
    /// first tioco violation and `Inconclusive` when the budget is exhausted
    /// (a random tester has no test purpose to `Pass`).
    ///
    /// # Errors
    ///
    /// Propagates internal model-evaluation errors.
    pub fn run(&self, iut: &mut dyn Iut) -> Result<TestReport, ModelError> {
        iut.reset();
        let scale = self.config.scale;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut monitor = SpecMonitor::new(self.spec, scale)?;
        let mut trace = TimedTrace::new();
        let inputs: Vec<String> = self
            .spec
            .channels()
            .iter()
            .filter(|c| c.kind() == ChannelKind::Input)
            .map(|c| c.name().to_string())
            .collect();
        let mut now = 0i64;
        let mut steps = 0usize;
        while steps < self.config.max_steps && now < self.config.max_ticks {
            steps += 1;
            // Randomly either send an input (if any) or wait a random amount.
            let send_input = !inputs.is_empty() && rng.gen_bool(0.5);
            if send_input {
                let channel = &inputs[rng.gen_range(0..inputs.len())];
                iut.offer_input(channel);
                monitor.observe_input(channel)?;
                trace.push_input(channel);
            } else {
                let wait = rng.gen_range(1..=self.config.default_wait.max(1));
                match iut.delay(wait) {
                    DelayOutcome::Quiet => {
                        if let MonitorOutcome::Violation(fail) = monitor.observe_delay(wait)? {
                            trace.push_delay(wait);
                            return Ok(TestReport {
                                verdict: Verdict::Fail(fail),
                                trace,
                                scale,
                                steps,
                                iut_name: iut.name().to_string(),
                            });
                        }
                        trace.push_delay(wait);
                        now += wait;
                    }
                    DelayOutcome::Output { after, channel } => {
                        if after > 0 {
                            if let MonitorOutcome::Violation(fail) = monitor.observe_delay(after)? {
                                trace.push_delay(after);
                                return Ok(TestReport {
                                    verdict: Verdict::Fail(fail),
                                    trace,
                                    scale,
                                    steps,
                                    iut_name: iut.name().to_string(),
                                });
                            }
                            trace.push_delay(after);
                            now += after;
                        }
                        trace.push_output(&channel);
                        if let MonitorOutcome::Violation(fail) = monitor.observe_output(&channel)? {
                            return Ok(TestReport {
                                verdict: Verdict::Fail(fail),
                                trace,
                                scale,
                                steps,
                                iut_name: iut.name().to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(TestReport {
            verdict: Verdict::Inconclusive(InconclusiveReason::StepBudgetExhausted),
            trace,
            scale,
            steps,
            iut_name: iut.name().to_string(),
        })
    }
}

/// Runs the random-tester baseline against the same pool of implementations
/// as [`run_mutation_campaign`], for fault-detection comparison, with default
/// scheduling.  `seed` becomes the campaign master seed.
///
/// Note a semantic difference from the pre-parallel engine: each job now
/// draws its own stimulus stream from the derived run seed, instead of every
/// implementation being driven by one identical stream.  This is the
/// campaign seeding scheme (see the module docs); detection scores for a
/// given `seed` therefore differ from the old sequential baseline, but
/// remain fully deterministic.
///
/// # Errors
///
/// Propagates internal model-evaluation errors.
pub fn run_random_campaign(
    spec: &System,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    config: &TestConfig,
    seed: u64,
) -> Result<CampaignSummary, ModelError> {
    run_random_campaign_with(
        spec,
        plant,
        mutants,
        policies,
        config,
        &CampaignOptions::default().master_seed(seed),
    )
}

/// Runs the random-tester baseline on the parallel engine: every job drives
/// its implementation with a [`RandomTester`] seeded from the job's derived
/// run seed, so summaries are thread-count independent.
///
/// [`CampaignOptions::repetitions`] gives each implementation that many
/// independent random attempts (each with its own seed derived from the
/// job's run seed); the first failing attempt decides the job's report,
/// mirroring [`TestHarness::execute_repeated`].
///
/// # Errors
///
/// Propagates internal model-evaluation errors (first failing job in job
/// order).
pub fn run_random_campaign_with(
    spec: &System,
    plant: &System,
    mutants: &[Mutant],
    policies: &[OutputPolicy],
    config: &TestConfig,
    options: &CampaignOptions,
) -> Result<CampaignSummary, ModelError> {
    let jobs = build_jobs(plant, mutants, policies, options.master_seed);
    let results = run_indexed(jobs, options.threads, |index, job| {
        let run_seed = derive_run_seed(options.master_seed, index);
        let mut iut = SimulatedIut::new(&job.iut_name, job.system, config.scale, job.policy);
        let mut report = None;
        for rep in 0..options.repetitions.max(1) {
            let tester = RandomTester::new(spec, config.clone(), mix64(run_seed ^ rep as u64));
            let attempt = tester.run(&mut iut)?;
            let failed = attempt.verdict.is_fail();
            report = Some(attempt);
            if failed {
                break;
            }
        }
        let report = report.expect("at least one repetition");
        Ok(CampaignSummary {
            runs: vec![CampaignRun {
                iut_name: job.iut_name,
                expected_conformant: job.expected_conformant,
                report,
            }],
        })
    });
    merge_job_summaries(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_spread() {
        assert_eq!(derive_run_seed(1, 0), derive_run_seed(1, 0));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(1, 1));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(2, 0));
    }

    #[test]
    fn reseeding_only_touches_jittery_policies() {
        assert_eq!(reseeded(OutputPolicy::Eager, 7), OutputPolicy::Eager);
        assert_eq!(reseeded(OutputPolicy::Lazy, 7), OutputPolicy::Lazy);
        assert_eq!(
            reseeded(OutputPolicy::Offset(3), 7),
            OutputPolicy::Offset(3)
        );
        let a = reseeded(OutputPolicy::Jittery { seed: 1 }, 7);
        let b = reseeded(OutputPolicy::Jittery { seed: 1 }, 7);
        assert_eq!(a, b);
        assert_ne!(a, OutputPolicy::Jittery { seed: 1 });
    }

    #[test]
    fn merge_concatenates_in_order() {
        let run = |name: &str| CampaignRun {
            iut_name: name.to_string(),
            expected_conformant: true,
            report: TestReport {
                verdict: Verdict::Pass,
                trace: TimedTrace::new(),
                scale: 4,
                steps: 1,
                iut_name: name.to_string(),
            },
        };
        let mut left = CampaignSummary {
            runs: vec![run("a")],
        };
        left.merge(CampaignSummary {
            runs: vec![run("b"), run("c")],
        });
        let names: Vec<_> = left.runs.iter().map(|r| r.iut_name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
