//! Online tioco conformance monitoring.
//!
//! The monitor tracks the state of the (deterministic, input-enabled)
//! specification along the observed timed trace and checks, for every
//! observation, the tioco condition
//! `Out(i After σ) ⊆ Out(s After σ)`:
//!
//! * an observed **output** must be producible by the specification in its
//!   current state;
//! * an observed **delay** must be permitted by the specification (its
//!   invariant may force an output earlier, in which case silence is a
//!   fault).

use crate::verdict::FailReason;
use tiga_model::{ConcreteState, Interpreter, ModelError, System};

/// The result of feeding one observation to the monitor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorOutcome {
    /// The observation conforms; the specification state was advanced.
    Ok,
    /// The observation violates tioco.
    Violation(FailReason),
}

/// Online conformance monitor for a deterministic specification.
///
/// # Examples
///
/// ```
/// use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};
/// use tiga_testing::SpecMonitor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Specification: after `req?` the plant answers `resp!` within [1, 3].
/// let mut b = SystemBuilder::new("spec");
/// let x = b.clock("x")?;
/// let req = b.input_channel("req")?;
/// let resp = b.output_channel("resp")?;
/// let mut a = AutomatonBuilder::new("Plant");
/// let idle = a.location("Idle")?;
/// let busy = a.location("Busy")?;
/// a.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
/// a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
/// a.add_edge(
///     EdgeBuilder::new(busy, idle)
///         .output(resp)
///         .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
/// );
/// b.add_automaton(a.build()?)?;
/// let spec = b.build()?;
///
/// let mut monitor = SpecMonitor::new(&spec, 4)?;
/// monitor.observe_input("req")?;
/// // An answer after 0.5 time units is too early: the guard requires x >= 1.
/// assert!(monitor.observe_delay(2)?.is_ok_observation());
/// assert!(!monitor.observe_output("resp")?.is_ok_observation());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SpecMonitor<'a> {
    system: &'a System,
    scale: i64,
    state: ConcreteState,
    elapsed: i64,
}

impl MonitorOutcome {
    /// Returns `true` if the observation conformed to the specification.
    #[must_use]
    pub fn is_ok_observation(&self) -> bool {
        matches!(self, MonitorOutcome::Ok)
    }

    /// The failure reason, if the observation was a violation.
    #[must_use]
    pub fn violation(&self) -> Option<&FailReason> {
        match self {
            MonitorOutcome::Ok => None,
            MonitorOutcome::Violation(r) => Some(r),
        }
    }
}

impl<'a> SpecMonitor<'a> {
    /// Creates a monitor for a specification, with `scale` ticks per time
    /// unit.
    ///
    /// # Errors
    ///
    /// Propagates model errors (invalid scale, invariant violation in the
    /// initial state).
    pub fn new(system: &'a System, scale: i64) -> Result<Self, ModelError> {
        let interp = Interpreter::new(system, scale)?;
        let state = interp.initial_state()?;
        Ok(SpecMonitor {
            system,
            scale,
            state,
            elapsed: 0,
        })
    }

    fn interpreter(&self) -> Interpreter<'a> {
        Interpreter::new(self.system, self.scale).expect("scale validated at construction")
    }

    /// Total observed time so far, in ticks.
    #[must_use]
    pub fn elapsed_ticks(&self) -> i64 {
        self.elapsed
    }

    /// The specification state reached after the observed trace.
    #[must_use]
    pub fn state(&self) -> &ConcreteState {
        &self.state
    }

    /// The maximal further delay the specification allows before it *must*
    /// produce some action (`None` if unbounded).
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn max_allowed_delay(&self) -> Result<Option<i64>, ModelError> {
        self.interpreter().max_delay(&self.state)
    }

    /// The outputs the specification can produce right now (`Out(s After σ)`
    /// restricted to actions).
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn allowed_outputs(&self) -> Result<Vec<String>, ModelError> {
        Ok(self
            .interpreter()
            .enabled_outputs(&self.state)?
            .into_iter()
            .map(|c| self.system.channel(c).name().to_string())
            .collect())
    }

    /// Advances the specification through one forced internal (`tau`) move,
    /// if any is enabled — the deterministic first-in-declaration-order rule
    /// of [`Interpreter::fire_first_internal`].
    ///
    /// The executor calls this when the closed product is time-blocked and
    /// progresses through a silent move: the specification, when it has the
    /// same internal structure, must follow to stay synchronized.  Returns
    /// whether the specification moved.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn progress_internal(&mut self) -> Result<bool, ModelError> {
        match self.interpreter().fire_first_internal(&self.state)? {
            Some(next) => {
                self.state = next;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Observes the tester sending an input.
    ///
    /// The specification is assumed input-enabled; if it has no edge for the
    /// input in the current state, the input is ignored (the state is
    /// unchanged), matching the usual interpretation of missing input edges
    /// as self-loops.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors; an unknown channel name is a
    /// model error.
    pub fn observe_input(&mut self, channel: &str) -> Result<MonitorOutcome, ModelError> {
        let ch = self
            .system
            .channel_by_name(channel)
            .ok_or_else(|| ModelError::UnknownName(channel.to_string()))?;
        if let Some(next) = self.interpreter().after_input(&self.state, ch)? {
            self.state = next;
        }
        Ok(MonitorOutcome::Ok)
    }

    /// Observes `delay` ticks of silence.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn observe_delay(&mut self, delay: i64) -> Result<MonitorOutcome, ModelError> {
        match self.interpreter().delayed(&self.state, delay)? {
            Some(next) => {
                self.state = next;
                self.elapsed += delay;
                Ok(MonitorOutcome::Ok)
            }
            None => Ok(MonitorOutcome::Violation(FailReason::IllegalDelay {
                delay_ticks: delay,
                at_ticks: self.elapsed,
            })),
        }
    }

    /// Observes the implementation producing an output.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors.
    pub fn observe_output(&mut self, channel: &str) -> Result<MonitorOutcome, ModelError> {
        let Some(ch) = self.system.channel_by_name(channel) else {
            return Ok(MonitorOutcome::Violation(FailReason::UnexpectedOutput {
                channel: channel.to_string(),
                at_ticks: self.elapsed,
            }));
        };
        match self.interpreter().after_output(&self.state, ch)? {
            Some(next) => {
                self.state = next;
                Ok(MonitorOutcome::Ok)
            }
            None => Ok(MonitorOutcome::Violation(FailReason::UnexpectedOutput {
                channel: channel.to_string(),
                at_ticks: self.elapsed,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiga_model::{AutomatonBuilder, ClockConstraint, CmpOp, EdgeBuilder, SystemBuilder};

    fn spec() -> System {
        let mut b = SystemBuilder::new("spec");
        let x = b.clock("x").unwrap();
        let req = b.input_channel("req").unwrap();
        let resp = b.output_channel("resp").unwrap();
        let _late = b.output_channel("late").unwrap();
        let mut a = AutomatonBuilder::new("Plant");
        let idle = a.location("Idle").unwrap();
        let busy = a.location("Busy").unwrap();
        a.set_invariant(busy, vec![ClockConstraint::new(x, CmpOp::Le, 3)]);
        a.add_edge(EdgeBuilder::new(idle, busy).input(req).reset(x));
        a.add_edge(
            EdgeBuilder::new(busy, idle)
                .output(resp)
                .guard_clock(ClockConstraint::new(x, CmpOp::Ge, 1)),
        );
        b.add_automaton(a.build().unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn conformant_trace_is_accepted() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        assert!(m.observe_delay(20).unwrap().is_ok_observation());
        assert!(m.observe_input("req").unwrap().is_ok_observation());
        assert!(m.observe_delay(8).unwrap().is_ok_observation());
        assert!(m.observe_output("resp").unwrap().is_ok_observation());
        assert!(m.observe_delay(100).unwrap().is_ok_observation());
        assert_eq!(m.elapsed_ticks(), 128);
    }

    #[test]
    fn too_early_output_is_a_violation() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        m.observe_input("req").unwrap();
        m.observe_delay(2).unwrap();
        let outcome = m.observe_output("resp").unwrap();
        assert!(matches!(
            outcome.violation(),
            Some(FailReason::UnexpectedOutput { .. })
        ));
    }

    #[test]
    fn wrong_output_is_a_violation() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        m.observe_input("req").unwrap();
        m.observe_delay(8).unwrap();
        assert!(!m.observe_output("late").unwrap().is_ok_observation());
        assert!(!m.observe_output("unknown").unwrap().is_ok_observation());
    }

    #[test]
    fn silence_beyond_deadline_is_a_violation() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        m.observe_input("req").unwrap();
        assert_eq!(m.max_allowed_delay().unwrap(), Some(12));
        let outcome = m.observe_delay(13).unwrap();
        assert!(matches!(
            outcome.violation(),
            Some(FailReason::IllegalDelay { .. })
        ));
    }

    #[test]
    fn unknown_inputs_are_errors_and_unmatched_inputs_ignored() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        assert!(m.observe_input("nonexistent").is_err());
        // `req` in Busy has no edge: ignored, state unchanged.
        m.observe_input("req").unwrap();
        let before = m.state().clone();
        m.observe_input("req").unwrap();
        assert_eq!(m.state(), &before);
    }

    #[test]
    fn allowed_outputs_reflect_guards() {
        let s = spec();
        let mut m = SpecMonitor::new(&s, 4).unwrap();
        assert!(m.allowed_outputs().unwrap().is_empty());
        m.observe_input("req").unwrap();
        assert!(m.allowed_outputs().unwrap().is_empty());
        m.observe_delay(4).unwrap();
        assert_eq!(m.allowed_outputs().unwrap(), vec!["resp".to_string()]);
    }
}
